#!/usr/bin/env sh
# Repository CI gate. Run from the workspace root:
#
#     ./ci.sh
#
# Twelve checks, in order of increasing cost; the script stops at the first
# failure:
#
#   1. cargo fmt --check            -- formatting drift
#   2. cargo xtask lint             -- panic-free library code + crate attrs
#   3. cargo xtask analyze          -- static-analysis wall: Vfs I/O
#                                      discipline, lock discipline, wire
#                                      safety, panic markers, raw-socket use
#   4. cargo clippy -D warnings     -- clippy across every target
#   5. cargo test -q                -- the full workspace test suite
#   6. crash matrix (release)       -- crash-at-every-I/O-site recovery sweep
#   7. differential suites (release)-- serial-vs-concurrent equality of the
#                                      backup pipeline AND the staged restore
#                                      engine, once at HDS_THREADS=1 and 8
#   8. chaos matrix (release)       -- fault-at-every-wire-op sweep of the
#                                      retrying client against the daemon:
#                                      cut/short/black-hole/delay on both
#                                      sides, resume-tail accounting, server
#                                      restart ride-through, busy shedding
#   9. tenant isolation (release)   -- N tenants raced through one daemon:
#                                      byte-identical to serial runs, LRU
#                                      eviction churn, v2-compat default
#                                      tenant, quota/unknown-tenant refusals
#  10. served round trip            -- hds-served on an ephemeral port:
#                                      remote backup -> list -> restore ->
#                                      verify, byte-compare, fsck-clean repo,
#                                      graceful shutdown
#  11. tree round trip             -- backup-tree/restore-tree on a real
#                                      directory: excludes honoured, full and
#                                      subtree restores diff clean against
#                                      the source, fsck-clean repo, and an
#                                      unreadable entry (fifo) is skipped
#                                      with a non-zero exit
#  12. paper claims (release)       -- the cross-scheme comparison asserted
#                                      as tests: HiDeStore vs RevDedup vs
#                                      hybrid vs DDFS restore reads, dedup
#                                      ratios, and deferred-pass accounting
#
# Everything runs offline against the vendored dependencies in vendor/.
set -eu

echo "ci: cargo fmt --check"
cargo fmt --check

echo "ci: cargo xtask lint"
cargo xtask lint

echo "ci: cargo xtask analyze"
cargo xtask analyze

echo "ci: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: cargo test --workspace -q"
cargo test --workspace -q

echo "ci: cargo test --release --test crash_matrix"
cargo test --release --test crash_matrix -q

echo "ci: cargo test --release --test pipeline_differential (HDS_THREADS=1)"
HDS_THREADS=1 cargo test --release --test pipeline_differential -q

echo "ci: cargo test --release --test pipeline_differential (HDS_THREADS=8)"
HDS_THREADS=8 cargo test --release --test pipeline_differential -q

echo "ci: cargo test --release --test restore_differential (HDS_THREADS=1)"
HDS_THREADS=1 cargo test --release --test restore_differential -q

echo "ci: cargo test --release --test restore_differential (HDS_THREADS=8)"
HDS_THREADS=8 cargo test --release --test restore_differential -q

echo "ci: cargo test --release --test server_chaos"
cargo test --release --test server_chaos -q

echo "ci: cargo test --release --test tenant_isolation"
cargo test --release --test tenant_isolation -q

echo "ci: hds-served remote round trip"
cargo build -q -p hidestore -p hidestore-server -p hidestore-fsck --bins
SERVE_DIR=$(mktemp -d)
SERVE_REPO="$SERVE_DIR/repo"
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SERVE_DIR"' EXIT
./target/debug/hidestore init "$SERVE_REPO" --chunk 4096 --container 262144 > /dev/null
head -c 3000000 /dev/urandom > "$SERVE_DIR/input.bin"
# Ephemeral port: the daemon prints the bound address on stdout.
./target/debug/hds-served "$SERVE_REPO" --quiet > "$SERVE_DIR/serve.out" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(sed -n 's/^hds-served listening on //p' "$SERVE_DIR/serve.out")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "ci: hds-served never reported its address"; exit 1; }
./target/debug/hidestore backup  --remote "$ADDR" "$SERVE_DIR/input.bin"
./target/debug/hidestore list    --remote "$ADDR" --json | grep -q '"version":1'
./target/debug/hidestore restore --remote "$ADDR" 1 "$SERVE_DIR/output.bin"
cmp "$SERVE_DIR/input.bin" "$SERVE_DIR/output.bin"
./target/debug/hidestore verify  --remote "$ADDR" | grep -q "clean"
./target/debug/hidestore shutdown --remote "$ADDR"
wait "$SERVE_PID"
./target/debug/hds-fsck "$SERVE_REPO"
trap - EXIT
rm -rf "$SERVE_DIR"

echo "ci: tree backup/restore round trip"
TREE_DIR=$(mktemp -d)
trap 'rm -rf "$TREE_DIR"' EXIT
./target/debug/hidestore init "$TREE_DIR/repo" --chunk 4096 --container 262144 > /dev/null
mkdir -p "$TREE_DIR/src/code/deep" "$TREE_DIR/src/logs" "$TREE_DIR/src/empty"
head -c 200000 /dev/urandom > "$TREE_DIR/src/code/main.rs"
head -c 50000  /dev/urandom > "$TREE_DIR/src/code/deep/util.rs"
printf 'hello tree\n' > "$TREE_DIR/src/readme.txt"
printf 'noise\n' > "$TREE_DIR/src/logs/build.log"
ln -s code/main.rs "$TREE_DIR/src/link"
./target/debug/hidestore backup-tree "$TREE_DIR/repo" "$TREE_DIR/src" --exclude '*.log'
# Full restore: byte-identical modulo the excluded log.
./target/debug/hidestore restore-tree "$TREE_DIR/repo" 1 "$TREE_DIR/full"
rm "$TREE_DIR/src/logs/build.log"
diff -r --no-dereference "$TREE_DIR/src" "$TREE_DIR/full"
[ ! -e "$TREE_DIR/full/logs/build.log" ]
[ -d "$TREE_DIR/full/empty" ]
# Subtree restore lands only the selected directory at the destination.
./target/debug/hidestore restore-tree "$TREE_DIR/repo" 1 "$TREE_DIR/sub" --subtree /code
diff -r "$TREE_DIR/src/code" "$TREE_DIR/sub"
[ ! -e "$TREE_DIR/sub/readme.txt" ]
./target/debug/hds-fsck "$TREE_DIR/repo"
# Resilience: an unreadable entry (fifo) is skipped, the backup still
# lands, and the exit code is non-zero.
mkfifo "$TREE_DIR/src/pipe"
if ./target/debug/hidestore backup-tree "$TREE_DIR/repo" "$TREE_DIR/src" 2> "$TREE_DIR/skip.err"; then
    echo "ci: backup-tree with a fifo should have exited non-zero"; exit 1
fi
grep -q "skipped /pipe" "$TREE_DIR/skip.err"
./target/debug/hidestore list "$TREE_DIR/repo" --json | grep -q '"version":2'
trap - EXIT
rm -rf "$TREE_DIR"

echo "ci: cargo test --release --test paper_claims"
cargo test --release --test paper_claims -q

echo "ci: all checks passed"
