#!/usr/bin/env sh
# Repository CI gate. Run from the workspace root:
#
#     ./ci.sh
#
# Six checks, in order of increasing cost; the script stops at the first
# failure:
#
#   1. cargo fmt --check            -- formatting drift
#   2. cargo xtask lint             -- panic-free library code + crate attrs
#   3. cargo clippy -D warnings     -- clippy across every target
#   4. cargo test -q                -- the full workspace test suite
#   5. crash matrix (release)       -- crash-at-every-I/O-site recovery sweep
#   6. differential suites (release)-- serial-vs-concurrent equality of the
#                                      backup pipeline AND the staged restore
#                                      engine, once at HDS_THREADS=1 and 8
#
# Everything runs offline against the vendored dependencies in vendor/.
set -eu

echo "ci: cargo fmt --check"
cargo fmt --check

echo "ci: cargo xtask lint"
cargo xtask lint

echo "ci: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: cargo test --workspace -q"
cargo test --workspace -q

echo "ci: cargo test --release --test crash_matrix"
cargo test --release --test crash_matrix -q

echo "ci: cargo test --release --test pipeline_differential (HDS_THREADS=1)"
HDS_THREADS=1 cargo test --release --test pipeline_differential -q

echo "ci: cargo test --release --test pipeline_differential (HDS_THREADS=8)"
HDS_THREADS=8 cargo test --release --test pipeline_differential -q

echo "ci: cargo test --release --test restore_differential (HDS_THREADS=1)"
HDS_THREADS=1 cargo test --release --test restore_differential -q

echo "ci: cargo test --release --test restore_differential (HDS_THREADS=8)"
HDS_THREADS=8 cargo test --release --test restore_differential -q

echo "ci: all checks passed"
