//! Scaled-down criterion versions of the paper's figure experiments, so
//! `cargo bench` exercises every end-to-end path. The full-size runs live in
//! the `src/bin/` experiment binaries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hidestore_bench::{
    run_dedup_scheme, run_restore_scheme, version_tag_matrix, workload_versions, DedupScheme,
    RestoreScheme, Scale,
};
use hidestore_workloads::Profile;

fn tiny() -> Scale {
    Scale::tiny()
}

fn bench_fig8_dedup_ratio(c: &mut Criterion) {
    let scale = tiny();
    let versions = workload_versions(Profile::Kernel, scale);
    let mut group = c.benchmark_group("fig8-dedup");
    group.sample_size(10);
    for scheme in [DedupScheme::Ddfs, DedupScheme::Silo, DedupScheme::HiDeStore] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &versions,
            |b, versions| {
                b.iter(|| {
                    black_box(
                        run_dedup_scheme(scheme, versions, scale, Profile::Kernel).dedup_ratio,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_fig11_restore(c: &mut Criterion) {
    let scale = tiny();
    let versions = workload_versions(Profile::Kernel, scale);
    let mut group = c.benchmark_group("fig11-restore");
    group.sample_size(10);
    for scheme in [RestoreScheme::Baseline, RestoreScheme::HiDeStore] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &versions,
            |b, versions| {
                b.iter(|| {
                    let run = run_restore_scheme(scheme, versions, scale, Profile::Kernel);
                    black_box(run.speed_factors.last().copied())
                });
            },
        );
    }
    group.finish();
}

fn bench_fig3_tag_matrix(c: &mut Criterion) {
    let scale = tiny();
    let versions = workload_versions(Profile::Kernel, scale);
    let mut group = c.benchmark_group("fig3-tags");
    group.sample_size(10);
    group.bench_function("kernel", |b| {
        b.iter(|| black_box(version_tag_matrix(&versions, scale).len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig8_dedup_ratio,
    bench_fig11_restore,
    bench_fig3_tag_matrix
);
criterion_main!(benches);
