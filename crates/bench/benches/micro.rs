//! Criterion micro-benchmarks for the substrate components: chunking
//! throughput, fingerprinting throughput, fingerprint-cache operations,
//! container compaction, and restore assembly.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use hidestore_chunking::{chunk_spans, ChunkerKind, StreamChunker, TttdChunker};
use hidestore_core::{ActivePool, CacheEntry, FingerprintCache};
use hidestore_hash::{fingerprints_parallel, Fingerprint, Md5, Sha1, Sha256};
use hidestore_restore::{Faa, RestoreCache, RestoreEntry};
use hidestore_storage::{Container, ContainerId, ContainerStore, MemoryContainerStore};

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn bench_chunking(c: &mut Criterion) {
    let data = noise(8 << 20, 1);
    let mut group = c.benchmark_group("chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for kind in ChunkerKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &data, |b, data| {
            let mut chunker = kind.build(4096);
            b.iter(|| black_box(chunk_spans(chunker.as_mut(), data).len()));
        });
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let data = noise(4 << 20, 2);
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    group.bench_function("sha1", |b| b.iter(|| black_box(Sha1::hash(&data))));
    group.bench_function("sha256", |b| b.iter(|| black_box(Sha256::hash(&data))));
    group.bench_function("md5", |b| b.iter(|| black_box(Md5::hash(&data))));
    group.finish();
}

fn bench_parallel_fingerprinting(c: &mut Criterion) {
    let data = noise(16 << 20, 5);
    let spans: Vec<std::ops::Range<usize>> = (0..data.len())
        .step_by(4096)
        .map(|i| i..(i + 4096).min(data.len()))
        .collect();
    let mut group = c.benchmark_group("fingerprinting");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(fingerprints_parallel(&data, &spans, t).len()));
        });
    }
    group.finish();
}

fn bench_stream_chunker(c: &mut Criterion) {
    let data = noise(8 << 20, 6);
    let mut group = c.benchmark_group("stream-chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    group.bench_function("tttd-64k-pushes", |b| {
        b.iter(|| {
            let mut n = 0usize;
            let mut stream = StreamChunker::new(TttdChunker::new(4096));
            for piece in data.chunks(64 << 10) {
                stream.push(piece, |_| n += 1);
            }
            stream.finish(|_| n += 1);
            black_box(n)
        });
    });
    group.finish();
}

fn bench_fingerprint_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("fingerprint-cache");
    group.bench_function("classify-insert-advance-10k", |b| {
        b.iter(|| {
            let mut cache = FingerprintCache::new(1);
            for i in 0..10_000u64 {
                let fp = Fingerprint::synthetic(i);
                cache.classify(fp);
                cache.insert_current(
                    fp,
                    CacheEntry {
                        size: 4096,
                        active_cid: 1,
                    },
                );
            }
            black_box(cache.advance_version().len())
        });
    });
    group.finish();
}

fn bench_pool_compaction(c: &mut Criterion) {
    c.bench_function("active-pool/compact-sparse", |b| {
        b.iter(|| {
            let mut pool = ActivePool::new(64 << 10);
            for i in 0..2000u64 {
                pool.add(Fingerprint::synthetic(i), &noise(1024, i));
            }
            for i in (0..2000u64).step_by(2) {
                pool.remove(&Fingerprint::synthetic(i));
            }
            let (report, _) = pool.compact(0.6);
            black_box(report.chunks_moved)
        });
    });
}

fn bench_faa_restore(c: &mut Criterion) {
    // Build a store of 32 containers x 64 chunks.
    let mut store = MemoryContainerStore::new();
    let mut plan = Vec::new();
    for cid in 1..=32u32 {
        let mut container = Container::new(ContainerId::new(cid), 64 * 1100);
        for i in 0..64u64 {
            let data = noise(1024, cid as u64 * 1000 + i);
            let fp = Fingerprint::of(&data);
            container.try_add(fp, &data);
            plan.push(RestoreEntry::new(fp, 1024, ContainerId::new(cid)));
        }
        store.write(container).unwrap();
    }
    let mut group = c.benchmark_group("restore");
    group.throughput(Throughput::Bytes((plan.len() * 1024) as u64));
    group.bench_function("faa-sequential", |b| {
        b.iter(|| {
            let mut cache = Faa::new(1 << 20);
            let report = cache
                .restore(&plan, &mut store, &mut std::io::sink())
                .unwrap();
            black_box(report.container_reads)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_chunking,
    bench_hashing,
    bench_parallel_fingerprinting,
    bench_stream_chunker,
    bench_fingerprint_cache,
    bench_pool_compaction,
    bench_faa_restore
);
criterion_main!(benches);
