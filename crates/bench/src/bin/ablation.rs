//! Ablation studies over HiDeStore's design choices (DESIGN.md §3):
//!
//! 1. **History depth** (1 vs 2) on each workload — the macos observation:
//!    depth 2 rescues chunks that skip one version.
//! 2. **Compaction threshold** — how aggressively sparse active containers
//!    are merged vs. the newest version's restore locality.
//! 3. **Chunking algorithm** — the paper picks TTTD; what do the others
//!    cost/gain?
//! 4. **Container capacity** — locality granularity vs. read amplification.

use hidestore_bench::{workload_versions, Scale};
use hidestore_chunking::ChunkerKind;
use hidestore_core::{HiDeStore, HiDeStoreConfig};
use hidestore_restore::Faa;
use hidestore_storage::{MemoryContainerStore, VersionId};
use hidestore_workloads::Profile;

fn run(config: HiDeStoreConfig, versions: &[Vec<u8>], faa_area: usize) -> (f64, f64) {
    let mut hds = HiDeStore::new(config, MemoryContainerStore::new());
    for v in versions {
        hds.backup(v).expect("memory store cannot fail");
    }
    hds.flatten_recipes();
    let newest = VersionId::new(versions.len() as u32);
    let report = hds
        .restore(newest, &mut Faa::new(faa_area), &mut std::io::sink())
        .expect("restore of retained version");
    (hds.run_stats().dedup_ratio(), report.speed_factor())
}

fn main() {
    let scale = Scale::from_env();
    let faa_area = 8 * scale.container;

    // 1. History depth per workload.
    let mut rows = Vec::new();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let mut row = vec![profile.to_string()];
        for depth in [1usize, 2] {
            let cfg = HiDeStoreConfig {
                history_depth: depth,
                ..scale.hidestore_config(profile)
            };
            let (ratio, sf) = run(cfg, &versions, faa_area);
            row.push(format!("{:.2}% / {sf:.3}", ratio * 100.0));
        }
        rows.push(row);
    }
    hidestore_bench::print_table(
        "Ablation: history depth (dedup ratio / newest speed factor)",
        &["dataset", "depth 1", "depth 2"],
        &rows,
    );
    hidestore_bench::write_csv("ablation_depth", &["dataset", "depth1", "depth2"], &rows);

    // 2. Compaction threshold on kernel.
    let versions = workload_versions(Profile::Kernel, scale);
    let mut rows = Vec::new();
    for threshold in [0.25, 0.5, 0.75, 0.95] {
        let cfg = HiDeStoreConfig {
            compact_threshold: threshold,
            ..scale.hidestore_config(Profile::Kernel)
        };
        let (ratio, sf) = run(cfg, &versions, faa_area);
        rows.push(vec![
            format!("{threshold:.2}"),
            format!("{:.2}%", ratio * 100.0),
            format!("{sf:.3}"),
        ]);
    }
    hidestore_bench::print_table(
        "Ablation: compaction threshold (kernel)",
        &["threshold", "dedup ratio", "newest speed factor"],
        &rows,
    );
    hidestore_bench::write_csv(
        "ablation_compaction",
        &["threshold", "dedup_ratio", "speed_factor"],
        &rows,
    );

    // 3. Chunking algorithm on kernel (FastCDC needs power-of-two average).
    let mut rows = Vec::new();
    for kind in ChunkerKind::ALL {
        let cfg = HiDeStoreConfig {
            chunker: kind,
            ..scale.hidestore_config(Profile::Kernel)
        };
        let (ratio, sf) = run(cfg, &versions, faa_area);
        rows.push(vec![
            kind.to_string(),
            format!("{:.2}%", ratio * 100.0),
            format!("{sf:.3}"),
        ]);
    }
    hidestore_bench::print_table(
        "Ablation: chunking algorithm (kernel)",
        &["chunker", "dedup ratio", "newest speed factor"],
        &rows,
    );
    hidestore_bench::write_csv(
        "ablation_chunker",
        &["chunker", "dedup_ratio", "speed_factor"],
        &rows,
    );

    // 4. Container capacity on kernel.
    let mut rows = Vec::new();
    for shift in [18usize, 19, 20, 21] {
        let capacity = 1usize << shift;
        let cfg = HiDeStoreConfig {
            container_capacity: capacity,
            ..scale.hidestore_config(Profile::Kernel)
        };
        let (ratio, sf) = run(cfg, &versions, 8 * capacity);
        rows.push(vec![
            format!("{} KiB", capacity >> 10),
            format!("{:.2}%", ratio * 100.0),
            format!("{sf:.3}"),
        ]);
    }
    hidestore_bench::print_table(
        "Ablation: container capacity (kernel)",
        &["capacity", "dedup ratio", "newest speed factor"],
        &rows,
    );
    hidestore_bench::write_csv(
        "ablation_container",
        &["capacity", "dedup_ratio", "speed_factor"],
        &rows,
    );
}
