//! Runs every experiment binary's logic in sequence — the one-shot
//! reproduction of the paper's whole evaluation section. Results land in
//! `results/*.csv` and on stdout.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("binary directory");
    let names = [
        "table1",
        "fig3",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "deletion",
        "fragmentation",
        "scaling",
        "ablation",
        "throughput",
    ];
    for name in names {
        let path = dir.join(name);
        println!("\n################ {name} ################");
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{name} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nall experiments complete; see results/*.csv");
}
