//! Run a custom Destor-style configuration over a workload profile:
//!
//! ```text
//! custom <config-file> [kernel|gcc|fslhomes|macos|gdb|cmake]
//! ```
//!
//! The config file uses the `destor_config` format (chunker/index/rewrite/
//! container/...). Prints dedup ratio, index lookups, and per-version
//! restore speed factors — the standard report for a one-off experiment.

use hidestore_bench::{workload_versions, Scale};
use hidestore_dedup::destor_config::DestorConfig;
use hidestore_dedup::FingerprintIndex;
use hidestore_restore::Faa;
use hidestore_storage::VersionId;
use hidestore_workloads::Profile;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(config_path) = args.first() else {
        eprintln!("usage: custom <config-file> [profile]");
        std::process::exit(2);
    };
    let profile = match args.get(1).map(String::as_str) {
        None | Some("kernel") => Profile::Kernel,
        Some("gcc") => Profile::Gcc,
        Some("fslhomes") => Profile::Fslhomes,
        Some("macos") => Profile::Macos,
        Some("gdb") => Profile::Gdb,
        Some("cmake") => Profile::Cmake,
        Some(other) => {
            eprintln!("unknown profile {other}");
            std::process::exit(2);
        }
    };
    let text = std::fs::read_to_string(config_path).unwrap_or_else(|e| {
        eprintln!("cannot read {config_path}: {e}");
        std::process::exit(1);
    });
    let config: DestorConfig = text.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    println!("configuration: {config:?}\n");

    let mut scale = Scale::from_env();
    scale.container = config.pipeline.container_capacity;
    scale.chunk = config.pipeline.avg_chunk_size;
    let versions = workload_versions(profile, scale);
    let mut pipeline = config.build_pipeline();
    for (i, v) in versions.iter().enumerate() {
        let stats = pipeline.backup(v).expect("memory store cannot fail");
        println!(
            "V{:<3} dedup {:>6.2}%  lookups {:>8}  rewritten {:>10} B",
            i + 1,
            stats.dedup_ratio() * 100.0,
            stats.disk_lookups,
            stats.rewritten_bytes,
        );
    }
    println!(
        "\ncumulative dedup ratio {:.2}%, total index lookups {}, index table {} B",
        pipeline.run_stats().dedup_ratio() * 100.0,
        pipeline.index().disk_lookups(),
        pipeline.index().index_table_bytes(),
    );
    let mut rows = Vec::new();
    for v in 1..=versions.len() as u32 {
        let report = pipeline
            .restore(
                VersionId::new(v),
                &mut Faa::new(8 * config.pipeline.container_capacity),
                &mut std::io::sink(),
            )
            .expect("restore of retained version");
        rows.push(vec![
            format!("V{v}"),
            format!("{:.3}", report.speed_factor()),
        ]);
    }
    hidestore_bench::print_table(
        &format!("restore speed factors ({profile})"),
        &["version", "MB/read"],
        &rows,
    );
}
