//! §5.5 — deleting expired versions: HiDeStore's tag-based container drop
//! versus the traditional mark-sweep garbage collection the baselines need.

use hidestore_bench::{run_overheads, workload_versions, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let row = run_overheads(&versions, scale, profile);
        let speedup = row.gc_delete.as_secs_f64() / row.hidestore_delete.as_secs_f64().max(1e-9);
        rows.push(vec![
            profile.to_string(),
            format!("{:.3}", row.hidestore_delete.as_secs_f64() * 1000.0),
            format!("{:.3}", row.gc_delete.as_secs_f64() * 1000.0),
            format!("{speedup:.1}x"),
        ]);
    }
    hidestore_bench::print_table(
        "Deletion (expire oldest third of versions)",
        &["dataset", "HiDeStore (ms)", "mark-sweep GC (ms)", "speedup"],
        &rows,
    );
    hidestore_bench::write_csv(
        "deletion",
        &["dataset", "hidestore_ms", "gc_ms", "speedup"],
        &rows,
    );
    println!(
        "\npaper claim (§5.5): HiDeStore deletion needs no chunk-liveness detection and no \
         garbage collection — overhead is near zero"
    );
}
