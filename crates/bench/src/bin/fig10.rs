//! Figure 10 — index table space overhead: bytes of index structure per MB
//! of data processed, after each version.
//!
//! Expected shape (paper §5.2.3): DDFS highest (one full-index entry per
//! unique chunk); SparseIndex ~1/sample-rate of that; SiLo smaller still
//! (one entry per segment); HiDeStore lowest — it keeps no index table
//! beyond the bounded two-version fingerprint cache, whose *relative* cost
//! shrinks as data accumulates.

use hidestore_bench::{run_dedup_scheme, workload_versions, DedupScheme, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let runs: Vec<_> = DedupScheme::FIG9
            .iter()
            .map(|&s| run_dedup_scheme(s, &versions, scale, profile))
            .collect();
        let mut rows = Vec::new();
        for v in 0..versions.len() {
            let mut row = vec![format!("V{}", v + 1)];
            for run in &runs {
                row.push(format!("{:.1}", run.rows[v].index_bytes_per_mb));
            }
            rows.push(row);
        }
        let mut headers = vec!["version"];
        headers.extend(DedupScheme::FIG9.iter().map(|s| s.label()));
        hidestore_bench::print_table(
            &format!("Figure 10 ({profile}): index bytes per MB of data"),
            &headers,
            &rows,
        );
        hidestore_bench::write_csv(&format!("fig10_{profile}"), &headers, &rows);

        let last = versions.len() - 1;
        println!(
            "{profile}: final bytes/MB — DDFS {:.1}, Sparse {:.1}, SiLo {:.1}, HiDeStore {:.1}",
            runs[0].rows[last].index_bytes_per_mb,
            runs[1].rows[last].index_bytes_per_mb,
            runs[2].rows[last].index_bytes_per_mb,
            runs[3].rows[last].index_bytes_per_mb,
        );
    }
}
