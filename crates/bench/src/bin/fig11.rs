//! Figure 11 — restore performance: speed factor (MB per container read)
//! for every version, restored after the whole workload is ingested.
//!
//! Expected shape (paper §5.3): HiDeStore clearly highest on the *newest*
//! versions (their chunks sit dense in the active containers) while
//! sacrificing the oldest versions; rewriting schemes (Capping, ALACC+FBW)
//! improve on the baseline everywhere but pay deduplication ratio for it.

use hidestore_bench::{run_restore_scheme, workload_versions, RestoreScheme, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let runs: Vec<_> = RestoreScheme::ALL
            .iter()
            .map(|&s| run_restore_scheme(s, &versions, scale, profile))
            .collect();
        let mut rows = Vec::new();
        for v in 0..versions.len() {
            let mut row = vec![format!("V{}", v + 1)];
            for run in &runs {
                row.push(format!("{:.3}", run.speed_factors[v].1));
            }
            rows.push(row);
        }
        let mut headers = vec!["version"];
        headers.extend(RestoreScheme::ALL.iter().map(|s| s.label()));
        hidestore_bench::print_table(
            &format!("Figure 11 ({profile}): speed factor (MB/container-read)"),
            &headers,
            &rows,
        );
        hidestore_bench::write_csv(&format!("fig11_{profile}"), &headers, &rows);

        let last = versions.len() - 1;
        let newest: Vec<f64> = runs.iter().map(|r| r.speed_factors[last].1).collect();
        println!(
            "{profile}: newest-version speed factor — baseline {:.3}, capping {:.3}, \
             alacc+fbw {:.3}, hidestore {:.3} (hidestore/alacc = {:.2}x); \
             dedup ratios {:.2}%/{:.2}%/{:.2}%/{:.2}%",
            newest[0],
            newest[1],
            newest[2],
            newest[3],
            newest[3] / newest[2].max(1e-9),
            runs[0].dedup_ratio * 100.0,
            runs[1].dedup_ratio * 100.0,
            runs[2].dedup_ratio * 100.0,
            runs[3].dedup_ratio * 100.0,
        );
    }
}
