//! Figure 12 — HiDeStore's maintenance overheads: mean per-version latency
//! of (a) updating the previous recipe(s) and (b) moving cold chunks /
//! merging sparse active containers; plus the offline Algorithm 1 pass.

use hidestore_bench::{run_overheads, workload_versions, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let row = run_overheads(&versions, scale, profile);
        rows.push(vec![
            profile.to_string(),
            format!("{:.2}", row.mean_recipe_update.as_secs_f64() * 1000.0),
            format!("{:.2}", row.mean_chunk_move.as_secs_f64() * 1000.0),
            format!("{:.2}", row.flatten_time.as_secs_f64() * 1000.0),
        ]);
    }
    hidestore_bench::print_table(
        "Figure 12: HiDeStore overheads (ms)",
        &[
            "dataset",
            "recipe update (mean)",
            "move+merge (mean)",
            "algorithm 1 (full)",
        ],
        &rows,
    );
    hidestore_bench::write_csv(
        "fig12",
        &["dataset", "recipe_update_ms", "move_merge_ms", "flatten_ms"],
        &rows,
    );
    println!("\npaper reports e.g. ~21ms per recipe update on kernel (at 64GB scale)");
}
