//! Figure 3 — the heuristic experiment on fragmented chunks: after each
//! backup version, how many chunks still carry each version tag. The paper's
//! observation: a tag's count drops sharply one version after it stops being
//! current (two for macos) and then stays flat — old chunks rarely recur.

use hidestore_bench::{version_tag_matrix, workload_versions, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let matrix = version_tag_matrix(&versions, scale);
        let n = matrix.len();
        // Print counts for the first few tags across all versions, like the
        // paper's per-tag curves.
        let shown_tags = n.min(6);
        let mut rows = Vec::new();
        for (after, counts) in matrix.iter().enumerate() {
            let mut row = vec![format!("after V{}", after + 1)];
            for count in counts.iter().take(shown_tags) {
                row.push(count.to_string());
            }
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["".to_string()];
        headers.extend((1..=shown_tags).map(|t| format!("V{t} chunks")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        hidestore_bench::print_table(
            &format!("Figure 3 ({profile}): chunks per version tag"),
            &header_refs,
            &rows,
        );
        let csv_rows: Vec<Vec<String>> = matrix
            .iter()
            .enumerate()
            .map(|(after, counts)| {
                let mut row = vec![(after + 1).to_string()];
                row.extend(counts.iter().map(u64::to_string));
                row
            })
            .collect();
        let mut csv_headers = vec!["after_version".to_string()];
        csv_headers.extend((1..=n).map(|t| format!("tag_v{t}")));
        let csv_header_refs: Vec<&str> = csv_headers.iter().map(String::as_str).collect();
        hidestore_bench::write_csv(&format!("fig3_{profile}"), &csv_header_refs, &csv_rows);

        // Summarize the decay property the paper highlights.
        if n >= 3 {
            let v1_initial = matrix[0][0];
            let v1_after_2 = matrix[1][0];
            let v1_final = matrix[n - 1][0];
            println!(
                "{profile}: V1 chunks {v1_initial} -> {v1_after_2} after V2 -> {v1_final} at end \
                 (decay concentrated in the first step{})",
                if profile == Profile::Macos {
                    ", spread over two steps for macos"
                } else {
                    ""
                }
            );
        }
    }
}
