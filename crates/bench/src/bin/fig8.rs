//! Figure 8 — deduplication ratios across schemes and workloads.
//!
//! Expected shape (paper §5.2.1): DDFS highest (exact); HiDeStore ≈ DDFS;
//! SparseIndex and SiLo slightly lower (near-exact sampling losses); the
//! rewriting schemes (SiLo+Capping, SiLo+FBW) lowest because rewritten
//! duplicates consume space.

use hidestore_bench::{run_dedup_scheme, workload_versions, DedupScheme, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let mut row = vec![profile.to_string()];
        for scheme in DedupScheme::FIG8 {
            let run = run_dedup_scheme(scheme, &versions, scale, profile);
            row.push(format!("{:.2}%", run.dedup_ratio * 100.0));
        }
        rows.push(row);
    }
    let mut headers = vec!["dataset"];
    headers.extend(DedupScheme::FIG8.iter().map(|s| s.label()));
    hidestore_bench::print_table("Figure 8: deduplication ratio", &headers, &rows);
    hidestore_bench::write_csv("fig8", &headers, &rows);
    println!("\nexpected shape: DDFS ≈ HiDeStore > SparseIndex, SiLo > SiLo+Capping, SiLo+FBW");
}
