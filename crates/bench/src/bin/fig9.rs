//! Figure 9 — index lookup overhead: on-disk lookup requests per GB, per
//! backup version, for each deduplication scheme.
//!
//! Expected shape (paper §5.2.2): HiDeStore lowest and flat (its only
//! "lookups" are the sequential prefetch of the previous recipe); DDFS grows
//! as fragmentation dilutes its locality cache; Sparse/SiLo sit between.

use hidestore_bench::{run_dedup_scheme, workload_versions, DedupScheme, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let runs: Vec<_> = DedupScheme::FIG9
            .iter()
            .map(|&s| run_dedup_scheme(s, &versions, scale, profile))
            .collect();
        let mut rows = Vec::new();
        for v in 0..versions.len() {
            let mut row = vec![format!("V{}", v + 1)];
            for run in &runs {
                row.push(format!("{:.0}", run.rows[v].lookups_per_gb));
            }
            rows.push(row);
        }
        let mut headers = vec!["version"];
        headers.extend(DedupScheme::FIG9.iter().map(|s| s.label()));
        hidestore_bench::print_table(
            &format!("Figure 9 ({profile}): lookup requests per GB"),
            &headers,
            &rows,
        );
        hidestore_bench::write_csv(&format!("fig9_{profile}"), &headers, &rows);

        // Headline number: mean reduction vs DDFS over the last half.
        let half = versions.len() / 2;
        let mean = |run: &hidestore_bench::DedupRun| {
            run.rows[half..]
                .iter()
                .map(|r| r.lookups_per_gb)
                .sum::<f64>()
                / (versions.len() - half) as f64
        };
        let ddfs = mean(&runs[0]);
        let hds = mean(&runs[3]);
        if ddfs > 0.0 {
            println!(
                "{profile}: HiDeStore mean lookups/GB over last half = {hds:.0} vs DDFS {ddfs:.0} \
                 ({:.0}% reduction)",
                (1.0 - hds / ddfs) * 100.0
            );
        }
    }
}
