//! §2.3's motivation, quantified: the Chunk Fragmentation Level of each
//! version's recipe under the no-rewrite baseline versus HiDeStore (after
//! Algorithm 1), using the analysis module's CFL metric.

use hidestore_bench::{workload_versions, Scale};
use hidestore_core::HiDeStore;
use hidestore_dedup::analysis::analyze_recipe;
use hidestore_dedup::BackupPipeline;
use hidestore_index::DdfsIndex;
use hidestore_rewriting::NoRewrite;
use hidestore_storage::{MemoryContainerStore, VersionId};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    for profile in [Profile::Kernel, Profile::Gcc] {
        let versions = workload_versions(profile, scale);

        let mut baseline = BackupPipeline::new(
            scale.pipeline_config(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        for v in &versions {
            baseline.backup(v).expect("memory store cannot fail");
        }

        let mut hds = HiDeStore::new(scale.hidestore_config(profile), MemoryContainerStore::new());
        for v in &versions {
            hds.backup(v).expect("memory store cannot fail");
        }
        hds.flatten_recipes();

        let mut rows = Vec::new();
        for v in 1..=versions.len() as u32 {
            let base = analyze_recipe(
                baseline.recipes().get(VersionId::new(v)).expect("retained"),
                scale.container,
            );
            // HiDeStore recipes keep hot chunks as ACTIVE entries; resolve
            // the chain so every chunk maps to a physical container.
            let plan =
                hidestore_core::chain::resolve_plan(hds.recipes(), hds.pool(), VersionId::new(v))
                    .expect("retained version resolves");
            let hd = hidestore_dedup::analysis::analyze_plan(
                plan.into_iter().map(|(_, size, cid)| (size, cid)),
                scale.container,
            );
            rows.push(vec![
                format!("V{v}"),
                format!("{:.3}", base.cfl),
                format!("{:.1}", base.mean_bytes_per_container / 1024.0),
                format!("{:.3}", hd.cfl),
                format!("{:.1}", hd.mean_bytes_per_container / 1024.0),
            ]);
        }
        hidestore_bench::print_table(
            &format!("Fragmentation ({profile}): CFL and useful KiB per referenced container"),
            &[
                "version",
                "baseline CFL",
                "baseline KiB/ctr",
                "HiDeStore CFL",
                "HiDeStore KiB/ctr",
            ],
            &rows,
        );
        hidestore_bench::write_csv(
            &format!("fragmentation_{profile}"),
            &[
                "version",
                "baseline_cfl",
                "baseline_kib_per_ctr",
                "hds_cfl",
                "hds_kib_per_ctr",
            ],
            &rows,
        );
    }
    println!(
        "\nthe baseline's CFL decays with version age toward the newest (fragmentation \
         accumulates); HiDeStore inverts the curve — the newest version is the most clustered."
    );
}
