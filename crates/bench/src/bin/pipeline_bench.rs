//! Serial vs staged-concurrent backup throughput.
//!
//! Runs the same synthetic workload through the backup pipeline at a sweep
//! of thread counts and reports ingest throughput plus the per-stage
//! counters, then cross-checks that every configuration produced an
//! identical repository (the staged pipeline's hard determinism
//! requirement). Thread counts beyond the machine's available parallelism
//! cannot speed anything up — the harness prints the detected parallelism
//! so the numbers can be read in context.
//!
//! Scale via `HIDESTORE_MB` / `HIDESTORE_VERSIONS` / `HIDESTORE_SEED`;
//! sweep via `HDS_THREADS` (comma-separated list, default `1,2,4,8`).

use std::time::Instant;

use hidestore_bench::{workload_versions, Scale};
use hidestore_dedup::{BackupPipeline, ConcurrencyConfig, PipelineConfig};
use hidestore_index::DdfsIndex;
use hidestore_rewriting::NoRewrite;
use hidestore_storage::{ContainerStore, MemoryContainerStore};
use hidestore_workloads::Profile;

fn thread_sweep() -> Vec<usize> {
    match std::env::var("HDS_THREADS") {
        Ok(list) => list
            .split(',')
            .map(|t| t.trim().parse().expect("HDS_THREADS must be numbers"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

struct Run {
    threads: usize,
    elapsed_s: f64,
    mb_per_s: f64,
    blocked_full: u64,
    blocked_empty: u64,
    container_crc: u32,
}

fn run_once(threads: usize, scale: Scale, versions: &[Vec<u8>]) -> Run {
    let config = PipelineConfig {
        avg_chunk_size: scale.chunk,
        container_capacity: scale.container,
        segment_chunks: 128,
        concurrency: ConcurrencyConfig::threads(threads),
        ..PipelineConfig::default()
    };
    let mut p = BackupPipeline::new(
        config,
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    let start = Instant::now();
    for v in versions {
        p.backup(v).expect("memory store cannot fail");
    }
    let elapsed = start.elapsed();
    let logical = p.run_stats().logical_bytes;
    let stages = p.run_stats().stages;

    // A digest of the whole repository, for cross-thread-count comparison.
    let mut repo_bytes = Vec::new();
    for id in p.store().ids() {
        repo_bytes.extend_from_slice(&p.store_mut().read(id).unwrap().encode());
    }
    let crc = hidestore_hash::crc32(&repo_bytes);
    Run {
        threads,
        elapsed_s: elapsed.as_secs_f64(),
        mb_per_s: logical as f64 / (1 << 20) as f64 / elapsed.as_secs_f64(),
        blocked_full: stages.chunk.blocked_full + stages.hash.blocked_full,
        blocked_empty: stages.hash.blocked_empty + stages.commit.blocked_empty,
        container_crc: crc,
    }
}

fn main() {
    let scale = Scale::from_env();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let versions = workload_versions(Profile::Kernel, scale);

    let runs: Vec<Run> = thread_sweep()
        .into_iter()
        .map(|threads| run_once(threads, scale, &versions))
        .collect();

    let baseline = runs
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.elapsed_s)
        .unwrap_or(runs[0].elapsed_s);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                format!("{:.3}", r.elapsed_s),
                format!("{:.1}", r.mb_per_s),
                format!("{:.2}x", baseline / r.elapsed_s),
                r.blocked_full.to_string(),
                r.blocked_empty.to_string(),
                format!("{:08x}", r.container_crc),
            ]
        })
        .collect();
    hidestore_bench::print_table(
        &format!(
            "Backup throughput, serial vs staged pipeline (hardware parallelism: {parallelism})"
        ),
        &[
            "threads",
            "seconds",
            "MB/s",
            "speedup",
            "blocked_full",
            "blocked_empty",
            "repo_crc32",
        ],
        &rows,
    );
    hidestore_bench::write_csv(
        "pipeline_bench",
        &[
            "threads",
            "seconds",
            "mb_per_s",
            "speedup",
            "blocked_full",
            "blocked_empty",
            "repo_crc32",
        ],
        &rows,
    );

    // Determinism cross-check: every thread count must have produced the
    // byte-identical repository.
    let crc = runs[0].container_crc;
    for r in &runs {
        assert_eq!(
            r.container_crc, crc,
            "thread count {} produced a different repository",
            r.threads
        );
    }
    println!(
        "\nall {} thread counts produced identical repositories",
        runs.len()
    );
}
