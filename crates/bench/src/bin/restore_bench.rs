//! Serial vs staged-concurrent restore: scheme × cache size × threads.
//!
//! Ingests a fragmented multi-version workload into HiDeStore once, then
//! restores the oldest (most fragmented) version through every restore
//! scheme at two cache sizes and a sweep of engine thread counts. Each run
//! reports the paper's §5.3 speed factor plus the staged engine's per-stage
//! counters, and the harness cross-checks that every configuration restored
//! CRC-identical data — the engine's serial-equivalence requirement.
//!
//! Scale via `HIDESTORE_MB` / `HIDESTORE_VERSIONS` / `HIDESTORE_SEED`;
//! sweep via `HDS_THREADS` (comma-separated list, default `1,2,8`).

use std::time::Instant;

use hidestore_bench::{workload_versions, Scale};
use hidestore_core::HiDeStore;
use hidestore_restore::{Alacc, BeladyCache, ChunkLru, ContainerLru, Faa, RestoreCache};
use hidestore_restore::{RestoreConcurrency, RestoreReport};
use hidestore_storage::{MemoryContainerStore, VersionId};
use hidestore_workloads::Profile;

fn thread_sweep() -> Vec<usize> {
    match std::env::var("HDS_THREADS") {
        Ok(list) => list
            .split(',')
            .map(|t| t.trim().parse().expect("HDS_THREADS must be numbers"))
            .collect(),
        Err(_) => vec![1, 2, 8],
    }
}

/// Scheme constructors at a given cache scale (container slots for
/// container-granular schemes, bytes for chunk/area-granular ones).
fn make_scheme(kind: &str, slots: usize, bytes: usize) -> Box<dyn RestoreCache> {
    match kind {
        "container-lru" => Box::new(ContainerLru::new(slots)),
        "chunk-lru" => Box::new(ChunkLru::new(bytes)),
        "faa" => Box::new(Faa::new(bytes)),
        "alacc" => Box::new(Alacc::new(bytes / 2, bytes / 2)),
        "belady" => Box::new(BeladyCache::new(slots)),
        other => unreachable!("unknown scheme {other}"),
    }
}

struct Run {
    scheme: &'static str,
    cache: &'static str,
    threads: usize,
    elapsed_s: f64,
    report: RestoreReport,
    crc: u32,
}

fn main() {
    let scale = Scale::from_env();
    let versions = workload_versions(Profile::Kernel, scale);
    let mut hds = HiDeStore::new(
        scale.hidestore_config(Profile::Kernel),
        MemoryContainerStore::new(),
    );
    for data in &versions {
        hds.backup(data).expect("memory store cannot fail");
    }
    hds.flatten_recipes();
    // The oldest version reads through the most relocated layout.
    let target = VersionId::new(1);

    let cache_sizes: [(&str, usize, usize); 2] = [
        ("small", 2, 4 * scale.container),
        ("large", 32, 64 * scale.container),
    ];
    let schemes = ["container-lru", "chunk-lru", "faa", "alacc", "belady"];
    let sweep = thread_sweep();

    let mut runs: Vec<Run> = Vec::new();
    for scheme in schemes {
        for (cache, slots, bytes) in cache_sizes {
            for &threads in &sweep {
                let mut cache_impl = make_scheme(scheme, slots, bytes);
                let conc = RestoreConcurrency::threads(threads);
                let mut out = Vec::new();
                let start = Instant::now();
                let report = hds
                    .restore_with(target, cache_impl.as_mut(), &mut out, &conc)
                    .expect("restore of retained version");
                runs.push(Run {
                    scheme,
                    cache,
                    threads,
                    elapsed_s: start.elapsed().as_secs_f64(),
                    report,
                    crc: hidestore_hash::crc32(&out),
                });
            }
        }
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.scheme.to_string(),
                r.cache.to_string(),
                r.threads.to_string(),
                format!("{:.4}", r.elapsed_s),
                r.report.container_reads.to_string(),
                format!("{:.2}", r.report.speed_factor()),
                r.report.stage.containers_prefetched.to_string(),
                r.report.stage.prefetch_hits.to_string(),
                r.report.stage.prefetch_misses.to_string(),
                r.report.stage.prefetch_wasted.to_string(),
                format!("{:08x}", r.crc),
            ]
        })
        .collect();
    let headers = [
        "scheme",
        "cache",
        "threads",
        "seconds",
        "reads",
        "MB/read",
        "prefetched",
        "pf_hits",
        "pf_miss",
        "pf_waste",
        "crc32",
    ];
    hidestore_bench::print_table(
        &format!(
            "Restore speed factor, serial vs staged engine (restoring {} of {} versions)",
            target,
            versions.len()
        ),
        &headers,
        &rows,
    );
    hidestore_bench::write_csv("restore_bench", &headers, &rows);

    // Serial-equivalence cross-checks: every configuration restored the
    // exact same data, and within a (scheme, cache) group every thread
    // count issued the identical number of container reads.
    let crc = runs[0].crc;
    for r in &runs {
        assert_eq!(
            r.crc, crc,
            "{} ({} cache) at {} threads restored different data",
            r.scheme, r.cache, r.threads
        );
    }
    for scheme in schemes {
        for (cache, _, _) in cache_sizes {
            let group: Vec<&Run> = runs
                .iter()
                .filter(|r| r.scheme == scheme && r.cache == cache)
                .collect();
            for r in &group {
                assert_eq!(
                    r.report.container_reads, group[0].report.container_reads,
                    "{scheme} ({cache} cache): thread count {} changed container reads",
                    r.threads
                );
            }
        }
    }
    println!(
        "\nall {} configurations restored CRC-identical data with thread-invariant reads",
        runs.len()
    );
}
