//! Long-horizon scaling experiment: the paper's central scalability claim is
//! that HiDeStore stays efficient as the number of stored versions grows
//! (kernel: 158 versions, gcc: 175). Real content at that scale is slow to
//! generate, so this experiment replays *chunk traces* (`backup_trace`) over
//! 120 versions and tracks the Figure 9 and Figure 11 trends.

use hidestore_bench::Scale;
use hidestore_core::HiDeStore;
use hidestore_dedup::BackupPipeline;
use hidestore_hash::Fingerprint;
use hidestore_index::DdfsIndex;
use hidestore_restore::Faa;
use hidestore_rewriting::NoRewrite;
use hidestore_storage::{MemoryContainerStore, VersionId};
use hidestore_workloads::{Profile, TraceSpec, TraceStream};

fn main() {
    let scale = Scale::from_env();
    let n_versions: u32 = std::env::var("HIDESTORE_TRACE_VERSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    let spec = TraceSpec {
        initial_chunks: 8192,
        mean_chunk_size: scale.chunk as u32,
        churn: 0.03,
        growth: 0.004,
        flap: 0.0,
    };
    let versions: Vec<Vec<(Fingerprint, u32)>> = TraceStream::new(spec, scale.seed)
        .versions(n_versions)
        .into_iter()
        .map(|v| {
            v.into_iter()
                .map(|c| (Fingerprint::synthetic(c.id), c.size))
                .collect()
        })
        .collect();
    let logical_mb: f64 = versions
        .iter()
        .flat_map(|v| v.iter().map(|&(_, s)| s as f64))
        .sum::<f64>()
        / (1024.0 * 1024.0);
    println!(
        "replaying a kernel-like chunk trace: {n_versions} versions, {logical_mb:.0} MB logical\n"
    );

    // HiDeStore over the whole horizon.
    let mut hds = HiDeStore::new(
        scale.hidestore_config(Profile::Kernel),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        hds.backup_trace(v).expect("memory store cannot fail");
    }
    hds.flatten_recipes();

    // DDFS baseline (scaled locality cache).
    let mut ddfs = BackupPipeline::new(
        scale.pipeline_config(),
        DdfsIndex::with_cache_containers(8),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        ddfs.backup_trace(v).expect("memory store cannot fail");
    }

    let faa = 8 * scale.container;
    let mut rows = Vec::new();
    let checkpoints: Vec<u32> = (1..=n_versions)
        .filter(|v| *v == 1 || v % (n_versions / 8).max(1) == 0)
        .collect();
    for &v in &checkpoints {
        let hds_stats = hds.version_stats()[(v - 1) as usize];
        let ddfs_stats = ddfs.version_stats()[(v - 1) as usize];
        let hds_sf = hds
            .restore(VersionId::new(v), &mut Faa::new(faa), &mut std::io::sink())
            .expect("restore of retained version")
            .speed_factor();
        let ddfs_sf = ddfs
            .restore(VersionId::new(v), &mut Faa::new(faa), &mut std::io::sink())
            .expect("restore of retained version")
            .speed_factor();
        rows.push(vec![
            format!("V{v}"),
            format!("{:.0}", hds_stats.lookups_per_gb()),
            format!("{:.0}", ddfs_stats.lookups_per_gb()),
            format!("{hds_sf:.3}"),
            format!("{ddfs_sf:.3}"),
        ]);
    }
    hidestore_bench::print_table(
        "Scaling over 120 versions (trace mode)",
        &[
            "version",
            "HiDeStore lookups/GB",
            "DDFS lookups/GB",
            "HiDeStore speed factor",
            "DDFS speed factor",
        ],
        &rows,
    );
    hidestore_bench::write_csv(
        "scaling",
        &[
            "version",
            "hds_lookups_gb",
            "ddfs_lookups_gb",
            "hds_sf",
            "ddfs_sf",
        ],
        &rows,
    );
    println!(
        "\nHiDeStore dedup ratio {:.2}% vs DDFS {:.2}% over the full horizon; \
         the newest-version speed gap and the lookup gap both widen with version count, \
         the paper's scalability argument.",
        hds.run_stats().dedup_ratio() * 100.0,
        ddfs.run_stats().dedup_ratio() * 100.0,
    );
}
