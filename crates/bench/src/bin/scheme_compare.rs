//! Cross-scheme comparison — where each design pays its deduplication cost.
//!
//! HiDeStore and DDFS deduplicate inline on the backup path; RevDedup and
//! the hybrid mode defer fine-grained deduplication to an out-of-line pass
//! that reverse-deduplicates older versions against the newest. Expected
//! shape (DESIGN.md §14): RevDedup restores the newest version with no more
//! container reads than DDFS at equal cache; the hybrid post-pass ratio
//! lands close to inline HiDeStore; the out-of-line schemes pay a nonzero
//! pass time that the inline schemes never see.

use hidestore_bench::{run_scheme_comparison, workload_versions, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    let headers = vec![
        "dataset",
        "scheme",
        "dedup",
        "newest-reads",
        "ingest-lookups",
        "ingest",
        "pass",
        "reclaimed-KB",
    ];
    let mut rows = Vec::new();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        for row in run_scheme_comparison(&versions, scale, profile) {
            rows.push(vec![
                profile.to_string(),
                row.label.to_string(),
                format!("{:.2}%", row.dedup_ratio * 100.0),
                row.newest_reads.to_string(),
                row.ingest_lookups.to_string(),
                format!("{:.0?}", row.ingest_time),
                format!("{:.0?}", row.pass_time),
                (row.pass_reclaimed / 1024).to_string(),
            ]);
        }
    }
    hidestore_bench::print_table(
        "Cross-scheme comparison: inline vs out-of-line deduplication",
        &headers,
        &rows,
    );
    hidestore_bench::write_csv("scheme_compare", &headers, &rows);
    println!(
        "\nexpected shape: RevDedup newest-reads <= DDFS; Hybrid dedup ~ HiDeStore; \
         only RevDedup/Hybrid pay pass time"
    );
}
