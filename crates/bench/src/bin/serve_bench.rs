//! Loopback throughput of `hds-served`: client count × payload size.
//!
//! Starts the daemon on an ephemeral loopback port over a fresh on-disk
//! repository, then sweeps concurrent client counts and per-backup payload
//! sizes. Each cell backs up every client's distinct payload concurrently,
//! then restores them all concurrently, reporting wall-clock MB/s for both
//! directions; the run ends with the daemon's own counters so throughput
//! can be read against accepted connections, failures, and bytes moved.
//!
//! Sweep via `HDS_CLIENTS` (comma-separated list, default `1,2,4,8`) and
//! `HIDESTORE_MB` (payload megabytes per backup, default sweeps `1,4`).

use std::time::Instant;

use hidestore_core::HiDeStoreConfig;
use hidestore_server::{serve, RemoteClient, ServerConfig};

fn client_sweep() -> Vec<usize> {
    match std::env::var("HDS_CLIENTS") {
        Ok(list) => list
            .split(',')
            .map(|t| t.trim().parse().expect("HDS_CLIENTS must be numbers"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn size_sweep() -> Vec<usize> {
    match std::env::var("HIDESTORE_MB") {
        Ok(mb) => vec![
            mb.trim()
                .parse::<usize>()
                .expect("HIDESTORE_MB must be a number")
                << 20,
        ],
        Err(_) => vec![1 << 20, 4 << 20],
    }
}

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

fn mb_per_s(bytes: u64, elapsed_s: f64) -> f64 {
    (bytes as f64 / (1 << 20) as f64) / elapsed_s.max(1e-9)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("hds-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench repo dir");
    HiDeStoreConfig::default()
        .save_to(&dir)
        .expect("write repo config");
    let handle = serve(
        &dir,
        ServerConfig {
            workers: 16,
            quiet: true,
            ..ServerConfig::default()
        },
    )
    .expect("start hds-served");
    let addr = handle.addr();
    println!("# hds-served loopback throughput ({addr})");
    println!(
        "{:>8} {:>12} {:>14} {:>15}",
        "clients", "payload_MB", "backup_MB/s", "restore_MB/s"
    );

    let mut next_version: u32 = 0;
    for &payload_len in &size_sweep() {
        for &clients in &client_sweep() {
            let payloads: Vec<Vec<u8>> = (0..clients)
                .map(|c| noise(payload_len, 0xBE7C_0000 + c as u64))
                .collect();
            let total_bytes = (payload_len * clients) as u64;

            let started = Instant::now();
            std::thread::scope(|scope| {
                for payload in &payloads {
                    scope.spawn(move || {
                        let mut conn = RemoteClient::connect(addr).expect("bench client connects");
                        let summary = conn.backup_bytes(payload).expect("bench backup");
                        assert_eq!(summary.logical_bytes, payload.len() as u64);
                    });
                }
            });
            let backup_s = started.elapsed().as_secs_f64();

            let first = next_version + 1;
            next_version += clients as u32;
            let started = Instant::now();
            std::thread::scope(|scope| {
                for offset in 0..clients as u32 {
                    scope.spawn(move || {
                        let mut conn = RemoteClient::connect(addr).expect("bench client connects");
                        let mut out = Vec::with_capacity(payload_len);
                        conn.restore_to(first + offset, &mut out)
                            .expect("bench restore");
                        assert_eq!(out.len(), payload_len);
                    });
                }
            });
            let restore_s = started.elapsed().as_secs_f64();

            println!(
                "{:>8} {:>12} {:>14.1} {:>15.1}",
                clients,
                payload_len >> 20,
                mb_per_s(total_bytes, backup_s),
                mb_per_s(total_bytes, restore_s),
            );
        }
    }

    let stats = handle.shutdown_and_join();
    println!("# server counters: {stats}");
    assert_eq!(stats.requests_failed, 0, "bench requests must all succeed");
    let _ = std::fs::remove_dir_all(&dir);
}
