//! Table 1 — workload characteristics: total size, versions, deduplication
//! ratio (measured with exact deduplication, as the paper's table reports).

use hidestore_bench::{run_dedup_scheme, workload_versions, DedupScheme, Scale};
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for profile in Profile::ALL {
        let versions = workload_versions(profile, scale);
        let total: u64 = versions.iter().map(|v| v.len() as u64).sum();
        let run = run_dedup_scheme(DedupScheme::Ddfs, &versions, scale, profile);
        rows.push(vec![
            profile.to_string(),
            format!("{:.1} MB", total as f64 / (1024.0 * 1024.0)),
            versions.len().to_string(),
            format!("{:.2}%", run.dedup_ratio * 100.0),
        ]);
    }
    hidestore_bench::print_table(
        "Table 1: characteristics of (synthetic) workloads",
        &["dataset", "total size", "versions", "dedup ratio"],
        &rows,
    );
    hidestore_bench::write_csv(
        "table1",
        &["dataset", "total_size", "versions", "dedup_ratio"],
        &rows,
    );
    println!(
        "\npaper (real datasets): kernel 64GB/158/91.53%  gcc 105GB/175/78.75%  \
         fslhomes 920GB/102/92.17%  macos 1.2TB/25/89.56%"
    );
}
