//! Backup-ingest throughput (wall clock) per scheme — complements Figure 9's
//! counted lookup metric with an end-to-end measurement on this machine.

use std::time::Instant;

use hidestore_bench::{workload_versions, Scale};
use hidestore_core::HiDeStore;
use hidestore_dedup::BackupPipeline;
use hidestore_index::{DdfsIndex, SiloConfig, SiloIndex, SparseConfig, SparseIndex};
use hidestore_rewriting::NoRewrite;
use hidestore_storage::MemoryContainerStore;
use hidestore_workloads::Profile;

fn main() {
    let scale = Scale::from_env();
    let versions = workload_versions(Profile::Kernel, scale);
    let total_mb: f64 = versions.iter().map(|v| v.len() as f64).sum::<f64>() / (1024.0 * 1024.0);
    println!(
        "ingesting {total_mb:.0} MB (kernel workload, {} versions)\n",
        versions.len()
    );

    let mut rows = Vec::new();

    let t = Instant::now();
    let mut p = BackupPipeline::new(
        scale.pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        p.backup(v).expect("memory store cannot fail");
    }
    rows.push(vec![
        "DDFS".into(),
        format!("{:.1}", total_mb / t.elapsed().as_secs_f64()),
    ]);

    let t = Instant::now();
    let mut p = BackupPipeline::new(
        scale.pipeline_config(),
        SparseIndex::new(SparseConfig::default()),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        p.backup(v).expect("memory store cannot fail");
    }
    rows.push(vec![
        "SparseIndex".into(),
        format!("{:.1}", total_mb / t.elapsed().as_secs_f64()),
    ]);

    let t = Instant::now();
    let mut p = BackupPipeline::new(
        scale.pipeline_config(),
        SiloIndex::new(SiloConfig::default()),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        p.backup(v).expect("memory store cannot fail");
    }
    rows.push(vec![
        "SiLo".into(),
        format!("{:.1}", total_mb / t.elapsed().as_secs_f64()),
    ]);

    let t = Instant::now();
    let mut hds = HiDeStore::new(
        scale.hidestore_config(Profile::Kernel),
        MemoryContainerStore::new(),
    );
    for v in &versions {
        hds.backup(v).expect("memory store cannot fail");
    }
    rows.push(vec![
        "HiDeStore".into(),
        format!("{:.1}", total_mb / t.elapsed().as_secs_f64()),
    ]);

    hidestore_bench::print_table(
        "Backup ingest throughput (MB/s, wall clock, in-memory store)",
        &["scheme", "MB/s"],
        &rows,
    );
    hidestore_bench::write_csv("throughput", &["scheme", "mb_per_s"], &rows);
}
