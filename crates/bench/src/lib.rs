#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Experiment harness for the HiDeStore reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (§5); this library holds the shared machinery: scaled workload
//! generation, scheme runners, and plain-text/CSV reporting. See DESIGN.md's
//! experiment index for the mapping.
//!
//! Scale is controlled by environment variables so the same binaries serve
//! quick smoke runs and full experiments:
//!
//! * `HIDESTORE_MB` — version-1 size per workload in MiB (default 24);
//! * `HIDESTORE_VERSIONS` — number of backup versions (default 16);
//! * `HIDESTORE_SEED` — workload RNG seed (default 42).

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

use hidestore_chunking::{chunk_spans, ChunkerKind};
use hidestore_core::{DedupMode, HiDeStore, HiDeStoreConfig};
use hidestore_dedup::{gc, BackupPipeline, PipelineConfig};
use hidestore_hash::Fingerprint;
use hidestore_index::{
    DdfsIndex, FingerprintIndex, SiloConfig, SiloIndex, SparseConfig, SparseIndex,
};
use hidestore_restore::{Alacc, ContainerLru, Faa};
use hidestore_rewriting::{Capping, Fbw, NoRewrite, RewritePolicy};
use hidestore_storage::{MemoryContainerStore, VersionId};
use hidestore_workloads::{Profile, VersionStream};

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Bytes of the first version of each workload.
    pub bytes: usize,
    /// Number of backup versions.
    pub versions: u32,
    /// Container capacity in bytes.
    pub container: usize,
    /// Target average chunk size in bytes.
    pub chunk: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            bytes: 24 << 20,
            versions: 16,
            container: 1 << 20,
            chunk: 4096,
            seed: 42,
        }
    }
}

impl Scale {
    /// Reads `HIDESTORE_MB` / `HIDESTORE_VERSIONS` / `HIDESTORE_SEED` from
    /// the environment, falling back to the defaults.
    pub fn from_env() -> Self {
        let mut scale = Scale::default();
        if let Ok(mb) = std::env::var("HIDESTORE_MB") {
            if let Ok(mb) = mb.parse::<usize>() {
                scale.bytes = mb << 20;
            }
        }
        if let Ok(v) = std::env::var("HIDESTORE_VERSIONS") {
            if let Ok(v) = v.parse::<u32>() {
                scale.versions = v.max(2);
            }
        }
        if let Ok(s) = std::env::var("HIDESTORE_SEED") {
            if let Ok(s) = s.parse::<u64>() {
                scale.seed = s;
            }
        }
        scale
    }

    /// A very small scale for integration tests.
    pub fn tiny() -> Self {
        Scale {
            bytes: 2 << 20,
            versions: 6,
            container: 128 << 10,
            chunk: 2048,
            seed: 7,
        }
    }

    /// Pipeline configuration matching this scale.
    pub fn pipeline_config(&self) -> PipelineConfig {
        PipelineConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: self.chunk,
            container_capacity: self.container,
            segment_chunks: 128,
            concurrency: Default::default(),
        }
    }

    /// HiDeStore configuration matching this scale; `profile` selects the
    /// history depth (2 for macos, per §4.1).
    pub fn hidestore_config(&self, profile: Profile) -> HiDeStoreConfig {
        HiDeStoreConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: self.chunk,
            container_capacity: self.container,
            compact_threshold: 0.95,
            history_depth: if profile == Profile::Macos { 2 } else { 1 },
            lookup_unit_bytes: 4096,
            ..HiDeStoreConfig::default()
        }
    }
}

/// Generates all version streams of `profile` at this scale.
pub fn workload_versions(profile: Profile, scale: Scale) -> Vec<Vec<u8>> {
    let spec = profile.spec().scaled(scale.bytes, scale.versions);
    VersionStream::new(spec, scale.seed).all_versions()
}

/// The deduplication schemes of Figures 8–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupScheme {
    /// Exact deduplication (Zhu et al.).
    Ddfs,
    /// Sparse Indexing (Lillibridge et al.).
    Sparse,
    /// SiLo (Xia et al.).
    Silo,
    /// SiLo with Capping rewriting (the paper's "capping" bars).
    SiloCapping,
    /// SiLo with FBW rewriting (the paper's "ALACC" rewriting bars).
    SiloFbw,
    /// HiDeStore.
    HiDeStore,
}

impl DedupScheme {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            DedupScheme::Ddfs => "DDFS",
            DedupScheme::Sparse => "SparseIndex",
            DedupScheme::Silo => "SiLo",
            DedupScheme::SiloCapping => "SiLo+Capping",
            DedupScheme::SiloFbw => "SiLo+FBW",
            DedupScheme::HiDeStore => "HiDeStore",
        }
    }

    /// The schemes shown in Figure 8.
    pub const FIG8: [DedupScheme; 6] = [
        DedupScheme::Ddfs,
        DedupScheme::Sparse,
        DedupScheme::Silo,
        DedupScheme::SiloCapping,
        DedupScheme::SiloFbw,
        DedupScheme::HiDeStore,
    ];

    /// The schemes shown in Figures 9 and 10.
    pub const FIG9: [DedupScheme; 4] = [
        DedupScheme::Ddfs,
        DedupScheme::Sparse,
        DedupScheme::Silo,
        DedupScheme::HiDeStore,
    ];
}

/// One per-version result row shared by the dedup-side experiments.
#[derive(Debug, Clone, Copy)]
pub struct VersionRow {
    /// Backup version number (1-based).
    pub version: u32,
    /// Logical bytes of this version.
    pub logical_bytes: u64,
    /// Cumulative deduplication ratio after this version.
    pub cum_dedup_ratio: f64,
    /// Index disk lookups per GB for this version (Figure 9).
    pub lookups_per_gb: f64,
    /// Index table bytes per MB of cumulative data (Figure 10).
    pub index_bytes_per_mb: f64,
}

/// Full result of running one dedup scheme over a workload.
#[derive(Debug, Clone)]
pub struct DedupRun {
    /// Scheme that produced the rows.
    pub scheme: DedupScheme,
    /// Per-version rows.
    pub rows: Vec<VersionRow>,
    /// Final cumulative dedup ratio (the Figure 8 bar).
    pub dedup_ratio: f64,
}

fn boxed_index(scheme: DedupScheme) -> Box<dyn FingerprintIndex> {
    // Cache sizes are scaled with the experiment: the paper's datasets hold
    // tens of thousands of containers against caches of a few dozen, so at
    // our MB scale the caches must likewise cover only a small fraction of
    // the store or every scheme degenerates to "everything fits in RAM".
    match scheme {
        DedupScheme::Ddfs => Box::new(DdfsIndex::with_cache_containers(4)),
        DedupScheme::Sparse => Box::new(SparseIndex::new(SparseConfig {
            max_champions: 2,
            ..SparseConfig::default()
        })),
        DedupScheme::Silo | DedupScheme::SiloCapping | DedupScheme::SiloFbw => {
            Box::new(SiloIndex::new(SiloConfig {
                cached_blocks: 4,
                ..SiloConfig::default()
            }))
        }
        DedupScheme::HiDeStore => unreachable!("HiDeStore does not run in the baseline pipeline"),
    }
}

fn boxed_rewriter(scheme: DedupScheme, scale: Scale) -> Box<dyn RewritePolicy> {
    match scheme {
        DedupScheme::SiloCapping => Box::new(Capping::new(8)),
        DedupScheme::SiloFbw => Box::new(Fbw::new(
            (8 * scale.container) as u64,
            0.05,
            scale.container as u64,
        )),
        _ => Box::new(NoRewrite::new()),
    }
}

/// Runs a dedup scheme over the version streams, collecting the Figure 8–10
/// metrics.
pub fn run_dedup_scheme(
    scheme: DedupScheme,
    versions: &[Vec<u8>],
    scale: Scale,
    profile: Profile,
) -> DedupRun {
    let mut rows = Vec::with_capacity(versions.len());
    let mut cum_logical = 0u64;
    let mut cum_stored = 0u64;
    if scheme == DedupScheme::HiDeStore {
        let mut hds = HiDeStore::new(scale.hidestore_config(profile), MemoryContainerStore::new());
        for data in versions {
            let s = hds.backup(data).expect("memory store cannot fail");
            cum_logical += s.logical_bytes;
            cum_stored += s.stored_bytes;
            rows.push(VersionRow {
                version: s.version.get(),
                logical_bytes: s.logical_bytes,
                cum_dedup_ratio: ratio(cum_logical, cum_stored),
                lookups_per_gb: s.lookups_per_gb(),
                // Paper accounting (§5.2.3): HiDeStore keeps no persistent
                // index table — the previous recipe serves as its index and
                // recipes exist in every scheme — so its Figure 10 bar is 0.
                index_bytes_per_mb: 0.0,
            });
        }
        let dedup_ratio = hds.run_stats().dedup_ratio();
        return DedupRun {
            scheme,
            rows,
            dedup_ratio,
        };
    }
    let mut pipeline = BackupPipeline::new(
        scale.pipeline_config(),
        boxed_index(scheme),
        boxed_rewriter(scheme, scale),
        MemoryContainerStore::new(),
    );
    for data in versions {
        let s = pipeline.backup(data).expect("memory store cannot fail");
        cum_logical += s.logical_bytes;
        cum_stored += s.stored_bytes;
        rows.push(VersionRow {
            version: s.version.get(),
            logical_bytes: s.logical_bytes,
            cum_dedup_ratio: ratio(cum_logical, cum_stored),
            lookups_per_gb: s.lookups_per_gb(),
            index_bytes_per_mb: s.index_table_bytes as f64
                / (cum_logical as f64 / (1024.0 * 1024.0)),
        });
    }
    let dedup_ratio = pipeline.run_stats().dedup_ratio();
    DedupRun {
        scheme,
        rows,
        dedup_ratio,
    }
}

fn ratio(logical: u64, stored: u64) -> f64 {
    if logical == 0 {
        return 0.0;
    }
    1.0 - stored as f64 / logical as f64
}

/// The restore-side schemes of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreScheme {
    /// No rewriting, FAA restore cache (the paper's baseline).
    Baseline,
    /// Capping rewriting, FAA restore cache.
    Capping,
    /// FBW rewriting with the ALACC restore cache (the paper's strongest
    /// baseline combination).
    AlaccFbw,
    /// HiDeStore with FAA.
    HiDeStore,
}

impl RestoreScheme {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            RestoreScheme::Baseline => "Baseline(FAA)",
            RestoreScheme::Capping => "Capping(FAA)",
            RestoreScheme::AlaccFbw => "ALACC+FBW",
            RestoreScheme::HiDeStore => "HiDeStore",
        }
    }

    /// All Figure 11 series.
    pub const ALL: [RestoreScheme; 4] = [
        RestoreScheme::Baseline,
        RestoreScheme::Capping,
        RestoreScheme::AlaccFbw,
        RestoreScheme::HiDeStore,
    ];
}

/// Per-version speed factors after ingesting the whole workload.
#[derive(Debug, Clone)]
pub struct RestoreRun {
    /// Scheme that produced the series.
    pub scheme: RestoreScheme,
    /// `(version, speed factor MB/container-read)` pairs.
    pub speed_factors: Vec<(u32, f64)>,
    /// Final deduplication ratio of the underlying store (context for the
    /// locality-vs-space trade-off).
    pub dedup_ratio: f64,
}

/// Backs up every version with the scheme, then restores each version and
/// records its speed factor (Figure 11's x-axis is the restored version).
pub fn run_restore_scheme(
    scheme: RestoreScheme,
    versions: &[Vec<u8>],
    scale: Scale,
    profile: Profile,
) -> RestoreRun {
    let faa_area = 8 * scale.container;
    match scheme {
        RestoreScheme::HiDeStore => {
            let mut hds =
                HiDeStore::new(scale.hidestore_config(profile), MemoryContainerStore::new());
            for data in versions {
                hds.backup(data).expect("memory store cannot fail");
            }
            // §4.3: Algorithm 1 runs offline before restores.
            hds.flatten_recipes();
            let mut speed_factors = Vec::new();
            for v in 1..=versions.len() as u32 {
                let mut cache = Faa::new(faa_area);
                let report = hds
                    .restore(VersionId::new(v), &mut cache, &mut std::io::sink())
                    .expect("restore of retained version");
                speed_factors.push((v, report.speed_factor()));
            }
            RestoreRun {
                scheme,
                speed_factors,
                dedup_ratio: hds.run_stats().dedup_ratio(),
            }
        }
        _ => {
            let (index, rewriter): (Box<dyn FingerprintIndex>, Box<dyn RewritePolicy>) =
                match scheme {
                    RestoreScheme::Baseline => {
                        (Box::new(DdfsIndex::new()), Box::new(NoRewrite::new()))
                    }
                    RestoreScheme::Capping => (
                        Box::new(SiloIndex::new(SiloConfig::default())),
                        Box::new(Capping::new(8)),
                    ),
                    RestoreScheme::AlaccFbw => (
                        Box::new(SiloIndex::new(SiloConfig::default())),
                        Box::new(Fbw::new(
                            (8 * scale.container) as u64,
                            0.05,
                            scale.container as u64,
                        )),
                    ),
                    RestoreScheme::HiDeStore => unreachable!("handled above"),
                };
            let mut pipeline = BackupPipeline::new(
                scale.pipeline_config(),
                index,
                rewriter,
                MemoryContainerStore::new(),
            );
            for data in versions {
                pipeline.backup(data).expect("memory store cannot fail");
            }
            let mut speed_factors = Vec::new();
            for v in 1..=versions.len() as u32 {
                let report = if scheme == RestoreScheme::AlaccFbw {
                    let mut cache = Alacc::new(faa_area / 2, faa_area / 2);
                    pipeline.restore(VersionId::new(v), &mut cache, &mut std::io::sink())
                } else {
                    let mut cache = Faa::new(faa_area);
                    pipeline.restore(VersionId::new(v), &mut cache, &mut std::io::sink())
                }
                .expect("restore of retained version");
                speed_factors.push((v, report.speed_factor()));
            }
            RestoreRun {
                scheme,
                speed_factors,
                dedup_ratio: pipeline.run_stats().dedup_ratio(),
            }
        }
    }
}

/// One scheme's row in the cross-scheme comparison (DESIGN.md §14): where
/// each design pays its deduplication cost — inline on the backup path
/// (DDFS, HiDeStore) or deferred to an out-of-line pass (RevDedup, Hybrid).
#[derive(Debug, Clone)]
pub struct SchemeCompareRow {
    /// Display label.
    pub label: &'static str,
    /// Final deduplication ratio over live stored bytes, measured *after*
    /// the out-of-line pass where the scheme has one.
    pub dedup_ratio: f64,
    /// Container reads restoring the newest version through an 8-container
    /// LRU — the same cache for every scheme.
    pub newest_reads: u64,
    /// Index probes paid on the backup path, in each scheme's own unit:
    /// fingerprint-table misses for HiDeStore, whole-segment lookups for
    /// RevDedup/Hybrid, on-disk index lookups for DDFS. Comparable within a
    /// scheme across versions, not across schemes.
    pub ingest_lookups: u64,
    /// Wall-clock time ingesting every version.
    pub ingest_time: Duration,
    /// Wall-clock time of the out-of-line pass (zero for inline schemes).
    pub pass_time: Duration,
    /// Bytes reclaimed by the out-of-line pass (zero for inline schemes).
    pub pass_reclaimed: u64,
}

/// Runs the cross-scheme comparison on one workload: every
/// [`DedupMode`] through the full HiDeStore system plus the DDFS baseline
/// through the pipeline, all restored through an equal-capacity cache.
pub fn run_scheme_comparison(
    versions: &[Vec<u8>],
    scale: Scale,
    profile: Profile,
) -> Vec<SchemeCompareRow> {
    let newest = VersionId::new(versions.len() as u32);
    let mut rows = Vec::new();
    for mode in DedupMode::ALL {
        let config = scale.hidestore_config(profile).with_scheme(mode);
        let mut hds = HiDeStore::new(config, MemoryContainerStore::new());
        let t = std::time::Instant::now();
        for data in versions {
            hds.backup(data).expect("memory store cannot fail");
        }
        let ingest_time = t.elapsed();
        let ingest_lookups = hds.version_stats().iter().map(|s| s.lookup_requests).sum();
        let (pass_time, pass_reclaimed) = if mode.is_out_of_line() {
            let t = std::time::Instant::now();
            let report = hds.out_of_line_pass().expect("memory store cannot fail");
            (t.elapsed(), report.bytes_reclaimed)
        } else {
            // §4.3: the inline scheme's offline step is Algorithm 1 instead.
            hds.flatten_recipes();
            (Duration::ZERO, 0)
        };
        let live = hds.archival().total_live_bytes() + hds.pool().live_bytes();
        let logical = hds.run_stats().logical_bytes;
        let mut cache = ContainerLru::new(8);
        let report = hds
            .restore(newest, &mut cache, &mut std::io::sink())
            .expect("restore of retained version");
        rows.push(SchemeCompareRow {
            label: match mode {
                DedupMode::HiDeStore => "HiDeStore",
                DedupMode::RevDedup => "RevDedup",
                DedupMode::Hybrid => "Hybrid",
            },
            dedup_ratio: ratio(logical, live),
            newest_reads: report.container_reads,
            ingest_lookups,
            ingest_time,
            pass_time,
            pass_reclaimed,
        });
    }
    // DDFS baseline for context, under the same restore cache.
    let mut pipeline = BackupPipeline::new(
        scale.pipeline_config(),
        boxed_index(DedupScheme::Ddfs),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    let t = std::time::Instant::now();
    for data in versions {
        pipeline.backup(data).expect("memory store cannot fail");
    }
    let ingest_time = t.elapsed();
    let ingest_lookups = pipeline
        .version_stats()
        .iter()
        .map(|s| s.disk_lookups)
        .sum();
    let mut cache = ContainerLru::new(8);
    let report = pipeline
        .restore(newest, &mut cache, &mut std::io::sink())
        .expect("restore of retained version");
    rows.push(SchemeCompareRow {
        label: "DDFS",
        dedup_ratio: pipeline.run_stats().dedup_ratio(),
        newest_reads: report.container_reads,
        ingest_lookups,
        ingest_time,
        pass_time: Duration::ZERO,
        pass_reclaimed: 0,
    });
    rows
}

/// Figure 3: the heuristic experiment. Tags every chunk with the most recent
/// version containing it (infinite buffer) and counts, after each version,
/// how many chunks still carry each tag. `matrix[after][tag]` with 1-based
/// indices flattened to 0-based.
pub fn version_tag_matrix(versions: &[Vec<u8>], scale: Scale) -> Vec<Vec<u64>> {
    let mut chunker = ChunkerKind::Tttd.build(scale.chunk);
    let mut tags: HashMap<Fingerprint, u32> = HashMap::new();
    let mut matrix = Vec::with_capacity(versions.len());
    for (i, data) in versions.iter().enumerate() {
        let v = i as u32 + 1;
        for span in chunk_spans(chunker.as_mut(), data) {
            tags.insert(Fingerprint::of(&data[span]), v);
        }
        let mut counts = vec![0u64; versions.len()];
        for &tag in tags.values() {
            counts[(tag - 1) as usize] += 1;
        }
        matrix.push(counts);
    }
    matrix
}

/// Figure 12 + §5.5: HiDeStore maintenance overheads for one workload.
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// Mean per-version time updating the previous recipe(s).
    pub mean_recipe_update: Duration,
    /// Mean per-version time demoting cold chunks and merging containers.
    pub mean_chunk_move: Duration,
    /// Time of one full Algorithm 1 flatten pass at the end.
    pub flatten_time: Duration,
    /// HiDeStore deletion time for expiring the oldest third of versions.
    pub hidestore_delete: Duration,
    /// Mark-sweep GC time for the same expiry on the DDFS baseline.
    pub gc_delete: Duration,
}

/// Measures HiDeStore's overheads (Figure 12) and the deletion comparison
/// (§5.5) on one workload.
pub fn run_overheads(versions: &[Vec<u8>], scale: Scale, profile: Profile) -> OverheadRow {
    // HiDeStore side.
    let mut hds = HiDeStore::new(scale.hidestore_config(profile), MemoryContainerStore::new());
    for data in versions {
        hds.backup(data).expect("memory store cannot fail");
    }
    let stats = hds.version_stats();
    let n = stats.len().max(1) as u32;
    let mean_recipe_update = stats.iter().map(|s| s.recipe_update_time).sum::<Duration>() / n;
    let mean_chunk_move = stats.iter().map(|s| s.chunk_move_time).sum::<Duration>() / n;
    let (_, flatten_time) = hds.flatten_recipes();
    let expire_to = (versions.len() as u32 / 3).max(1);
    let t = std::time::Instant::now();
    hds.delete_expired(VersionId::new(expire_to))
        .expect("deletion of old versions");
    let hidestore_delete = t.elapsed();

    // Baseline side: same workload through DDFS, deleted via mark-sweep.
    let mut pipeline = BackupPipeline::new(
        scale.pipeline_config(),
        DdfsIndex::new(),
        NoRewrite::new(),
        MemoryContainerStore::new(),
    );
    for data in versions {
        pipeline.backup(data).expect("memory store cannot fail");
    }
    let expired: Vec<VersionId> = (1..=expire_to).map(VersionId::new).collect();
    let mut recipes = std::mem::take(pipeline.recipes_mut());
    let mut next_id = 1_000_000;
    let t = std::time::Instant::now();
    gc::mark_sweep(
        &expired,
        &mut recipes,
        pipeline.store_mut(),
        0.4,
        &mut next_id,
    )
    .expect("gc of memory store");
    let gc_delete = t.elapsed();

    OverheadRow {
        mean_recipe_update,
        mean_chunk_move,
        flatten_time,
        hidestore_delete,
        gc_delete,
    }
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", cell, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Writes rows as CSV under `results/`.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let Ok(mut f) = fs::File::create(&path) else {
        return;
    };
    let _ = writeln!(f, "{}", headers.join(","));
    for row in rows {
        let _ = writeln!(f, "{}", row.join(","));
    }
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults() {
        let s = Scale::default();
        assert_eq!(s.versions, 16);
        s.pipeline_config().validate();
        for p in Profile::ALL {
            s.hidestore_config(p).validate();
        }
    }

    #[test]
    fn macos_gets_depth_two() {
        let s = Scale::tiny();
        assert_eq!(s.hidestore_config(Profile::Macos).history_depth, 2);
        assert_eq!(s.hidestore_config(Profile::Kernel).history_depth, 1);
    }

    #[test]
    fn dedup_runs_produce_rows_for_each_version() {
        let scale = Scale::tiny();
        let versions = workload_versions(Profile::Kernel, scale);
        let run = run_dedup_scheme(DedupScheme::Ddfs, &versions, scale, Profile::Kernel);
        assert_eq!(run.rows.len(), versions.len());
        assert!(
            run.dedup_ratio > 0.5,
            "kernel tiny ratio {}",
            run.dedup_ratio
        );
        let hds = run_dedup_scheme(DedupScheme::HiDeStore, &versions, scale, Profile::Kernel);
        assert_eq!(hds.rows.len(), versions.len());
    }

    #[test]
    fn restore_runs_cover_all_versions() {
        let scale = Scale::tiny();
        let versions = workload_versions(Profile::Kernel, scale);
        for scheme in [RestoreScheme::Baseline, RestoreScheme::HiDeStore] {
            let run = run_restore_scheme(scheme, &versions, scale, Profile::Kernel);
            assert_eq!(
                run.speed_factors.len(),
                versions.len(),
                "{}",
                scheme.label()
            );
            assert!(run.speed_factors.iter().all(|&(_, sf)| sf > 0.0));
        }
    }

    #[test]
    fn scheme_comparison_covers_all_schemes() {
        let scale = Scale::tiny();
        let versions = workload_versions(Profile::Kernel, scale);
        let rows = run_scheme_comparison(&versions, scale, Profile::Kernel);
        let labels: Vec<&str> = rows.iter().map(|r| r.label).collect();
        assert_eq!(labels, ["HiDeStore", "RevDedup", "Hybrid", "DDFS"]);
        for row in &rows {
            assert!(row.newest_reads > 0, "{}: no container reads", row.label);
            assert!(row.dedup_ratio > 0.0, "{}: no dedup at all", row.label);
        }
        // RevDedup's coarse inline pass leaves fine-grained duplicates for
        // the out-of-line pass to reclaim. (Hybrid dedups against the
        // previous version inline, so a linearly-evolving workload can
        // legitimately leave its pass nothing to do.)
        let rev = rows.iter().find(|r| r.label == "RevDedup").unwrap();
        assert!(rev.pass_reclaimed > 0, "RevDedup pass reclaimed nothing");
    }

    #[test]
    fn version_tag_matrix_shape() {
        let scale = Scale::tiny();
        let versions = workload_versions(Profile::Kernel, scale);
        let matrix = version_tag_matrix(&versions, scale);
        assert_eq!(matrix.len(), versions.len());
        // After version k, tags can only be 1..=k.
        for (i, row) in matrix.iter().enumerate() {
            for (tag_idx, &count) in row.iter().enumerate() {
                if tag_idx > i {
                    assert_eq!(count, 0, "after V{} tag V{}", i + 1, tag_idx + 1);
                }
            }
            // The most recent tag dominates.
            assert!(row[i] > 0);
        }
    }

    #[test]
    fn overheads_measured() {
        let scale = Scale::tiny();
        let versions = workload_versions(Profile::Kernel, scale);
        let row = run_overheads(&versions, scale, Profile::Kernel);
        // HiDeStore deletion must be cheap relative to mark-sweep GC.
        assert!(row.hidestore_delete <= row.gc_delete * 4);
    }
}
