//! AE — Asymmetric Extremum chunking (Zhang et al., INFOCOM 2015).

use crate::rolling::gear_table;
use crate::Chunker;

/// Asymmetric Extremum content-defined chunker.
///
/// AE declares a cut when a position holding the (interval) maximum value is
/// followed by a full window of `w` bytes none of which exceed it: the chunk
/// boundary is placed at the end of that window. Unlike Rabin/gear chunking
/// there is no divisor test, so AE needs no mask tuning and has a hard
/// built-in maximum-size property. The expected chunk size is approximately
/// `w * (e - 1) ≈ 1.718 w`; we size the window accordingly.
///
/// Byte values are mapped through the gear substitution table so runs of
/// equal bytes still produce usable extrema.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, AeChunker, Chunker};
///
/// let mut c = AeChunker::new(4096);
/// let data: Vec<u8> = (0..60_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
/// let spans = chunk_spans(&mut c, &data);
/// assert!(spans.iter().all(|s| s.len() <= c.max_size()));
/// ```
#[derive(Debug, Clone)]
pub struct AeChunker {
    window: usize,
    max_size: usize,
}

impl AeChunker {
    /// Creates an AE chunker with target average chunk size `avg_size`.
    ///
    /// # Panics
    ///
    /// Panics if `avg_size < 64`.
    pub fn new(avg_size: usize) -> Self {
        assert!(
            avg_size >= 64,
            "average chunk size must be at least 64 bytes"
        );
        // E[len] ≈ (e - 1) * w  =>  w = avg / 1.71828
        let window = ((avg_size as f64) / (std::f64::consts::E - 1.0)).round() as usize;
        AeChunker {
            window: window.max(1),
            max_size: avg_size * 4,
        }
    }

    fn value_at(data: &[u8], i: usize) -> u64 {
        gear_table()[data[i] as usize]
    }
}

impl Chunker for AeChunker {
    fn next_chunk_len(&mut self, data: &[u8]) -> usize {
        assert!(!data.is_empty(), "next_chunk_len requires non-empty data");
        let limit = data.len().min(self.max_size);
        let mut max_value = Self::value_at(data, 0);
        let mut max_pos = 0usize;
        for i in 1..limit {
            let v = Self::value_at(data, i);
            // Strict inequality: in a run of equal values the *first* is the
            // extremum, giving deterministic, shift-stable boundaries.
            if v > max_value {
                max_value = v;
                max_pos = i;
            } else if i - max_pos >= self.window {
                return i + 1;
            }
        }
        limit
    }

    fn min_size(&self) -> usize {
        // The earliest possible cut is a window after the first byte.
        self.window + 1
    }

    fn max_size(&self) -> usize {
        self.max_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk_spans;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn average_in_band() {
        let data = noise(3_000_000, 3);
        let mut c = AeChunker::new(4096);
        let spans = chunk_spans(&mut c, &data);
        let avg = data.len() / spans.len();
        assert!((2048..=8192).contains(&avg), "avg {avg}");
    }

    #[test]
    fn window_sized_from_average() {
        let c = AeChunker::new(4096);
        assert!((2000..=2600).contains(&c.window), "window {}", c.window);
    }

    #[test]
    fn cuts_never_before_window() {
        let data = noise(500_000, 7);
        let mut c = AeChunker::new(1024);
        let spans = chunk_spans(&mut c, &data);
        for s in &spans[..spans.len() - 1] {
            assert!(s.len() > c.window);
        }
    }

    #[test]
    fn constant_bytes_single_extremum() {
        // All-equal bytes: position 0 stays the maximum, cut happens exactly
        // at window + 1.
        let data = vec![42u8; 100_000];
        let mut c = AeChunker::new(1024);
        let spans = chunk_spans(&mut c, &data);
        for s in &spans[..spans.len() - 1] {
            assert_eq!(s.len(), c.window + 1);
        }
    }

    #[test]
    fn deterministic() {
        let data = noise(200_000, 19);
        let mut c = AeChunker::new(2048);
        assert_eq!(chunk_spans(&mut c, &data), chunk_spans(&mut c, &data));
    }
}
