//! FastCDC chunking (Xia et al., USENIX ATC 2016): gear rolling hash with
//! normalized chunking.

use crate::rolling::{gear_step, spread_mask};
use crate::Chunker;

/// FastCDC content-defined chunker.
///
/// Three optimizations over Rabin CDC, per the paper:
///
/// 1. **Gear hash** — one shift+add table lookup per byte.
/// 2. **Cut-point skipping** — scanning starts at `min_size`.
/// 3. **Normalized chunking** — before the normal point (the target average
///    size), a *harder* mask (more bits) is used; after it, an *easier* mask,
///    pulling the chunk-size distribution toward the average.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, Chunker, FastCdcChunker};
///
/// let mut c = FastCdcChunker::new(8192);
/// assert_eq!(c.min_size(), 2048);
/// assert_eq!(c.max_size(), 65536);
/// ```
#[derive(Debug, Clone)]
pub struct FastCdcChunker {
    min_size: usize,
    normal_size: usize,
    max_size: usize,
    mask_small: u64,
    mask_large: u64,
}

impl FastCdcChunker {
    /// Creates a FastCDC chunker with target average size `avg_size`.
    ///
    /// Minimum is `avg/4`, maximum `avg*8`, and the normalization level is 2
    /// bits as recommended by the paper.
    ///
    /// # Panics
    ///
    /// Panics if `avg_size < 64` or `avg_size` is not a power of two.
    pub fn new(avg_size: usize) -> Self {
        assert!(
            avg_size >= 64,
            "average chunk size must be at least 64 bytes"
        );
        assert!(
            avg_size.is_power_of_two(),
            "FastCDC average size must be a power of two"
        );
        let bits = avg_size.trailing_zeros();
        FastCdcChunker {
            min_size: avg_size / 4,
            normal_size: avg_size,
            max_size: avg_size * 8,
            // Harder mask before the normal point (bits+2), easier after (bits-2).
            mask_small: spread_mask(bits + 2),
            mask_large: spread_mask(bits - 2),
        }
    }
}

impl Chunker for FastCdcChunker {
    fn next_chunk_len(&mut self, data: &[u8]) -> usize {
        assert!(!data.is_empty(), "next_chunk_len requires non-empty data");
        if data.len() <= self.min_size {
            return data.len();
        }
        let limit = data.len().min(self.max_size);
        let normal = self.normal_size.min(limit);
        let mut hash = 0u64;
        let mut i = self.min_size;
        while i < normal {
            hash = gear_step(hash, data[i]);
            if hash & self.mask_small == 0 {
                return i + 1;
            }
            i += 1;
        }
        while i < limit {
            hash = gear_step(hash, data[i]);
            if hash & self.mask_large == 0 {
                return i + 1;
            }
            i += 1;
        }
        limit
    }

    fn min_size(&self) -> usize {
        self.min_size
    }

    fn max_size(&self) -> usize {
        self.max_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk_spans;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn normalized_distribution_concentrates_near_average() {
        let data = noise(4_000_000, 17);
        let mut c = FastCdcChunker::new(4096);
        let spans = chunk_spans(&mut c, &data);
        let avg = data.len() / spans.len();
        assert!((2048..=8192).contains(&avg), "avg {avg}");
        // Normalization: a majority of chunks lie within [avg/2, 2*avg].
        let near = spans
            .iter()
            .filter(|s| (2048..=8192).contains(&s.len()))
            .count();
        assert!(near * 2 > spans.len(), "{near}/{}", spans.len());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        FastCdcChunker::new(5000);
    }

    #[test]
    fn bounds_respected() {
        let data = noise(1_000_000, 23);
        let mut c = FastCdcChunker::new(1024);
        let spans = chunk_spans(&mut c, &data);
        for s in &spans[..spans.len() - 1] {
            assert!(s.len() >= c.min_size() && s.len() <= c.max_size());
        }
    }

    #[test]
    fn shift_resistant() {
        let shared = noise(500_000, 31);
        let mut shifted = vec![1u8, 2, 3];
        shifted.extend_from_slice(&shared);
        let mut c = FastCdcChunker::new(4096);
        let a: std::collections::HashSet<usize> = chunk_spans(&mut c, &shared)
            .iter()
            .map(|s| shared.len() - s.end)
            .collect();
        let b: std::collections::HashSet<usize> = chunk_spans(&mut c, &shifted)
            .iter()
            .map(|s| shifted.len() - s.end)
            .collect();
        let survived = a.intersection(&b).count();
        assert!(survived * 10 >= a.len() * 8, "{survived}/{}", a.len());
    }

    #[test]
    fn all_zero_input_forced_to_max() {
        let data = vec![0u8; 200_000];
        let mut c = FastCdcChunker::new(1024);
        let spans = chunk_spans(&mut c, &data);
        // Gear hash of zeros: deterministic, either finds a mask match at a
        // fixed offset or every chunk is max-size; either way all inner
        // chunks are equal length.
        let first = spans[0].len();
        for s in &spans[..spans.len() - 1] {
            assert_eq!(s.len(), first);
        }
    }
}
