//! Fixed-size chunking: the non-content-defined baseline.

use crate::Chunker;

/// Cuts the stream into fixed-size blocks.
///
/// Fixed chunking has no resistance to the boundary-shift problem (paper
/// §2.2): inserting one byte re-aligns every later chunk. It is included as
/// the classic baseline and for workloads that are block-aligned by
/// construction.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, FixedChunker};
///
/// let spans = chunk_spans(&mut FixedChunker::new(4096), &vec![0u8; 10_000]);
/// assert_eq!(spans.len(), 3);
/// assert_eq!(spans[2].len(), 10_000 - 2 * 4096);
/// ```
#[derive(Debug, Clone)]
pub struct FixedChunker {
    size: usize,
}

impl FixedChunker {
    /// Creates a fixed chunker with block size `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "chunk size must be non-zero");
        FixedChunker { size }
    }

    /// The configured block size.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Chunker for FixedChunker {
    fn next_chunk_len(&mut self, data: &[u8]) -> usize {
        self.size.min(data.len())
    }

    fn min_size(&self) -> usize {
        self.size
    }

    fn max_size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk_spans;

    #[test]
    fn exact_multiple_produces_equal_blocks() {
        let spans = chunk_spans(&mut FixedChunker::new(100), &[0u8; 500]);
        assert_eq!(spans.len(), 5);
        assert!(spans.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn tail_shorter_than_block() {
        let spans = chunk_spans(&mut FixedChunker::new(64), &[0u8; 70]);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].len(), 6);
    }

    #[test]
    fn single_byte_stream() {
        let spans = chunk_spans(&mut FixedChunker::new(64), &[9u8]);
        assert_eq!(spans, vec![0..1]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be non-zero")]
    fn zero_size_rejected() {
        FixedChunker::new(0);
    }
}
