#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Content-defined chunking substrate for the HiDeStore reproduction.
//!
//! The deduplication pipeline (paper §2.1) divides backup streams into chunks
//! of 4–8 KiB on average using a chunking algorithm, then fingerprints each
//! chunk. The paper's prototype uses **TTTD** chunking; Destor (the platform
//! it extends) also ships Rabin-based CDC, and the paper's related-work
//! section lists FastCDC and AE. All five are implemented here:
//!
//! * [`FixedChunker`] — fixed-size blocks (no shift resistance; baseline),
//! * [`RabinChunker`] — classic Rabin-fingerprint CDC as in LBFS,
//! * [`TttdChunker`] — Two Thresholds Two Divisors (the paper's default),
//! * [`FastCdcChunker`] — gear-hash with normalized chunking,
//! * [`AeChunker`] — Asymmetric Extremum, a hash-comparison-free CDC.
//!
//! All chunkers implement the [`Chunker`] trait and are deterministic: the
//! same input always produces the same boundaries, which the rest of the
//! system relies on for reproducible experiments.
//!
//! # Examples
//!
//! ```
//! use hidestore_chunking::{Chunker, TttdChunker, chunk_spans};
//!
//! let data = vec![7u8; 100_000];
//! let mut chunker = TttdChunker::new(4096);
//! let spans = chunk_spans(&mut chunker, &data);
//! assert_eq!(spans.iter().map(|s| s.len()).sum::<usize>(), data.len());
//! ```

mod ae;
mod fastcdc;
mod fixed;
mod rabin;
pub mod rolling;
mod stats;
mod stream;
mod tttd;

pub use ae::AeChunker;
pub use fastcdc::FastCdcChunker;
pub use fixed::FixedChunker;
pub use rabin::RabinChunker;
pub use stats::SizeSummary;
pub use stream::StreamChunker;
pub use tttd::TttdChunker;

use std::ops::Range;

/// A chunking algorithm: cuts a stream into content-defined chunks.
///
/// Implementations are called with the *remaining* stream and return the
/// length of the next chunk. The trait is object-safe so pipelines can hold a
/// `Box<dyn Chunker>` selected from configuration.
pub trait Chunker {
    /// Returns the length of the next chunk at the front of `data`.
    ///
    /// `data` is the not-yet-chunked suffix of the stream. The returned
    /// length must be in `1..=data.len()`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `data` is empty; callers must not pass
    /// an empty slice.
    fn next_chunk_len(&mut self, data: &[u8]) -> usize;

    /// Smallest chunk this chunker can emit (except for the stream tail).
    fn min_size(&self) -> usize;

    /// Largest chunk this chunker can emit.
    fn max_size(&self) -> usize;

    /// Resets any internal state so the chunker can process a new stream.
    fn reset(&mut self) {}
}

impl<T: Chunker + ?Sized> Chunker for Box<T> {
    fn next_chunk_len(&mut self, data: &[u8]) -> usize {
        (**self).next_chunk_len(data)
    }

    fn min_size(&self) -> usize {
        (**self).min_size()
    }

    fn max_size(&self) -> usize {
        (**self).max_size()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

/// Splits `data` into chunk spans using `chunker`.
///
/// The spans are contiguous, non-empty, and cover `data` exactly.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, FixedChunker};
///
/// let spans = chunk_spans(&mut FixedChunker::new(4), b"abcdefghij");
/// assert_eq!(spans, vec![0..4, 4..8, 8..10]);
/// ```
pub fn chunk_spans<C: Chunker + ?Sized>(chunker: &mut C, data: &[u8]) -> Vec<Range<usize>> {
    chunker.reset();
    let mut spans = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let len = chunker.next_chunk_len(&data[pos..]);
        assert!(
            len >= 1 && pos + len <= data.len(),
            "chunker returned invalid length {len}"
        );
        spans.push(pos..pos + len);
        pos += len;
    }
    spans
}

/// Iterator over the chunk byte-slices of a stream.
///
/// Produced by [`chunks`].
#[derive(Debug)]
pub struct Chunks<'a, C: Chunker> {
    chunker: C,
    data: &'a [u8],
    pos: usize,
}

/// Returns an iterator over the chunks of `data`.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunks, FixedChunker};
///
/// let total: usize = chunks(FixedChunker::new(8), b"hello world, backup me")
///     .map(|c| c.len())
///     .sum();
/// assert_eq!(total, 22);
/// ```
pub fn chunks<C: Chunker>(mut chunker: C, data: &[u8]) -> Chunks<'_, C> {
    chunker.reset();
    Chunks {
        chunker,
        data,
        pos: 0,
    }
}

impl<'a, C: Chunker> Iterator for Chunks<'a, C> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.data.len() {
            return None;
        }
        let len = self.chunker.next_chunk_len(&self.data[self.pos..]);
        let chunk = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Some(chunk)
    }
}

/// Identifier for choosing a chunking algorithm from configuration, the way
/// Destor selects its chunking phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkerKind {
    /// Fixed-size chunking.
    Fixed,
    /// Rabin-fingerprint content-defined chunking.
    Rabin,
    /// Two Thresholds Two Divisors (the paper's default).
    Tttd,
    /// FastCDC normalized gear-hash chunking.
    FastCdc,
    /// Asymmetric Extremum chunking.
    Ae,
}

impl ChunkerKind {
    /// Builds a boxed chunker of this kind with the given average chunk size.
    ///
    /// # Examples
    ///
    /// ```
    /// use hidestore_chunking::{ChunkerKind, chunk_spans};
    ///
    /// let mut c = ChunkerKind::FastCdc.build(4096);
    /// let spans = chunk_spans(c.as_mut(), &vec![3u8; 50_000]);
    /// assert!(!spans.is_empty());
    /// ```
    pub fn build(self, avg_size: usize) -> Box<dyn Chunker + Send + Sync> {
        match self {
            ChunkerKind::Fixed => Box::new(FixedChunker::new(avg_size)),
            ChunkerKind::Rabin => Box::new(RabinChunker::new(avg_size)),
            ChunkerKind::Tttd => Box::new(TttdChunker::new(avg_size)),
            ChunkerKind::FastCdc => Box::new(FastCdcChunker::new(avg_size)),
            ChunkerKind::Ae => Box::new(AeChunker::new(avg_size)),
        }
    }

    /// All selectable kinds, for exhaustive experiments.
    pub const ALL: [ChunkerKind; 5] = [
        ChunkerKind::Fixed,
        ChunkerKind::Rabin,
        ChunkerKind::Tttd,
        ChunkerKind::FastCdc,
        ChunkerKind::Ae,
    ];
}

impl std::fmt::Display for ChunkerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ChunkerKind::Fixed => "fixed",
            ChunkerKind::Rabin => "rabin",
            ChunkerKind::Tttd => "tttd",
            ChunkerKind::FastCdc => "fastcdc",
            ChunkerKind::Ae => "ae",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn spans_cover_stream_for_all_kinds() {
        let data = pseudo_random(200_000, 7);
        for kind in ChunkerKind::ALL {
            let mut c = kind.build(4096);
            let spans = chunk_spans(c.as_mut(), &data);
            assert_eq!(spans.first().map(|s| s.start), Some(0), "{kind}");
            assert_eq!(spans.last().map(|s| s.end), Some(data.len()), "{kind}");
            for w in spans.windows(2) {
                assert_eq!(w[0].end, w[1].start, "{kind}: spans not contiguous");
            }
        }
    }

    #[test]
    fn all_kinds_respect_max_size() {
        let data = pseudo_random(300_000, 3);
        for kind in ChunkerKind::ALL {
            let mut c = kind.build(2048);
            let max = c.max_size();
            for span in chunk_spans(c.as_mut(), &data) {
                assert!(span.len() <= max, "{kind}: {} > {max}", span.len());
            }
        }
    }

    #[test]
    fn all_kinds_respect_min_size_except_tail() {
        let data = pseudo_random(300_000, 11);
        for kind in ChunkerKind::ALL {
            let mut c = kind.build(2048);
            let min = c.min_size();
            let spans = chunk_spans(c.as_mut(), &data);
            for span in &spans[..spans.len() - 1] {
                assert!(span.len() >= min, "{kind}: {} < {min}", span.len());
            }
        }
    }

    #[test]
    fn all_kinds_are_deterministic() {
        let data = pseudo_random(100_000, 5);
        for kind in ChunkerKind::ALL {
            let mut a = kind.build(4096);
            let mut b = kind.build(4096);
            assert_eq!(
                chunk_spans(a.as_mut(), &data),
                chunk_spans(b.as_mut(), &data),
                "{kind}"
            );
        }
    }

    #[test]
    fn content_defined_kinds_resist_shifts() {
        // Insert 100 bytes at the front; most boundaries (as offsets from the
        // *end*) must survive for content-defined chunkers. This is the whole
        // point of CDC (paper §2.2: boundary-shift problem).
        let data = pseudo_random(200_000, 9);
        let mut shifted = pseudo_random(100, 77);
        shifted.extend_from_slice(&data);
        for kind in [
            ChunkerKind::Rabin,
            ChunkerKind::Tttd,
            ChunkerKind::FastCdc,
            ChunkerKind::Ae,
        ] {
            let mut c = kind.build(4096);
            let cuts_a: std::collections::HashSet<usize> = chunk_spans(c.as_mut(), &data)
                .iter()
                .map(|s| data.len() - s.end)
                .collect();
            let cuts_b: std::collections::HashSet<usize> = chunk_spans(c.as_mut(), &shifted)
                .iter()
                .map(|s| shifted.len() - s.end)
                .collect();
            let survived = cuts_a.intersection(&cuts_b).count();
            assert!(
                survived * 2 >= cuts_a.len(),
                "{kind}: only {survived}/{} boundaries survived a prefix shift",
                cuts_a.len()
            );
        }
    }

    #[test]
    fn average_chunk_size_within_factor_of_target() {
        let data = pseudo_random(4_000_000, 21);
        for kind in ChunkerKind::ALL {
            let mut c = kind.build(4096);
            let spans = chunk_spans(c.as_mut(), &data);
            let avg = data.len() / spans.len();
            assert!(
                (1024..=16384).contains(&avg),
                "{kind}: average {avg} too far from 4096"
            );
        }
    }

    #[test]
    fn chunks_iterator_matches_spans() {
        let data = pseudo_random(50_000, 13);
        let spans = chunk_spans(&mut TttdChunker::new(1024), &data);
        let iterated: Vec<&[u8]> = chunks(TttdChunker::new(1024), &data).collect();
        assert_eq!(spans.len(), iterated.len());
        for (span, chunk) in spans.iter().zip(&iterated) {
            assert_eq!(&data[span.clone()], *chunk);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ChunkerKind::Tttd.to_string(), "tttd");
        assert_eq!(ChunkerKind::FastCdc.to_string(), "fastcdc");
    }
}
