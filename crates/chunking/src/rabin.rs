//! Rabin-fingerprint content-defined chunking, as introduced by LBFS and
//! shipped by Destor as "rabin CDC".

use crate::rolling::{RabinHash, DEFAULT_WINDOW};
use crate::Chunker;

/// Content-defined chunker driven by a windowed Rabin fingerprint.
///
/// A cut is declared at the first position (at least `min_size` into the
/// chunk) where `hash % divisor == divisor - 1`; the divisor equals the
/// target average size so the expected spacing between cuts is the average.
/// A hard `max_size` bound caps pathological inputs (e.g. long runs of a
/// single byte where the hash never matches).
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, Chunker, RabinChunker};
///
/// let mut chunker = RabinChunker::new(4096);
/// assert_eq!(chunker.min_size(), 1024);
/// assert_eq!(chunker.max_size(), 4096 * 8);
/// ```
#[derive(Debug, Clone)]
pub struct RabinChunker {
    min_size: usize,
    max_size: usize,
    divisor: u64,
    hash: RabinHash,
}

impl RabinChunker {
    /// Creates a Rabin chunker with target average chunk size `avg_size`.
    ///
    /// Minimum size is `avg_size / 4`, maximum is `avg_size * 8` — the
    /// conventional LBFS/Destor ratios.
    ///
    /// # Panics
    ///
    /// Panics if `avg_size < 64`.
    pub fn new(avg_size: usize) -> Self {
        Self::with_bounds(avg_size, avg_size / 4, avg_size * 8)
    }

    /// Creates a Rabin chunker with explicit minimum and maximum sizes.
    ///
    /// # Panics
    ///
    /// Panics if `avg_size < 64`, `min_size == 0`, or the bounds are not
    /// `min_size <= avg_size <= max_size`.
    pub fn with_bounds(avg_size: usize, min_size: usize, max_size: usize) -> Self {
        assert!(
            avg_size >= 64,
            "average chunk size must be at least 64 bytes"
        );
        assert!(min_size > 0, "minimum chunk size must be non-zero");
        assert!(
            min_size <= avg_size && avg_size <= max_size,
            "bounds must satisfy min <= avg <= max"
        );
        RabinChunker {
            min_size,
            max_size,
            divisor: avg_size as u64,
            hash: RabinHash::new(DEFAULT_WINDOW),
        }
    }
}

impl Chunker for RabinChunker {
    fn next_chunk_len(&mut self, data: &[u8]) -> usize {
        assert!(!data.is_empty(), "next_chunk_len requires non-empty data");
        if data.len() <= self.min_size {
            return data.len();
        }
        self.hash.reset();
        let limit = data.len().min(self.max_size);
        // Warm the window over the bytes before the first legal cut point so
        // the hash at position min_size covers real content.
        let warm_start = self.min_size.saturating_sub(DEFAULT_WINDOW);
        for &b in &data[warm_start..self.min_size] {
            self.hash.roll(b);
        }
        for (i, &b) in data[self.min_size..limit].iter().enumerate() {
            let h = self.hash.roll(b);
            if h % self.divisor == self.divisor - 1 {
                return self.min_size + i + 1;
            }
        }
        limit
    }

    fn min_size(&self) -> usize {
        self.min_size
    }

    fn max_size(&self) -> usize {
        self.max_size
    }

    fn reset(&mut self) {
        self.hash.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk_spans;

    fn noise(len: usize) -> Vec<u8> {
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn constant_input_hits_max_size() {
        // A single repeated byte gives a constant rolling hash; unless that
        // value happens to match, every chunk is max-sized.
        let data = vec![0u8; 100_000];
        let mut c = RabinChunker::new(1024);
        let spans = chunk_spans(&mut c, &data);
        assert!(spans[..spans.len() - 1]
            .iter()
            .all(|s| s.len() == c.max_size() || s.len() >= c.min_size()));
    }

    #[test]
    fn average_in_expected_band() {
        let data = noise(2_000_000);
        let mut c = RabinChunker::new(4096);
        let spans = chunk_spans(&mut c, &data);
        let avg = data.len() / spans.len();
        assert!((2048..=8192).contains(&avg), "avg {avg}");
    }

    #[test]
    fn min_size_enforced() {
        let data = noise(500_000);
        let mut c = RabinChunker::new(1024);
        let spans = chunk_spans(&mut c, &data);
        for s in &spans[..spans.len() - 1] {
            assert!(s.len() >= 256);
        }
    }

    #[test]
    fn identical_suffixes_share_boundaries() {
        let shared = noise(300_000);
        let mut with_prefix = vec![0xEEu8; 1000];
        with_prefix.extend_from_slice(&shared);
        let mut c = RabinChunker::new(2048);
        let a: std::collections::HashSet<usize> = chunk_spans(&mut c, &shared)
            .iter()
            .map(|s| shared.len() - s.end)
            .collect();
        let b: std::collections::HashSet<usize> = chunk_spans(&mut c, &with_prefix)
            .iter()
            .map(|s| with_prefix.len() - s.end)
            .collect();
        let survived = a.intersection(&b).count();
        assert!(survived * 10 >= a.len() * 9, "{survived}/{}", a.len());
    }

    #[test]
    #[should_panic(expected = "bounds must satisfy")]
    fn invalid_bounds_rejected() {
        RabinChunker::with_bounds(1024, 4096, 512);
    }

    #[test]
    fn short_stream_is_one_chunk() {
        let mut c = RabinChunker::new(4096);
        assert_eq!(chunk_spans(&mut c, &noise(100)), vec![0..100]);
    }
}
