//! Rolling-hash primitives shared by the content-defined chunkers.
//!
//! Two families are provided:
//!
//! * [`RabinHash`] — a true Rabin fingerprint over GF(2) polynomials with a
//!   fixed irreducible modulus, as used by LBFS-style CDC. Table-driven:
//!   appending a byte and expiring the oldest window byte are both O(1).
//! * [`gear_table`] / [`gear_step`] — the gear hash used by FastCDC; a single
//!   shift-and-add per byte with a random byte-to-u64 substitution table.

/// The irreducible degree-53 polynomial used by LBFS and most Rabin CDC
/// implementations (0x3DA3358B4DC173 in the usual notation).
pub const RABIN_POLYNOMIAL: u64 = 0x003D_A335_8B4D_C173;

/// Default rolling window width in bytes for Rabin chunking.
pub const DEFAULT_WINDOW: usize = 48;

/// Degree of a GF(2) polynomial represented as a bit set (u64), or -1 for 0.
fn degree(p: u64) -> i32 {
    63 - p.leading_zeros() as i32
}

/// Multiplies two GF(2) polynomials modulo `modulus` (carry-less).
fn polymod_mul(mut a: u64, mut b: u64, modulus: u64) -> u64 {
    let mut result = 0u64;
    let deg = degree(modulus);
    a = polymod(a, modulus);
    while b != 0 {
        if b & 1 != 0 {
            result ^= a;
        }
        b >>= 1;
        a <<= 1;
        if degree(a) == deg {
            a ^= modulus;
        }
    }
    polymod(result, modulus)
}

/// Reduces polynomial `a` modulo `modulus` over GF(2).
fn polymod(mut a: u64, modulus: u64) -> u64 {
    let dm = degree(modulus);
    if dm < 0 {
        return a;
    }
    while degree(a) >= dm {
        a ^= modulus << (degree(a) - dm);
    }
    a
}

/// Computes x^n mod `modulus` over GF(2) by square-and-multiply.
fn polymod_pow_of_x(n: u32, modulus: u64) -> u64 {
    let mut result = 1u64; // x^0
    let mut base = 2u64; // x^1
    let mut n = n;
    while n > 0 {
        if n & 1 == 1 {
            result = polymod_mul(result, base, modulus);
        }
        base = polymod_mul(base, base, modulus);
        n >>= 1;
    }
    result
}

/// Windowed Rabin fingerprint: hash of the last `window` bytes of the stream
/// as a polynomial over GF(2) modulo [`RABIN_POLYNOMIAL`].
///
/// # Examples
///
/// ```
/// use hidestore_chunking::rolling::RabinHash;
///
/// let mut a = RabinHash::new(16);
/// let mut b = RabinHash::new(16);
/// // After absorbing >= window bytes, only the trailing window matters.
/// for byte in b"AAAAAAAA0123456789abcdef" { a.roll(*byte); }
/// for byte in b"BB0123456789abcdef" { b.roll(*byte); }
/// assert_eq!(a.value(), b.value());
/// ```
#[derive(Debug, Clone)]
pub struct RabinHash {
    value: u64,
    window: usize,
    buf: Vec<u8>,
    head: usize,
    filled: bool,
    /// shift_table[b] = b * x^(8*window) mod P — removes the expiring byte.
    shift_table: [u64; 256],
    /// append_table[top9bits] reduces after the <<8 append step.
    modulus: u64,
}

impl RabinHash {
    /// Creates a windowed Rabin hash with the given window width in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be non-zero");
        let mut shift_table = [0u64; 256];
        // The expiring byte is removed *before* the <<8 append step, at which
        // point its positional weight is x^(8*(window-1)), as in LBFS.
        let xw = polymod_pow_of_x((8 * (window - 1)) as u32, RABIN_POLYNOMIAL);
        for (b, entry) in shift_table.iter_mut().enumerate() {
            *entry = polymod_mul(b as u64, xw, RABIN_POLYNOMIAL);
        }
        RabinHash {
            value: 0,
            window,
            buf: vec![0; window],
            head: 0,
            filled: false,
            shift_table,
            modulus: RABIN_POLYNOMIAL,
        }
    }

    /// Absorbs one byte, expiring the oldest byte once the window is full,
    /// and returns the updated fingerprint.
    #[inline]
    pub fn roll(&mut self, byte: u8) -> u64 {
        let old = self.buf[self.head];
        self.buf[self.head] = byte;
        self.head += 1;
        if self.head == self.window {
            self.head = 0;
            self.filled = true;
        }
        // Before the window fills, `old` is 0 and shift_table[0] == 0, so the
        // removal is a harmless no-op.
        self.value ^= self.shift_table[old as usize];
        // value = (value * x^8 + byte) mod P
        self.value = polymod((self.value << 8) | byte as u64, self.modulus);
        self.value
    }

    /// Current fingerprint of the trailing window.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Clears the hash state for a new stream.
    pub fn reset(&mut self) {
        self.value = 0;
        self.buf.iter_mut().for_each(|b| *b = 0);
        self.head = 0;
        self.filled = false;
    }
}

/// 256-entry substitution table for the gear hash, generated deterministically
/// from a SplitMix64 sequence so chunking is reproducible across runs and
/// platforms without a `rand` dependency.
pub fn gear_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut state = 0x853C_49E6_748F_EA9Bu64;
        let mut table = [0u64; 256];
        for entry in table.iter_mut() {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *entry = z ^ (z >> 31);
        }
        table
    })
}

/// One gear-hash step: `h' = (h << 1) + G[byte]`.
#[inline]
pub fn gear_step(hash: u64, byte: u8) -> u64 {
    (hash << 1).wrapping_add(gear_table()[byte as usize])
}

/// Returns a mask with `bits` one-bits spread over the upper half of a u64,
/// as FastCDC does to judge boundaries from the most-mixed bits.
/// # Panics
///
/// Panics if `bits > 48`.
pub fn spread_mask(bits: u32) -> u64 {
    assert!(bits <= 48, "spread_mask supports at most 48 bits");
    let mut mask = 0u64;
    for i in 0..bits {
        // Odd bit positions from the top first, then even ones.
        let pos = if i < 32 {
            63 - 2 * i
        } else {
            62 - 2 * (i - 32)
        };
        mask |= 1u64 << pos;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_basic() {
        assert_eq!(degree(0), -1);
        assert_eq!(degree(1), 0);
        assert_eq!(degree(2), 1);
        assert_eq!(degree(RABIN_POLYNOMIAL), 53);
    }

    #[test]
    fn polymod_reduces_below_modulus_degree() {
        let m = RABIN_POLYNOMIAL;
        for a in [0u64, 1, 2, 0xFFFF_FFFF_FFFF_FFFF, m, m << 1 >> 1] {
            assert!(degree(polymod(a, m)) < degree(m));
        }
    }

    #[test]
    fn polymod_mul_is_commutative_and_distributive() {
        let m = RABIN_POLYNOMIAL;
        let (a, b, c) = (0x1234_5678u64, 0x9ABC_DEF0u64, 0x0F0F_F0F0u64);
        assert_eq!(polymod_mul(a, b, m), polymod_mul(b, a, m));
        assert_eq!(
            polymod_mul(a, b ^ c, m),
            polymod_mul(a, b, m) ^ polymod_mul(a, c, m)
        );
    }

    #[test]
    fn pow_of_x_matches_repeated_multiplication() {
        let m = RABIN_POLYNOMIAL;
        let mut acc = 1u64;
        for n in 0..20u32 {
            assert_eq!(polymod_pow_of_x(n, m), acc, "x^{n}");
            acc = polymod_mul(acc, 2, m);
        }
    }

    #[test]
    fn rabin_hash_depends_only_on_window() {
        // Two streams with identical trailing 32 bytes converge to the same
        // fingerprint regardless of their prefixes.
        let window = 32;
        let tail: Vec<u8> = (0..window as u8).map(|i| i.wrapping_mul(37)).collect();
        let mut h1 = RabinHash::new(window);
        let mut h2 = RabinHash::new(window);
        for b in std::iter::repeat_n(0xAAu8, 100).chain(tail.iter().copied()) {
            h1.roll(b);
        }
        for b in std::iter::repeat_n(0x55u8, 13).chain(tail.iter().copied()) {
            h2.roll(b);
        }
        assert_eq!(h1.value(), h2.value());
    }

    #[test]
    fn rabin_hash_differs_for_different_windows() {
        let mut h1 = RabinHash::new(16);
        let mut h2 = RabinHash::new(16);
        for b in 0..64u8 {
            h1.roll(b);
            h2.roll(b.wrapping_add(1));
        }
        assert_ne!(h1.value(), h2.value());
    }

    #[test]
    fn rabin_reset_restores_initial_state() {
        let mut h = RabinHash::new(8);
        let first: Vec<u64> = (0..20u8).map(|b| h.roll(b)).collect();
        h.reset();
        let second: Vec<u64> = (0..20u8).map(|b| h.roll(b)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn gear_table_is_deterministic_and_mixed() {
        let t1 = gear_table();
        let t2 = gear_table();
        assert_eq!(t1[0], t2[0]);
        // All entries distinct (SplitMix64 guarantees this for 256 outputs).
        let mut seen: Vec<u64> = t1.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn spread_mask_bit_count() {
        for bits in 1..=20 {
            assert_eq!(spread_mask(bits).count_ones(), bits, "bits={bits}");
        }
    }

    #[test]
    fn gear_step_shifts_old_bytes_out() {
        // After 64 steps the first byte no longer influences the hash.
        let mut a = 0u64;
        let mut b = 0u64;
        a = gear_step(a, 0x01);
        b = gear_step(b, 0xFE);
        for i in 0..64u8 {
            a = gear_step(a, i);
            b = gear_step(b, i);
        }
        assert_eq!(a, b);
    }
}
