//! Chunk-size distribution statistics, for validating chunker behaviour and
//! reporting in ablation experiments.

use std::ops::Range;

/// Summary statistics of a chunk-size distribution.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, SizeSummary, TttdChunker};
///
/// let data = vec![1u8; 50_000];
/// let spans = chunk_spans(&mut TttdChunker::new(1024), &data);
/// let summary = SizeSummary::from_spans(&spans);
/// assert_eq!(summary.count, spans.len());
/// assert!(summary.mean > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeSummary {
    /// Number of chunks.
    pub count: usize,
    /// Total bytes covered.
    pub total_bytes: u64,
    /// Mean chunk size.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: usize,
    /// 10th percentile.
    pub p10: usize,
    /// 90th percentile.
    pub p90: usize,
    /// Smallest chunk.
    pub min: usize,
    /// Largest chunk.
    pub max: usize,
    /// Coefficient of variation (standard deviation ÷ mean); lower means a
    /// tighter distribution — FastCDC's normalized chunking exists to lower
    /// this.
    pub cv: f64,
}

impl SizeSummary {
    /// Summarizes a set of chunk sizes.
    ///
    /// Returns an all-zero summary for an empty input.
    pub fn from_sizes(sizes: impl IntoIterator<Item = usize>) -> Self {
        let mut v: Vec<usize> = sizes.into_iter().collect();
        if v.is_empty() {
            return SizeSummary {
                count: 0,
                total_bytes: 0,
                mean: 0.0,
                median: 0,
                p10: 0,
                p90: 0,
                min: 0,
                max: 0,
                cv: 0.0,
            };
        }
        v.sort_unstable();
        let count = v.len();
        let total: u64 = v.iter().map(|&s| s as u64).sum();
        let mean = total as f64 / count as f64;
        let variance = v.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / count as f64;
        let pct = |p: f64| v[((count as f64 - 1.0) * p).round() as usize];
        SizeSummary {
            count,
            total_bytes: total,
            mean,
            median: pct(0.5),
            p10: pct(0.1),
            p90: pct(0.9),
            min: v[0],
            max: v[count - 1],
            cv: if mean > 0.0 {
                variance.sqrt() / mean
            } else {
                0.0
            },
        }
    }

    /// Summarizes chunk spans (as produced by [`crate::chunk_spans`]).
    pub fn from_spans(spans: &[Range<usize>]) -> Self {
        Self::from_sizes(spans.iter().map(|s| s.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chunk_spans, ChunkerKind};

    #[test]
    fn known_distribution() {
        let s = SizeSummary::from_sizes([100, 200, 300, 400, 500]);
        assert_eq!(s.count, 5);
        assert_eq!(s.total_bytes, 1500);
        assert!((s.mean - 300.0).abs() < 1e-9);
        assert_eq!(s.median, 300);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 500);
        assert!(s.p10 <= s.median && s.median <= s.p90);
    }

    #[test]
    fn empty_input() {
        let s = SizeSummary::from_sizes([]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn constant_sizes_have_zero_cv() {
        let s = SizeSummary::from_sizes([512; 100]);
        assert_eq!(s.cv, 0.0);
        assert_eq!(s.median, 512);
    }

    #[test]
    fn fastcdc_tighter_than_rabin() {
        // Normalized chunking should reduce size variance (lower CV) — the
        // point of FastCDC's design.
        let mut state = 0x1234_5678_9ABC_DEFFu64;
        let data: Vec<u8> = (0..3_000_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect();
        let cv = |kind: ChunkerKind| {
            let mut c = kind.build(4096);
            SizeSummary::from_spans(&chunk_spans(c.as_mut(), &data)).cv
        };
        let fastcdc = cv(ChunkerKind::FastCdc);
        let rabin = cv(ChunkerKind::Rabin);
        assert!(
            fastcdc < rabin,
            "fastcdc cv {fastcdc:.3} vs rabin {rabin:.3}"
        );
    }

    #[test]
    fn spans_and_sizes_agree() {
        let spans = vec![0..100, 100..350, 350..400];
        let a = SizeSummary::from_spans(&spans);
        let b = SizeSummary::from_sizes([100, 250, 50]);
        assert_eq!(a, b);
    }
}
