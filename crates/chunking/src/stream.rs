//! Push-based streaming chunking for ingest without buffering the whole
//! stream.
//!
//! [`crate::chunk_spans`] needs the complete stream in memory. Backup
//! appliances ingest from sockets and pipes, so [`StreamChunker`] accepts
//! data incrementally and emits each chunk as soon as its boundary is
//! final, holding at most `max_size` bytes of lookahead.

use crate::Chunker;

/// Incremental chunker: feed bytes with [`StreamChunker::push`], receive
/// complete chunks through a callback, and flush the tail with
/// [`StreamChunker::finish`].
///
/// The emitted chunk boundaries are identical to what
/// [`crate::chunk_spans`] produces on the concatenated stream: a boundary
/// is only emitted once at least `max_size` bytes of lookahead are buffered
/// (or at end of stream), which is exactly the information a whole-stream
/// scan has.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{StreamChunker, TttdChunker};
///
/// let mut chunks = Vec::new();
/// let mut stream = StreamChunker::new(TttdChunker::new(1024));
/// for piece in vec![0u8; 100_000].chunks(777) {
///     stream.push(piece, |chunk| chunks.push(chunk.len()));
/// }
/// stream.finish(|chunk| chunks.push(chunk.len()));
/// assert_eq!(chunks.iter().sum::<usize>(), 100_000);
/// ```
#[derive(Debug)]
pub struct StreamChunker<C> {
    chunker: C,
    buffer: Vec<u8>,
}

impl<C: Chunker> StreamChunker<C> {
    /// Wraps a chunker for streaming use.
    pub fn new(mut chunker: C) -> Self {
        chunker.reset();
        StreamChunker {
            chunker,
            buffer: Vec::new(),
        }
    }

    /// Bytes currently buffered awaiting a final boundary (always less than
    /// `2 * max_size`).
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Feeds more stream data, emitting every chunk whose boundary is now
    /// final.
    pub fn push(&mut self, data: &[u8], mut emit: impl FnMut(&[u8])) {
        self.buffer.extend_from_slice(data);
        let max = self.chunker.max_size();
        // A cut decision that sees at least max_size bytes cannot change
        // with more data: every chunker cuts within max_size.
        while self.buffer.len() >= max {
            let len = self.chunker.next_chunk_len(&self.buffer);
            debug_assert!(len <= max);
            emit(&self.buffer[..len]);
            self.buffer.drain(..len);
        }
    }

    /// Ends the stream, emitting the remaining chunks (the final one may be
    /// shorter than the chunker's minimum, as with whole-stream chunking).
    pub fn finish(mut self, mut emit: impl FnMut(&[u8])) {
        while !self.buffer.is_empty() {
            let len = self.chunker.next_chunk_len(&self.buffer);
            emit(&self.buffer[..len]);
            self.buffer.drain(..len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chunk_spans, ChunkerKind, TttdChunker};

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn stream_lengths(data: &[u8], push_size: usize, kind: ChunkerKind) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stream = StreamChunker::new(kind.build(1024));
        for piece in data.chunks(push_size) {
            stream.push(piece, |c| out.push(c.len()));
        }
        stream.finish(|c| out.push(c.len()));
        out
    }

    #[test]
    fn matches_whole_stream_boundaries_all_kinds() {
        let data = noise(300_000, 5);
        for kind in ChunkerKind::ALL {
            let mut c = kind.build(1024);
            let expect: Vec<usize> = chunk_spans(c.as_mut(), &data)
                .iter()
                .map(|s| s.len())
                .collect();
            for push_size in [1usize << 9, 1 << 12, 1 << 16, data.len()] {
                let got = stream_lengths(&data, push_size, kind);
                assert_eq!(got, expect, "{kind} push {push_size}");
            }
        }
    }

    #[test]
    fn content_round_trips() {
        let data = noise(100_000, 9);
        let mut rebuilt = Vec::new();
        let mut stream = StreamChunker::new(TttdChunker::new(2048));
        for piece in data.chunks(1000) {
            stream.push(piece, |c| rebuilt.extend_from_slice(c));
        }
        stream.finish(|c| rebuilt.extend_from_slice(c));
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn lookahead_bounded() {
        let data = noise(200_000, 3);
        let mut stream = StreamChunker::new(TttdChunker::new(1024));
        let max = 2 * TttdChunker::new(1024).max_size();
        for piece in data.chunks(4096) {
            stream.push(piece, |_| {});
            assert!(stream.buffered() < max, "buffered {}", stream.buffered());
        }
        stream.finish(|_| {});
    }

    #[test]
    fn empty_stream_emits_nothing() {
        let stream = StreamChunker::new(TttdChunker::new(1024));
        let mut n = 0;
        stream.finish(|_| n += 1);
        assert_eq!(n, 0);
    }

    #[test]
    fn byte_at_a_time_push() {
        let data = noise(20_000, 7);
        let got = stream_lengths(&data, 1, ChunkerKind::Tttd);
        let mut c = TttdChunker::new(1024);
        let expect: Vec<usize> = chunk_spans(&mut c, &data).iter().map(|s| s.len()).collect();
        assert_eq!(got, expect);
    }
}
