//! TTTD — Two Thresholds, Two Divisors chunking (Eshghi & Tang, HP Labs
//! TR 2005-30). This is the chunking algorithm the HiDeStore prototype uses
//! (paper §5.1).

use crate::rolling::{RabinHash, DEFAULT_WINDOW};
use crate::Chunker;

/// Two Thresholds Two Divisors content-defined chunker.
///
/// TTTD improves on plain Rabin CDC by adding a *backup divisor* `D'` (half
/// as selective as the main divisor `D`). While scanning, positions matching
/// the backup divisor are remembered; if the hard maximum threshold is
/// reached without a main-divisor match, the most recent backup match is used
/// instead of an arbitrary max-size cut, keeping more boundaries
/// content-defined and reducing chunk-size variance.
///
/// Parameter ratios follow the HP technical report, scaled to the requested
/// average size (the report's 460/2800/540/270 for ≈1 KiB average).
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, Chunker, TttdChunker};
///
/// let mut c = TttdChunker::new(4096);
/// let data: Vec<u8> = (0..100_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();
/// let spans = chunk_spans(&mut c, &data);
/// assert!(spans.iter().all(|s| s.len() <= c.max_size()));
/// ```
#[derive(Debug, Clone)]
pub struct TttdChunker {
    min_size: usize,
    max_size: usize,
    main_divisor: u64,
    backup_divisor: u64,
    hash: RabinHash,
}

impl TttdChunker {
    /// Creates a TTTD chunker for the given target average chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `avg_size < 64`.
    pub fn new(avg_size: usize) -> Self {
        assert!(
            avg_size >= 64,
            "average chunk size must be at least 64 bytes"
        );
        // HP TR 2005-30 parameters scale: Tmin=460, Tmax=2800, D=540, D'=270
        // for an average of ~1015 bytes.
        let scale = avg_size as f64 / 1015.0;
        let min_size = ((460.0 * scale) as usize).max(1);
        let max_size = (2800.0 * scale) as usize;
        let main_divisor = ((540.0 * scale) as u64).max(2);
        TttdChunker {
            min_size,
            max_size: max_size.max(min_size + 1),
            main_divisor,
            backup_divisor: (main_divisor / 2).max(1),
            hash: RabinHash::new(DEFAULT_WINDOW),
        }
    }
}

impl Chunker for TttdChunker {
    fn next_chunk_len(&mut self, data: &[u8]) -> usize {
        assert!(!data.is_empty(), "next_chunk_len requires non-empty data");
        if data.len() <= self.min_size {
            return data.len();
        }
        self.hash.reset();
        let limit = data.len().min(self.max_size);
        let warm_start = self.min_size.saturating_sub(DEFAULT_WINDOW);
        for &b in &data[warm_start..self.min_size] {
            self.hash.roll(b);
        }
        let mut backup_cut = None;
        for (i, &b) in data[self.min_size..limit].iter().enumerate() {
            let h = self.hash.roll(b);
            let pos = self.min_size + i + 1;
            if h % self.main_divisor == self.main_divisor - 1 {
                return pos;
            }
            if h % self.backup_divisor == self.backup_divisor - 1 {
                backup_cut = Some(pos);
            }
        }
        if limit < self.max_size {
            // Stream tail: no more data will arrive, take the remainder.
            return data.len();
        }
        backup_cut.unwrap_or(limit)
    }

    fn min_size(&self) -> usize {
        self.min_size
    }

    fn max_size(&self) -> usize {
        self.max_size
    }

    fn reset(&mut self) {
        self.hash.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk_spans;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn parameters_scale_with_average() {
        let small = TttdChunker::new(1024);
        let large = TttdChunker::new(8192);
        assert!(large.min_size() > small.min_size());
        assert!(large.max_size() > small.max_size());
        assert!(small.min_size() < 1024 && small.max_size() > 1024);
    }

    #[test]
    fn average_near_target() {
        let data = noise(3_000_000, 42);
        let mut c = TttdChunker::new(4096);
        let spans = chunk_spans(&mut c, &data);
        let avg = data.len() / spans.len();
        assert!((2048..=8192).contains(&avg), "avg {avg}");
    }

    #[test]
    fn backup_divisor_reduces_forced_cuts() {
        // On random data, count chunks cut exactly at max_size. With the
        // backup divisor, forced cuts should be rare (<5%).
        let data = noise(2_000_000, 13);
        let mut c = TttdChunker::new(2048);
        let max = c.max_size();
        let spans = chunk_spans(&mut c, &data);
        let forced = spans.iter().filter(|s| s.len() == max).count();
        assert!(
            forced * 20 <= spans.len(),
            "{forced}/{} forced cuts",
            spans.len()
        );
    }

    #[test]
    fn min_enforced_except_tail() {
        let data = noise(400_000, 99);
        let mut c = TttdChunker::new(1024);
        let spans = chunk_spans(&mut c, &data);
        let min = c.min_size();
        for s in &spans[..spans.len() - 1] {
            assert!(s.len() >= min);
        }
    }

    #[test]
    fn deterministic() {
        let data = noise(150_000, 5);
        let mut c = TttdChunker::new(4096);
        let a = chunk_spans(&mut c, &data);
        let b = chunk_spans(&mut c, &data);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_input_single_chunk() {
        let mut c = TttdChunker::new(4096);
        assert_eq!(chunk_spans(&mut c, b"tiny"), vec![0..4]);
    }
}
