//! The active container pool — the "chunk filter" of §4.2.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use hidestore_hash::Fingerprint;
use hidestore_storage::{Container, ContainerId};

use crate::composite::ACTIVE_ID_BASE;

/// Outcome of an end-of-version pool compaction (§4.2, Figure 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Sparse containers whose chunks were migrated and merged.
    pub containers_merged: u64,
    /// Chunks moved during merging.
    pub chunks_moved: u64,
    /// Bytes of dead space reclaimed (from removals and merging).
    pub bytes_reclaimed: u64,
}

/// The pool of active containers holding the hot chunks of recent versions.
///
/// Active containers are *dynamic*: unique chunks are appended during
/// deduplication, cold chunks are removed at version end, and sparse
/// containers are merged so the hot set stays physically dense — the
/// mechanism that gives new backup versions their physical locality.
///
/// Container IDs handed out by the pool live in their own number space
/// (`1, 2, …`); the containers themselves carry
/// [`ContainerId`]s offset by [`ACTIVE_ID_BASE`] so they can coexist with
/// archival IDs inside one restore plan.
#[derive(Debug)]
pub struct ActivePool {
    capacity: usize,
    containers: BTreeMap<u32, Container>,
    /// The container currently accepting inserts.
    open: Option<u32>,
    next_cid: u32,
    fp_index: HashMap<Fingerprint, u32>,
}

impl ActivePool {
    /// Creates a pool of containers with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "container capacity must be non-zero");
        ActivePool {
            capacity,
            containers: BTreeMap::new(),
            open: None,
            next_cid: 1,
            fp_index: HashMap::new(),
        }
    }

    /// Appends a chunk, returning the active container ID now holding it.
    /// If the fingerprint is already pooled, returns its existing location.
    pub fn add(&mut self, fp: Fingerprint, data: &[u8]) -> u32 {
        if let Some(&cid) = self.fp_index.get(&fp) {
            return cid;
        }
        loop {
            let cid = match self.open {
                Some(cid) => cid,
                None => {
                    let cid = self.next_cid;
                    self.next_cid += 1;
                    self.containers.insert(
                        cid,
                        Container::new(ContainerId::new(ACTIVE_ID_BASE + cid), self.capacity),
                    );
                    self.open = Some(cid);
                    cid
                }
            };
            let Some(container) = self.containers.get_mut(&cid) else {
                // The open marker pointed at a container that no longer
                // exists (it was merged away); clear it and retry.
                self.open = None;
                continue;
            };
            if container.try_add(fp, data) {
                self.fp_index.insert(fp, cid);
                return cid;
            }
            // Full: it stays in the pool (still hot), but stops receiving.
            self.open = None;
        }
    }

    /// Removes a chunk (cold demotion), returning its content.
    pub fn remove(&mut self, fp: &Fingerprint) -> Option<Bytes> {
        let cid = self.fp_index.remove(fp)?;
        let container = self.containers.get_mut(&cid)?;
        let data = container.get(fp).map(Bytes::copy_from_slice);
        container.remove(fp);
        if container.is_empty() {
            self.containers.remove(&cid);
            if self.open == Some(cid) {
                self.open = None;
            }
        }
        data
    }

    /// The active container ID holding `fp`, if pooled.
    pub fn locate(&self, fp: &Fingerprint) -> Option<u32> {
        self.fp_index.get(fp).copied()
    }

    /// Chunk content by fingerprint.
    pub fn get(&self, fp: &Fingerprint) -> Option<&[u8]> {
        let cid = self.fp_index.get(fp)?;
        self.containers.get(cid).and_then(|c| c.get(fp))
    }

    /// A read-only snapshot of one active container for restore, by pool-
    /// local ID.
    pub fn snapshot(&self, cid: u32) -> Option<Arc<Container>> {
        self.containers.get(&cid).map(|c| Arc::new(c.clone()))
    }

    /// Merges sparse containers (utilization below `threshold`) and compacts
    /// dead space, per Figure 6. Returns the report and the relocation map
    /// (fingerprint → new pool-local CID) the fingerprint cache needs.
    pub fn compact(&mut self, threshold: f64) -> (CompactionReport, HashMap<Fingerprint, u32>) {
        self.compact_with_order(threshold, &HashMap::new())
    }

    /// [`ActivePool::compact`] with a stream-order hint: migrating chunks
    /// are packed in ascending `rank` (their position in the newest backup
    /// stream), so the merged containers line up with the order a restore
    /// of the newest version will read them — the physical locality the
    /// paper's §4.2 compaction exists to create. Chunks without a rank
    /// (present only in older history) are packed last.
    pub fn compact_with_order(
        &mut self,
        threshold: f64,
        rank: &HashMap<Fingerprint, u32>,
    ) -> (CompactionReport, HashMap<Fingerprint, u32>) {
        let mut report = CompactionReport::default();
        let sparse_ids: Vec<u32> = self
            .containers
            .iter()
            .filter(|(_, c)| c.utilization() < threshold)
            .map(|(&cid, _)| cid)
            .collect();
        let mut relocations = HashMap::new();
        if sparse_ids.len() >= 2 {
            // Migrate all chunks of sparse containers into fresh containers,
            // packed tightly in stream order (falling back to the original
            // physical order for unranked chunks).
            let mut migrating: Vec<(Fingerprint, Bytes)> = Vec::new();
            for cid in &sparse_ids {
                let Some(container) = self.containers.remove(cid) else {
                    continue;
                };
                report.containers_merged += 1;
                report.bytes_reclaimed += (container.used_bytes() - container.live_bytes()) as u64;
                if self.open == Some(*cid) {
                    self.open = None;
                }
                for (fp, data) in container.drain_chunks() {
                    self.fp_index.remove(&fp);
                    migrating.push((fp, data));
                }
            }
            if !rank.is_empty() {
                let mut keyed: Vec<(u32, usize)> = migrating
                    .iter()
                    .enumerate()
                    .map(|(i, (fp, _))| (rank.get(fp).copied().unwrap_or(u32::MAX), i))
                    .collect();
                keyed.sort_unstable();
                let mut reordered = Vec::with_capacity(migrating.len());
                let mut taken: Vec<Option<(Fingerprint, Bytes)>> =
                    migrating.into_iter().map(Some).collect();
                for (_, i) in keyed {
                    if let Some(item) = taken[i].take() {
                        reordered.push(item);
                    }
                }
                migrating = reordered;
            }
            for (fp, data) in migrating {
                let new_cid = self.add(fp, &data);
                relocations.insert(fp, new_cid);
                report.chunks_moved += 1;
            }
        }
        // In-place compaction of remaining containers with dead bytes (does
        // not change CIDs).
        for container in self.containers.values_mut() {
            let dead = container.used_bytes() - container.live_bytes();
            if dead > 0 {
                report.bytes_reclaimed += dead as u64;
                container.compact_in_place();
            }
        }
        (report, relocations)
    }

    /// Number of containers in the pool.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// Total live bytes pooled.
    pub fn live_bytes(&self) -> u64 {
        self.containers
            .values()
            .map(|c| c.live_bytes() as u64)
            .sum()
    }

    /// Number of chunks pooled.
    pub fn chunk_count(&self) -> usize {
        self.fp_index.len()
    }

    /// Pool-local IDs of all active containers.
    pub fn container_ids(&self) -> Vec<u32> {
        self.containers.keys().copied().collect()
    }

    /// Iterates over `(pool-local id, container)` pairs in ascending ID
    /// order — the borrow-only view integrity checkers use to inspect the
    /// pool without cloning container snapshots.
    pub fn containers(&self) -> impl Iterator<Item = (u32, &Container)> {
        self.containers.iter().map(|(&cid, c)| (cid, c))
    }

    /// Rebuilds a pool from persisted containers (repository reopen). The
    /// containers must carry the [`ACTIVE_ID_BASE`]-offset IDs they were
    /// snapshotted with; a container outside the active ID space is reported
    /// as an error naming the offending ID.
    pub fn from_containers(capacity: usize, containers: Vec<Container>) -> Result<Self, String> {
        let mut pool = ActivePool::new(capacity);
        for container in containers {
            let Some(cid) = container.id().get().checked_sub(ACTIVE_ID_BASE) else {
                return Err(format!(
                    "container {} is not an active-pool snapshot",
                    container.id()
                ));
            };
            pool.next_cid = pool.next_cid.max(cid + 1);
            for fp in container.fingerprints() {
                pool.fp_index.insert(fp, cid);
            }
            pool.containers.insert(cid, container);
        }
        Ok(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    #[test]
    fn add_locate_get() {
        let mut pool = ActivePool::new(1024);
        let cid = pool.add(fp(1), b"hello");
        assert_eq!(pool.locate(&fp(1)), Some(cid));
        assert_eq!(pool.get(&fp(1)), Some(&b"hello"[..]));
        assert_eq!(pool.chunk_count(), 1);
    }

    #[test]
    fn duplicate_add_returns_existing_location() {
        let mut pool = ActivePool::new(1024);
        let a = pool.add(fp(1), b"x");
        let b = pool.add(fp(1), b"x");
        assert_eq!(a, b);
        assert_eq!(pool.chunk_count(), 1);
    }

    #[test]
    fn full_container_rolls_over() {
        let mut pool = ActivePool::new(64);
        let a = pool.add(fp(1), &[1; 40]);
        let b = pool.add(fp(2), &[2; 40]);
        assert_ne!(a, b);
        assert_eq!(pool.container_count(), 2);
    }

    #[test]
    fn remove_returns_content_and_unindexes() {
        let mut pool = ActivePool::new(1024);
        pool.add(fp(1), b"data");
        let data = pool.remove(&fp(1)).unwrap();
        assert_eq!(data.as_ref(), b"data");
        assert_eq!(pool.locate(&fp(1)), None);
        assert!(pool.remove(&fp(1)).is_none());
    }

    #[test]
    fn empty_container_dropped_after_last_removal() {
        let mut pool = ActivePool::new(1024);
        pool.add(fp(1), b"only");
        pool.remove(&fp(1));
        assert_eq!(pool.container_count(), 0);
    }

    #[test]
    fn compaction_merges_sparse_containers() {
        let mut pool = ActivePool::new(100);
        // Fill three containers, then remove most chunks to make them sparse.
        for i in 0..6u64 {
            pool.add(fp(i), &[i as u8; 45]);
        }
        assert_eq!(pool.container_count(), 3);
        for i in [0u64, 2, 4] {
            pool.remove(&fp(i));
        }
        let (report, relocations) = pool.compact(0.6);
        assert!(report.containers_merged >= 2, "{report:?}");
        assert_eq!(pool.container_count(), 2); // 3 chunks of 45B -> 2 containers of 100B
                                               // Every surviving chunk remains readable and relocations point right.
        for i in [1u64, 3, 5] {
            let data = pool.get(&fp(i)).unwrap();
            assert_eq!(data, &[i as u8; 45][..]);
            if let Some(&new_cid) = relocations.get(&fp(i)) {
                assert_eq!(pool.locate(&fp(i)), Some(new_cid));
            }
        }
    }

    #[test]
    fn compaction_noop_when_dense() {
        let mut pool = ActivePool::new(100);
        pool.add(fp(1), &[1; 90]);
        let (report, relocations) = pool.compact(0.5);
        assert_eq!(report.containers_merged, 0);
        assert!(relocations.is_empty());
    }

    #[test]
    fn snapshot_exposes_container_with_offset_id() {
        let mut pool = ActivePool::new(1024);
        let cid = pool.add(fp(1), b"snap");
        let snap = pool.snapshot(cid).unwrap();
        assert_eq!(snap.id().get(), ACTIVE_ID_BASE + cid);
        assert_eq!(snap.get(&fp(1)), Some(&b"snap"[..]));
    }

    #[test]
    fn live_bytes_tracks_removals() {
        let mut pool = ActivePool::new(1024);
        pool.add(fp(1), &[0; 100]);
        pool.add(fp(2), &[0; 50]);
        assert_eq!(pool.live_bytes(), 150);
        pool.remove(&fp(1));
        assert_eq!(pool.live_bytes(), 50);
    }
}
