//! The double-hash fingerprint cache (paper §4.1, Figure 5).

use std::collections::{HashMap, VecDeque};

use hidestore_hash::Fingerprint;

/// Metadata stored per chunk in the fingerprint cache: chunk size and the
/// active container currently holding it (Figure 5's "CID").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Chunk size in bytes.
    pub size: u32,
    /// Raw ID of the *active* container holding the chunk's content.
    pub active_cid: u32,
}

/// How an incoming chunk was classified (Figure 5's three cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Case 1: in neither table — a new unique chunk; the caller stores its
    /// content in an active container and inserts it into `T2`.
    Unique,
    /// Case 2: found in a previous-version table — a duplicate, now known to
    /// be hot; its entry has been migrated to `T2`.
    HotFromPrevious(CacheEntry),
    /// Case 3: already in `T2` — a duplicate within the current version;
    /// nothing to do.
    AlreadyCurrent(CacheEntry),
}

/// The paper's fingerprint cache: `T2` for the version being deduplicated
/// plus up to `history_depth` tables for previous versions (`T1`, and for
/// macos-like workloads `T0`).
///
/// Unlike traditional fingerprint caches the unit is a *chunk entry*, not a
/// container, and membership alone decides duplicate status — there is no
/// on-disk full index behind it (§4.1).
///
/// # Examples
///
/// ```
/// use hidestore_core::{CacheEntry, Classification, FingerprintCache};
/// use hidestore_hash::Fingerprint;
///
/// let mut cache = FingerprintCache::new(1);
/// let fp = Fingerprint::of(b"chunk");
/// assert!(matches!(cache.classify(fp), Classification::Unique));
/// cache.insert_current(fp, CacheEntry { size: 5, active_cid: 1 });
/// assert!(matches!(cache.classify(fp), Classification::AlreadyCurrent(_)));
///
/// cache.advance_version(); // T2 becomes T1
/// assert!(matches!(cache.classify(fp), Classification::HotFromPrevious(_)));
/// ```
#[derive(Debug, Default)]
pub struct FingerprintCache {
    /// `T2`: chunks of the version being deduplicated.
    current: HashMap<Fingerprint, CacheEntry>,
    /// Previous-version tables, most recent first (`history[0]` = `T1`).
    history: VecDeque<HashMap<Fingerprint, CacheEntry>>,
    history_depth: usize,
}

impl FingerprintCache {
    /// Creates a cache retaining `history_depth` previous versions.
    ///
    /// # Panics
    ///
    /// Panics if `history_depth == 0`.
    pub fn new(history_depth: usize) -> Self {
        assert!(history_depth >= 1, "history depth must be at least 1");
        FingerprintCache {
            current: HashMap::new(),
            history: VecDeque::new(),
            history_depth,
        }
    }

    /// Classifies a chunk per Figure 5, migrating hot entries from the
    /// history tables into `T2` (Case 2's "remove from T1, insert to T2").
    pub fn classify(&mut self, fp: Fingerprint) -> Classification {
        if let Some(&entry) = self.current.get(&fp) {
            return Classification::AlreadyCurrent(entry);
        }
        for table in &mut self.history {
            if let Some(entry) = table.remove(&fp) {
                self.current.insert(fp, entry);
                return Classification::HotFromPrevious(entry);
            }
        }
        Classification::Unique
    }

    /// Inserts a new unique chunk into `T2` after its content was stored in
    /// an active container.
    pub fn insert_current(&mut self, fp: Fingerprint, entry: CacheEntry) {
        self.current.insert(fp, entry);
    }

    /// Ends the version: `T2` becomes `T1` and the oldest history table (the
    /// cold set) is returned for demotion to archival containers.
    ///
    /// For depth 1 this returns exactly "the chunks remaining in T1" (§4.1).
    pub fn advance_version(&mut self) -> HashMap<Fingerprint, CacheEntry> {
        let finished = std::mem::take(&mut self.current);
        self.history.push_front(finished);
        if self.history.len() > self.history_depth {
            self.history.pop_back().unwrap_or_default()
        } else {
            HashMap::new()
        }
    }

    /// Iterates over every cached entry as `(table, fingerprint, entry)`,
    /// where table `0` is `T2` (the current version) and `1..` are the
    /// history tables, most recent first. Integrity checkers use this to
    /// cross-check cache entries against the active pool.
    pub fn entries(&self) -> impl Iterator<Item = (usize, Fingerprint, CacheEntry)> + '_ {
        let current = self.current.iter().map(|(fp, e)| (0usize, *fp, *e));
        let history = self
            .history
            .iter()
            .enumerate()
            .flat_map(|(i, t)| t.iter().map(move |(fp, e)| (i + 1, *fp, *e)));
        current.chain(history)
    }

    /// Rewrites active-container IDs after a pool compaction moved chunks.
    pub fn apply_relocations(&mut self, relocations: &HashMap<Fingerprint, u32>) {
        for (fp, &new_cid) in relocations {
            if let Some(e) = self.current.get_mut(fp) {
                e.active_cid = new_cid;
            }
            for table in &mut self.history {
                if let Some(e) = table.get_mut(fp) {
                    e.active_cid = new_cid;
                }
            }
        }
    }

    /// Entry for `fp` in `T2`, if present.
    pub fn current_entry(&self, fp: &Fingerprint) -> Option<CacheEntry> {
        self.current.get(fp).copied()
    }

    /// Whether `fp` is in `T2` (i.e. part of the newest version).
    pub fn in_current(&self, fp: &Fingerprint) -> bool {
        self.current.contains_key(fp)
    }

    /// Number of entries in `T2`.
    pub fn current_len(&self) -> usize {
        self.current.len()
    }

    /// Total entries across `T2` and all history tables.
    pub fn total_len(&self) -> usize {
        self.current.len() + self.history.iter().map(HashMap::len).sum::<usize>()
    }

    /// Memory footprint using the paper's 28-byte-per-entry accounting
    /// (20-byte fingerprint + 4-byte CID + 4-byte size, §4.1).
    pub fn memory_bytes(&self) -> usize {
        self.total_len() * 28
    }

    /// Preloads `T1` (used when re-opening a repository: the newest recipe's
    /// chunks become the previous-version table, §4.1 "the metadata of CV in
    /// the recipe is prefetched to T1").
    pub fn preload_history(&mut self, table: HashMap<Fingerprint, CacheEntry>) {
        self.history.push_front(table);
        while self.history.len() > self.history_depth {
            self.history.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    fn entry(cid: u32) -> CacheEntry {
        CacheEntry {
            size: 100,
            active_cid: cid,
        }
    }

    #[test]
    fn three_cases_of_figure_5() {
        let mut c = FingerprintCache::new(1);
        // Version 1: A unique, inserted.
        assert_eq!(c.classify(fp(1)), Classification::Unique);
        c.insert_current(fp(1), entry(1));
        // Same version again: case 3.
        assert_eq!(c.classify(fp(1)), Classification::AlreadyCurrent(entry(1)));
        c.advance_version();
        // Version 2: hit in T1 -> case 2, migrates.
        assert_eq!(c.classify(fp(1)), Classification::HotFromPrevious(entry(1)));
        // Second time within version 2: now case 3.
        assert_eq!(c.classify(fp(1)), Classification::AlreadyCurrent(entry(1)));
    }

    #[test]
    fn cold_chunks_are_the_t1_leftovers() {
        let mut c = FingerprintCache::new(1);
        for i in 0..4 {
            c.classify(fp(i));
            c.insert_current(fp(i), entry(i as u32 + 1));
        }
        assert!(
            c.advance_version().is_empty(),
            "nothing cold after first version"
        );
        // Version 2 re-uses chunks 0 and 1 only.
        c.classify(fp(0));
        c.classify(fp(1));
        let cold = c.advance_version();
        let mut cold_ids: Vec<u64> = cold
            .keys()
            .map(|f| u64::from_be_bytes(f.as_bytes()[..8].try_into().unwrap()))
            .collect();
        cold_ids.sort_unstable();
        assert_eq!(cold_ids, vec![2, 3]);
    }

    #[test]
    fn depth_two_delays_cold_demotion() {
        let mut c = FingerprintCache::new(2);
        c.classify(fp(1));
        c.insert_current(fp(1), entry(1));
        assert!(c.advance_version().is_empty());
        // Version 2 without chunk 1: with depth 2 it is *not* yet cold.
        assert!(c.advance_version().is_empty());
        // Version 3 without chunk 1: now it falls off the history.
        let cold = c.advance_version();
        assert_eq!(cold.len(), 1);
    }

    #[test]
    fn depth_two_rescues_skipping_chunks() {
        // The macos pattern (Figure 3d): a chunk absent from one version but
        // present in the next must stay deduplicable with depth 2.
        let mut c = FingerprintCache::new(2);
        c.classify(fp(1));
        c.insert_current(fp(1), entry(1));
        c.advance_version();
        c.advance_version(); // version without the chunk
        assert!(matches!(
            c.classify(fp(1)),
            Classification::HotFromPrevious(_)
        ));
    }

    #[test]
    fn relocations_update_all_tables() {
        let mut c = FingerprintCache::new(2);
        c.classify(fp(1));
        c.insert_current(fp(1), entry(1));
        c.advance_version();
        c.classify(fp(2));
        c.insert_current(fp(2), entry(2));
        let mut moves = HashMap::new();
        moves.insert(fp(1), 9u32);
        moves.insert(fp(2), 9u32);
        c.apply_relocations(&moves);
        assert_eq!(c.current_entry(&fp(2)).unwrap().active_cid, 9);
        assert!(
            matches!(c.classify(fp(1)), Classification::HotFromPrevious(e) if e.active_cid == 9)
        );
    }

    #[test]
    fn memory_accounting_is_28_bytes_per_entry() {
        let mut c = FingerprintCache::new(1);
        for i in 0..10 {
            c.classify(fp(i));
            c.insert_current(fp(i), entry(1));
        }
        assert_eq!(c.memory_bytes(), 280);
        c.advance_version();
        assert_eq!(c.memory_bytes(), 280, "history still counted");
    }

    #[test]
    fn preload_seeds_t1() {
        let mut c = FingerprintCache::new(1);
        let mut table = HashMap::new();
        table.insert(fp(5), entry(3));
        c.preload_history(table);
        assert!(matches!(
            c.classify(fp(5)),
            Classification::HotFromPrevious(_)
        ));
    }
}
