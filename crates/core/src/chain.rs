//! Recipe-chain maintenance (§4.3) and Algorithm 1.
//!
//! HiDeStore writes each version's recipe with every CID = 0 ("in active
//! containers"). When the *next* version demotes cold chunks, only the
//! previous recipe(s) are updated: demoted chunks get their archival CID,
//! still-hot chunks get a negative CID pointing at the newer recipe that now
//! tracks them. Old recipes therefore form a chain toward the newest one;
//! [`flatten_recipes`] (the paper's Algorithm 1) collapses the chain offline
//! so restores of old versions don't walk multiple recipes.

use std::collections::{HashMap, HashSet};

use hidestore_hash::Fingerprint;
use hidestore_storage::{Cid, ContainerId, RecipeStore, VersionId};

use crate::active::ActivePool;
use crate::composite::ACTIVE_ID_BASE;

/// Updates the recipes of the last `depth` versions after version `current`
/// demoted the cold set `moved` to archival containers (§4.3, Figure 7).
///
/// For every still-`ACTIVE` entry of those recipes:
/// * demoted chunk → its archival container ID;
/// * chunk present in the current version → `chained(current)`;
/// * otherwise (possible only with history depth ≥ 2) → stays `ACTIVE`; it
///   will be settled when its history table expires.
///
/// Returns the number of entries modified.
pub fn update_previous_recipes(
    recipes: &mut RecipeStore,
    current: VersionId,
    moved: &HashMap<Fingerprint, ContainerId>,
    current_fingerprints: &HashSet<Fingerprint>,
    depth: usize,
) -> u64 {
    let mut updated = 0;
    let cur = current.get();
    let oldest = cur.saturating_sub(depth as u32).max(1);
    for w in oldest..cur {
        let Some(recipe) = recipes.get_mut(VersionId::new(w)) else {
            continue;
        };
        for entry in recipe.entries_mut() {
            if !entry.cid.is_active() {
                continue;
            }
            if let Some(&archival) = moved.get(&entry.fingerprint) {
                entry.cid = Cid::archival(archival);
                updated += 1;
            } else if current_fingerprints.contains(&entry.fingerprint) {
                entry.cid = Cid::chained(current);
                updated += 1;
            }
        }
    }
    updated
}

/// Algorithm 1: collapses the recipe chain so every entry of every retained
/// recipe is either an archival CID, `ACTIVE` (the entry's own recipe is the
/// newest one containing the chunk, which is therefore still in the active
/// containers), or a *one-hop* chain to the newest recipe containing the
/// chunk — the paper's `-n` for still-hot chunks. Works newest → oldest with
/// a running resolution table, the generalization of the paper's `T`/`t`
/// tables that also handles chains created by earlier flatten passes.
///
/// Keeping still-hot chunks chained to their newest containing recipe (not
/// collapsed to `ACTIVE`) is what lets later backups settle them: cold
/// demotion only rewrites the most recent recipes (§4.3), so exactly the
/// newest containing recipe is guaranteed to receive the archival location.
///
/// Returns the number of entries rewritten.
pub fn flatten_recipes(recipes: &mut RecipeStore) -> u64 {
    let mut resolved: HashMap<Fingerprint, Cid> = HashMap::new();
    // Newest version whose recipe contains each fingerprint.
    let mut containing: HashMap<Fingerprint, VersionId> = HashMap::new();
    let mut updated = 0;
    let mut versions = recipes.versions();
    versions.reverse(); // newest first
    for v in versions {
        let Some(recipe) = recipes.get_mut(v) else {
            continue;
        };
        for entry in recipe.entries_mut() {
            // Walking newest-first, the first sighting is the newest one.
            containing.entry(entry.fingerprint).or_insert(v);
            match (entry.cid.as_archival(), entry.cid.as_chained()) {
                (Some(_), _) => {
                    // Already physical: record for older recipes.
                    resolved.entry(entry.fingerprint).or_insert(entry.cid);
                }
                (None, Some(_)) => {
                    // Chained: the newer recipes have been processed already.
                    let new_cid = match resolved.get(&entry.fingerprint).copied() {
                        Some(cid) if cid.as_archival().is_some() => cid,
                        // Still hot: one hop to the newest containing recipe.
                        _ => {
                            let newest = containing[&entry.fingerprint];
                            if newest == v {
                                Cid::ACTIVE
                            } else {
                                Cid::chained(newest)
                            }
                        }
                    };
                    if entry.cid != new_cid {
                        entry.cid = new_cid;
                        updated += 1;
                    }
                }
                (None, None) => {
                    // ACTIVE: if a newer recipe archived this chunk, adopt
                    // that location (depth ≥ 2 corner); else it really is
                    // still in the pool.
                    if let Some(cid) = resolved.get(&entry.fingerprint).copied() {
                        if cid.as_archival().is_some() && entry.cid != cid {
                            entry.cid = cid;
                            updated += 1;
                        }
                    }
                }
            }
        }
    }
    updated
}

/// Errors from plan resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A chained reference pointed at a version whose recipe is missing.
    MissingRecipe(VersionId),
    /// A chain step did not contain the chunk it was supposed to.
    BrokenChain {
        /// The chunk whose location could not be resolved.
        fingerprint: Fingerprint,
        /// The version whose recipe broke the chain.
        version: VersionId,
    },
    /// An `ACTIVE` entry's chunk is not in the active pool.
    NotInPool(Fingerprint),
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::MissingRecipe(v) => write!(f, "recipe for {v} missing"),
            ResolveError::BrokenChain {
                fingerprint,
                version,
            } => {
                write!(f, "chain for chunk {fingerprint} broke at {version}")
            }
            ResolveError::NotInPool(fp) => {
                write!(f, "chunk {fp} marked active but absent from the pool")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Resolves every entry of `version`'s recipe to a physical container ID:
/// archival IDs pass through, `ACTIVE` entries are located in the pool (IDs
/// offset by [`ACTIVE_ID_BASE`]), and chains are followed recipe-to-recipe
/// (§4.4's three CID cases).
///
/// # Errors
///
/// Returns [`ResolveError`] if a chain or pool lookup fails — which would
/// indicate recipe corruption, not a user error.
pub fn resolve_plan(
    recipes: &RecipeStore,
    pool: &ActivePool,
    version: VersionId,
) -> Result<Vec<(Fingerprint, u32, ContainerId)>, ResolveError> {
    let recipe = recipes
        .get(version)
        .ok_or(ResolveError::MissingRecipe(version))?;
    // Lazily built per-version lookup maps for chain following.
    let mut maps: HashMap<VersionId, HashMap<Fingerprint, Cid>> = HashMap::new();
    let mut plan = Vec::with_capacity(recipe.len());
    for entry in recipe.entries() {
        let container = resolve_one(recipes, pool, &mut maps, entry.fingerprint, entry.cid)?;
        plan.push((entry.fingerprint, entry.size, container));
    }
    Ok(plan)
}

fn resolve_one(
    recipes: &RecipeStore,
    pool: &ActivePool,
    maps: &mut HashMap<VersionId, HashMap<Fingerprint, Cid>>,
    fp: Fingerprint,
    mut cid: Cid,
) -> Result<ContainerId, ResolveError> {
    // Chains are finite: each hop moves to a strictly newer version. A
    // corrupt recipe could point backwards and close a multi-hop cycle, so
    // the invariant is enforced, not assumed.
    let mut newest_hop = 0u32;
    loop {
        if let Some(archival) = cid.as_archival() {
            return Ok(archival);
        }
        if cid.is_active() {
            let pool_cid = pool.locate(&fp).ok_or(ResolveError::NotInPool(fp))?;
            return Ok(ContainerId::new(ACTIVE_ID_BASE + pool_cid));
        }
        // Not archival, not active: the remaining state is chained.
        let Some(w) = cid.as_chained() else {
            return Err(ResolveError::BrokenChain {
                fingerprint: fp,
                version: VersionId::new(1),
            });
        };
        if w.get() <= newest_hop {
            return Err(ResolveError::BrokenChain {
                fingerprint: fp,
                version: w,
            });
        }
        newest_hop = w.get();
        if let std::collections::hash_map::Entry::Vacant(slot) = maps.entry(w) {
            let recipe = recipes.get(w).ok_or(ResolveError::MissingRecipe(w))?;
            slot.insert(
                recipe
                    .entries()
                    .iter()
                    .map(|e| (e.fingerprint, e.cid))
                    .collect(),
            );
        }
        let next = maps[&w]
            .get(&fp)
            .copied()
            .ok_or(ResolveError::BrokenChain {
                fingerprint: fp,
                version: w,
            })?;
        // Guard against self-loops from corrupt recipes.
        if next == cid {
            return Err(ResolveError::BrokenChain {
                fingerprint: fp,
                version: w,
            });
        }
        cid = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_storage::{Recipe, RecipeEntry};

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    fn recipe_with(version: u32, entries: &[(u64, i32)]) -> Recipe {
        let mut r = Recipe::new(VersionId::new(version));
        for &(n, raw) in entries {
            r.push(RecipeEntry::new(fp(n), 100, Cid::from_raw(raw)));
        }
        r
    }

    #[test]
    fn update_previous_moves_cold_and_chains_hot() {
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, 0), (2, 0), (3, 0)]));
        recipes.insert(recipe_with(2, &[(1, 0), (3, 0)]));
        let mut moved = HashMap::new();
        moved.insert(fp(2), ContainerId::new(7));
        let current: HashSet<Fingerprint> = [fp(1), fp(3)].into_iter().collect();
        let updated = update_previous_recipes(&mut recipes, VersionId::new(2), &moved, &current, 1);
        assert_eq!(updated, 3);
        let r1 = recipes.get(VersionId::new(1)).unwrap();
        assert_eq!(r1.entries()[0].cid, Cid::chained(VersionId::new(2)));
        assert_eq!(r1.entries()[1].cid, Cid::archival(ContainerId::new(7)));
        assert_eq!(r1.entries()[2].cid, Cid::chained(VersionId::new(2)));
    }

    #[test]
    fn depth_two_leaves_intermediate_chunks_active() {
        let mut recipes = RecipeStore::new();
        // Chunk 5 is in V1 but neither moved nor in V2's fingerprints (it is
        // still in the depth-2 history).
        recipes.insert(recipe_with(1, &[(5, 0)]));
        recipes.insert(recipe_with(2, &[]));
        let updated = update_previous_recipes(
            &mut recipes,
            VersionId::new(2),
            &HashMap::new(),
            &HashSet::new(),
            2,
        );
        assert_eq!(updated, 0);
        assert!(recipes.get(VersionId::new(1)).unwrap().entries()[0]
            .cid
            .is_active());
    }

    #[test]
    fn flatten_collapses_two_hop_chain() {
        let mut recipes = RecipeStore::new();
        // V1 chains to V2; V2 chains to V3; V3 has the archival location.
        recipes.insert(recipe_with(1, &[(1, -2)]));
        recipes.insert(recipe_with(2, &[(1, -3)]));
        recipes.insert(recipe_with(3, &[(1, 42)]));
        let updated = flatten_recipes(&mut recipes);
        assert_eq!(updated, 2);
        for v in 1..=3u32 {
            assert_eq!(
                recipes.get(VersionId::new(v)).unwrap().entries()[0].cid,
                Cid::archival(ContainerId::new(42)),
                "V{v}"
            );
        }
    }

    #[test]
    fn flatten_keeps_one_hop_chain_for_still_hot_chunks() {
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, -2)]));
        recipes.insert(recipe_with(2, &[(1, -3)]));
        recipes.insert(recipe_with(3, &[(1, 0)])); // newest: still active
        flatten_recipes(&mut recipes);
        // Both old recipes point one hop at V3, the newest recipe containing
        // the chunk (the paper's "-n" for active chunks); V3 stays ACTIVE so
        // a later demotion can settle it.
        assert_eq!(
            recipes.get(VersionId::new(1)).unwrap().entries()[0].cid,
            Cid::chained(VersionId::new(3))
        );
        assert_eq!(
            recipes.get(VersionId::new(2)).unwrap().entries()[0].cid,
            Cid::chained(VersionId::new(3))
        );
        assert!(recipes.get(VersionId::new(3)).unwrap().entries()[0]
            .cid
            .is_active());
    }

    #[test]
    fn flatten_is_idempotent() {
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, -2), (2, 5)]));
        recipes.insert(recipe_with(2, &[(1, 9), (3, 0)]));
        flatten_recipes(&mut recipes);
        let snapshot: Vec<Vec<i32>> = recipes
            .iter()
            .map(|r| r.entries().iter().map(|e| e.cid.raw()).collect())
            .collect();
        assert_eq!(flatten_recipes(&mut recipes), 0);
        let again: Vec<Vec<i32>> = recipes
            .iter()
            .map(|r| r.entries().iter().map(|e| e.cid.raw()).collect())
            .collect();
        assert_eq!(snapshot, again);
    }

    #[test]
    fn depth_two_multi_version_settlement() {
        // The macos scenario over four versions with depth 2:
        // chunk A in V1+V3 (skips V2), chunk B in V1 only.
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, 0), (2, 0)])); // A=1, B=2
        recipes.insert(recipe_with(2, &[]));
        // End of V2: nothing demoted yet (depth 2), A and B still in history.
        update_previous_recipes(
            &mut recipes,
            VersionId::new(2),
            &HashMap::new(),
            &HashSet::new(),
            2,
        );
        assert!(recipes.get(VersionId::new(1)).unwrap().entries()[0]
            .cid
            .is_active());

        // V3 contains A again; at its end, B (absent from V2 and V3) is
        // demoted to archival container 9.
        recipes.insert(recipe_with(3, &[(1, 0)]));
        let mut moved = HashMap::new();
        moved.insert(fp(2), ContainerId::new(9));
        let current: HashSet<Fingerprint> = [fp(1)].into_iter().collect();
        update_previous_recipes(&mut recipes, VersionId::new(3), &moved, &current, 2);

        let r1 = recipes.get(VersionId::new(1)).unwrap();
        assert_eq!(
            r1.entries()[0].cid,
            Cid::chained(VersionId::new(3)),
            "A chains to V3"
        );
        assert_eq!(
            r1.entries()[1].cid,
            Cid::archival(ContainerId::new(9)),
            "B archived"
        );

        // Resolution: A resolves through V3 to the pool; B to container 9.
        let mut pool = ActivePool::new(1024);
        let pool_cid = pool.add(fp(1), b"A");
        let plan = resolve_plan(&recipes, &pool, VersionId::new(1)).unwrap();
        assert_eq!(plan[0].2, ContainerId::new(ACTIVE_ID_BASE + pool_cid));
        assert_eq!(plan[1].2, ContainerId::new(9));
    }

    #[test]
    fn resolve_follows_chain_to_archival() {
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, -2)]));
        recipes.insert(recipe_with(2, &[(1, 17)]));
        let pool = ActivePool::new(1024);
        let plan = resolve_plan(&recipes, &pool, VersionId::new(1)).unwrap();
        assert_eq!(plan, vec![(fp(1), 100, ContainerId::new(17))]);
    }

    #[test]
    fn resolve_active_entry_via_pool() {
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, 0)]));
        let mut pool = ActivePool::new(1024);
        let pool_cid = pool.add(fp(1), b"hot");
        let plan = resolve_plan(&recipes, &pool, VersionId::new(1)).unwrap();
        assert_eq!(plan[0].2, ContainerId::new(ACTIVE_ID_BASE + pool_cid));
    }

    #[test]
    fn resolve_errors_surface() {
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, 0)]));
        let pool = ActivePool::new(1024);
        assert_eq!(
            resolve_plan(&recipes, &pool, VersionId::new(1)),
            Err(ResolveError::NotInPool(fp(1)))
        );
        assert_eq!(
            resolve_plan(&recipes, &pool, VersionId::new(9)),
            Err(ResolveError::MissingRecipe(VersionId::new(9)))
        );
        // Chain to a recipe that lacks the chunk.
        let mut recipes = RecipeStore::new();
        recipes.insert(recipe_with(1, &[(1, -2)]));
        recipes.insert(recipe_with(2, &[(7, 3)]));
        assert!(matches!(
            resolve_plan(&recipes, &pool, VersionId::new(1)),
            Err(ResolveError::BrokenChain { .. })
        ));
    }

    #[test]
    fn resolve_detects_multi_hop_cycle() {
        let mut recipes = RecipeStore::new();
        // Corrupt: V1 chains to V3, whose entry chains *backwards* to V2,
        // whose entry chains to V3 again — a cycle no single hop closes.
        recipes.insert(recipe_with(1, &[(1, -3)]));
        recipes.insert(recipe_with(2, &[(1, -3)]));
        recipes.insert(recipe_with(3, &[(1, -2)]));
        let pool = ActivePool::new(1024);
        assert!(matches!(
            resolve_plan(&recipes, &pool, VersionId::new(1)),
            Err(ResolveError::BrokenChain { .. })
        ));
    }

    #[test]
    fn resolve_detects_self_loop() {
        let mut recipes = RecipeStore::new();
        // Corrupt: V2's entry chains to itself.
        recipes.insert(recipe_with(1, &[(1, -2)]));
        recipes.insert(recipe_with(2, &[(1, -2)]));
        let pool = ActivePool::new(1024);
        assert!(matches!(
            resolve_plan(&recipes, &pool, VersionId::new(1)),
            Err(ResolveError::BrokenChain { .. })
        ));
    }
}
