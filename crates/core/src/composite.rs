//! A read-only view unifying archival and active containers for restore.

use std::sync::Arc;

use hidestore_storage::{Container, ContainerId, ContainerStore, IoStats, StorageError};

use crate::active::ActivePool;

/// Container IDs at or above this value denote *active* containers served
/// from the [`ActivePool`]; lower IDs are archival containers in the backing
/// store. `2^30` leaves both spaces ample room.
pub const ACTIVE_ID_BASE: u32 = 1 << 30;

/// A [`ContainerStore`] view over an archival store plus the active pool,
/// so the standard restore caches (FAA, ALACC, …) work unmodified on
/// HiDeStore's two-tier layout. Reads of active containers are counted like
/// any other container read — the paper's speed factor charges them equally.
///
/// Writes and removals are rejected: restore is read-only.
#[derive(Debug)]
pub struct CompositeStore<'a, S> {
    archival: &'a mut S,
    active: &'a ActivePool,
    active_reads: u64,
    active_bytes_read: u64,
}

impl<'a, S: ContainerStore> CompositeStore<'a, S> {
    /// Builds the view.
    pub fn new(archival: &'a mut S, active: &'a ActivePool) -> Self {
        CompositeStore {
            archival,
            active,
            active_reads: 0,
            active_bytes_read: 0,
        }
    }
}

impl<S: ContainerStore> ContainerStore for CompositeStore<'_, S> {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        Err(StorageError::Corrupt(format!(
            "restore view is read-only; attempted write of container {}",
            container.id()
        )))
    }

    fn read(&mut self, id: ContainerId) -> Result<Arc<Container>, StorageError> {
        if id.get() >= ACTIVE_ID_BASE {
            let snapshot = self
                .active
                .snapshot(id.get() - ACTIVE_ID_BASE)
                .ok_or(StorageError::ContainerNotFound(id))?;
            self.active_reads += 1;
            self.active_bytes_read += snapshot.used_bytes() as u64;
            Ok(snapshot)
        } else {
            self.archival.read(id)
        }
    }

    fn contains(&self, id: ContainerId) -> bool {
        if id.get() >= ACTIVE_ID_BASE {
            self.active.snapshot(id.get() - ACTIVE_ID_BASE).is_some()
        } else {
            self.archival.contains(id)
        }
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        Err(StorageError::Corrupt(format!(
            "restore view is read-only; attempted removal of container {id}"
        )))
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        Err(StorageError::Corrupt(format!(
            "restore view is read-only; attempted replace of container {}",
            container.id()
        )))
    }

    fn ids(&self) -> Vec<ContainerId> {
        let mut ids = self.archival.ids();
        ids.extend(
            self.active
                .container_ids()
                .into_iter()
                .map(|cid| ContainerId::new(ACTIVE_ID_BASE + cid)),
        );
        ids
    }

    fn stats(&self) -> IoStats {
        let mut stats = self.archival.stats();
        stats.container_reads += self.active_reads;
        stats.bytes_read += self.active_bytes_read;
        stats
    }

    fn reset_stats(&mut self) {
        self.archival.reset_stats();
        self.active_reads = 0;
        self.active_bytes_read = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_hash::Fingerprint;
    use hidestore_storage::MemoryContainerStore;

    fn fixture() -> (MemoryContainerStore, ActivePool) {
        let mut archival = MemoryContainerStore::new();
        let mut c = Container::new(ContainerId::new(1), 1024);
        c.try_add(Fingerprint::synthetic(1), b"archival chunk");
        archival.write(c).unwrap();
        let mut pool = ActivePool::new(1024);
        pool.add(Fingerprint::synthetic(2), b"active chunk");
        (archival, pool)
    }

    #[test]
    fn reads_route_by_id_space() {
        let (mut archival, pool) = fixture();
        let mut view = CompositeStore::new(&mut archival, &pool);
        let a = view.read(ContainerId::new(1)).unwrap();
        assert!(a.contains(&Fingerprint::synthetic(1)));
        let b = view.read(ContainerId::new(ACTIVE_ID_BASE + 1)).unwrap();
        assert!(b.contains(&Fingerprint::synthetic(2)));
        assert_eq!(view.stats().container_reads, 2);
    }

    #[test]
    fn missing_active_container_errors() {
        let (mut archival, pool) = fixture();
        let mut view = CompositeStore::new(&mut archival, &pool);
        assert!(view.read(ContainerId::new(ACTIVE_ID_BASE + 99)).is_err());
    }

    #[test]
    fn writes_rejected() {
        let (mut archival, pool) = fixture();
        let mut view = CompositeStore::new(&mut archival, &pool);
        let c = Container::new(ContainerId::new(7), 64);
        assert!(view.write(c).is_err());
        assert!(view.remove(ContainerId::new(1)).is_err());
    }

    #[test]
    fn ids_cover_both_spaces() {
        let (mut archival, pool) = fixture();
        let view = CompositeStore::new(&mut archival, &pool);
        let ids = view.ids();
        assert!(ids.contains(&ContainerId::new(1)));
        assert!(ids.contains(&ContainerId::new(ACTIVE_ID_BASE + 1)));
    }

    #[test]
    fn contains_checks_both() {
        let (mut archival, pool) = fixture();
        let view = CompositeStore::new(&mut archival, &pool);
        assert!(view.contains(ContainerId::new(1)));
        assert!(view.contains(ContainerId::new(ACTIVE_ID_BASE + 1)));
        assert!(!view.contains(ContainerId::new(55)));
    }
}
