//! HiDeStore configuration.

use std::path::Path;

use hidestore_chunking::ChunkerKind;
use hidestore_failpoint::{RealVfs, Vfs};
use hidestore_restore::RestoreConcurrency;

use crate::system::HiDeStoreError;

/// Name of the repository's configuration file, a plain `key=value` text
/// file in the repository root written by `init` and read on every open.
pub const CONFIG_FILE: &str = "config";

/// Which deduplication scheme a repository runs.
///
/// The scheme decides *where* duplicate detection happens relative to the
/// ingest path:
///
/// * [`DedupMode::HiDeStore`] — the paper's design: exact chunk-level dedup
///   inline against the double-hash-table fingerprint cache, with cold
///   chunks demoted into version-tagged archival containers at the end of
///   every version.
/// * [`DedupMode::RevDedup`] — the RevDedup baseline: coarse segment-level
///   dedup inline (only whole identical segments are suppressed, so the
///   newest version stays physically sequential), with the remaining
///   duplicate copies of *older* versions removed by the out-of-line
///   reverse-deduplication pass ([`crate::HiDeStore::out_of_line_pass`]).
/// * [`DedupMode::Hybrid`] — hybrid inline/out-of-line dedup: inline
///   lookups consult only the previous version's fingerprints (a bounded
///   memory budget), and the same out-of-line pass later removes whatever
///   duplicates the bounded inline index missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DedupMode {
    /// Exact inline dedup through the fingerprint cache (the paper).
    #[default]
    HiDeStore,
    /// Segment-level inline dedup + out-of-line reverse dedup (RevDedup).
    RevDedup,
    /// Bounded inline dedup + exact out-of-line dedup (hybrid).
    Hybrid,
}

impl DedupMode {
    /// Every mode, HiDeStore first.
    pub const ALL: [DedupMode; 3] = [DedupMode::HiDeStore, DedupMode::RevDedup, DedupMode::Hybrid];

    /// The config-file / CLI spelling of this mode.
    pub fn name(self) -> &'static str {
        match self {
            DedupMode::HiDeStore => "hidestore",
            DedupMode::RevDedup => "revdedup",
            DedupMode::Hybrid => "hybrid",
        }
    }

    /// Parses a config-file / CLI spelling.
    ///
    /// # Errors
    ///
    /// Returns the offending string when it names no mode.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "hidestore" => Ok(DedupMode::HiDeStore),
            "revdedup" => Ok(DedupMode::RevDedup),
            "hybrid" => Ok(DedupMode::Hybrid),
            other => Err(format!(
                "unknown scheme {other:?} (expected hidestore, revdedup, or hybrid)"
            )),
        }
    }

    /// Whether this mode stores chunks directly into version-tagged
    /// archival containers and relies on the out-of-line pass (RevDedup and
    /// hybrid) rather than the fingerprint cache + active pool.
    pub fn is_out_of_line(self) -> bool {
        !matches!(self, DedupMode::HiDeStore)
    }
}

impl std::fmt::Display for DedupMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a [`crate::HiDeStore`] instance.
#[derive(Debug, Clone, Copy)]
pub struct HiDeStoreConfig {
    /// Chunking algorithm (the paper's prototype uses TTTD, §5.1).
    pub chunker: ChunkerKind,
    /// Target average chunk size in bytes.
    pub avg_chunk_size: usize,
    /// Capacity of both active and archival containers (4 MiB in the paper).
    pub container_capacity: usize,
    /// Active containers whose utilization falls below this are merged
    /// during the end-of-version compaction (§4.2).
    pub compact_threshold: f64,
    /// How many previous versions the fingerprint cache retains. The paper
    /// uses 1; for macos-like workloads where chunks skip a version before
    /// going cold (Figure 3d) it adds "another hash table", i.e. depth 2.
    pub history_depth: usize,
    /// Size in bytes of one index-lookup I/O unit, used to express the cost
    /// of prefetching the previous recipe in the same units as the
    /// traditional schemes' index lookups (§5.2.2).
    pub lookup_unit_bytes: usize,
    /// Threads for the chunk/fingerprint front end of [`crate::HiDeStore::backup`]:
    /// `0` auto-detects from the machine, `1` runs serially, more selects
    /// the staged concurrent pipeline. The repository produced is identical
    /// at every setting.
    pub threads: usize,
    /// Bounded depth of each inter-stage queue when `threads > 1`.
    pub queue_depth: usize,
    /// Concurrency of the staged restore engine (prefetcher threads, queue
    /// depth, readahead window). Restored bytes and cache accounting are
    /// identical at every setting.
    pub restore: RestoreConcurrency,
    /// Default per-operation network timeout in whole seconds for the
    /// `hds-served` daemon and remote CLI when neither a flag nor the
    /// `HDS_NET_TIMEOUT` environment override is given. `0` disables
    /// timeouts (blocking I/O).
    pub net_timeout_secs: u64,
    /// Deduplication scheme of the repository (`init --scheme`, persisted
    /// as the `scheme=` config key; absent key = HiDeStore).
    pub scheme: DedupMode,
}

impl Default for HiDeStoreConfig {
    fn default() -> Self {
        HiDeStoreConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: 8 * 1024,
            container_capacity: 4 * 1024 * 1024,
            compact_threshold: 0.95,
            history_depth: 1,
            lookup_unit_bytes: 4096,
            threads: 1,
            queue_depth: 4,
            restore: RestoreConcurrency::serial(),
            net_timeout_secs: 30,
            scheme: DedupMode::HiDeStore,
        }
    }
}

impl HiDeStoreConfig {
    /// Scaled-down configuration for fast unit tests.
    pub fn small_for_tests() -> Self {
        HiDeStoreConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            compact_threshold: 0.5,
            history_depth: 1,
            lookup_unit_bytes: 4096,
            threads: 1,
            queue_depth: 4,
            restore: RestoreConcurrency::serial(),
            net_timeout_secs: 30,
            scheme: DedupMode::HiDeStore,
        }
    }

    /// Variant running the given deduplication scheme.
    pub fn with_scheme(mut self, scheme: DedupMode) -> Self {
        self.scheme = scheme;
        self
    }

    /// Depth-2 variant for macos-like workloads.
    pub fn with_history_depth(mut self, depth: usize) -> Self {
        self.history_depth = depth;
        self
    }

    /// Variant with a threaded backup front end (`0` = auto-detect).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Variant with the given inter-stage queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Variant with a staged restore engine of the given total thread count
    /// (`0` = auto-detect, `1` = serial).
    pub fn with_restore_threads(mut self, threads: usize) -> Self {
        self.restore.threads = threads;
        self
    }

    /// Variant with the given restore concurrency settings.
    pub fn with_restore(mut self, restore: RestoreConcurrency) -> Self {
        self.restore = restore;
        self
    }

    /// Variant with the given default network timeout in seconds (`0`
    /// disables timeouts).
    pub fn with_net_timeout(mut self, secs: u64) -> Self {
        self.net_timeout_secs = secs;
        self
    }

    /// The concrete backup thread count after resolving `0` = auto.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            hidestore_hash::default_hash_threads()
        } else {
            self.threads
        }
    }

    /// Reads the repository's `config` file at `dir`, returning the stored
    /// configuration with the `HDS_THREADS` environment override applied
    /// (CI and benchmarks sweep thread counts without rewriting the file).
    /// Unknown keys are ignored for forward compatibility.
    ///
    /// # Errors
    ///
    /// [`HiDeStoreError::Config`] when the file is missing (not a
    /// repository), unreadable, or a known key has an unparsable value.
    pub fn load_from(dir: impl AsRef<Path>) -> Result<Self, HiDeStoreError> {
        Self::load_from_with(dir, &RealVfs)
    }

    /// [`HiDeStoreConfig::load_from`] against an explicit [`Vfs`], so crash
    /// tests can exercise config reads through the fault-injecting shim.
    ///
    /// # Errors
    ///
    /// As [`HiDeStoreConfig::load_from`].
    pub fn load_from_with<V: Vfs>(dir: impl AsRef<Path>, vfs: &V) -> Result<Self, HiDeStoreError> {
        let dir = dir.as_ref();
        let path = dir.join(CONFIG_FILE);
        if !vfs.exists(&path) {
            return Err(HiDeStoreError::Config(format!(
                "{} is not a hidestore repository (run `init` first)",
                dir.display()
            )));
        }
        let bytes = vfs
            .read(&path)
            .map_err(|e| HiDeStoreError::Config(format!("cannot read {}: {e}", path.display())))?;
        let text = String::from_utf8(bytes).map_err(|_| {
            HiDeStoreError::Config(format!("{} is not valid UTF-8", path.display()))
        })?;
        let mut config = HiDeStoreConfig::default();
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            let parsed = |what: &str| {
                value.parse::<usize>().map_err(|_| {
                    HiDeStoreError::Config(format!("config key {what} has invalid value {value:?}"))
                })
            };
            match key {
                "chunk" => config.avg_chunk_size = parsed(key)?,
                "container" => config.container_capacity = parsed(key)?,
                "depth" => config.history_depth = parsed(key)?,
                "threads" => config.threads = parsed(key)?,
                "restore_threads" => config.restore.threads = parsed(key)?,
                "restore_queue" => config.restore.queue_depth = parsed(key)?,
                "restore_readahead" => config.restore.readahead_containers = parsed(key)?,
                "net_timeout" => config.net_timeout_secs = parsed(key)? as u64,
                "scheme" => {
                    config.scheme = DedupMode::parse(value).map_err(HiDeStoreError::Config)?;
                }
                _ => {}
            }
        }
        if let Ok(threads) = std::env::var("HDS_THREADS") {
            let threads = threads.trim().parse::<usize>().map_err(|_| {
                HiDeStoreError::Config(format!("HDS_THREADS has invalid value {threads:?}"))
            })?;
            config.threads = threads;
            config.restore.threads = threads;
        }
        Ok(config)
    }

    /// Writes this configuration as `dir/config`, the file
    /// [`HiDeStoreConfig::load_from`] reads.
    ///
    /// # Errors
    ///
    /// [`HiDeStoreError::Config`] when the file cannot be written.
    pub fn save_to(&self, dir: impl AsRef<Path>) -> Result<(), HiDeStoreError> {
        self.save_to_with(dir, &RealVfs)
    }

    /// [`HiDeStoreConfig::save_to`] against an explicit [`Vfs`], so crash
    /// tests can exercise config writes through the fault-injecting shim.
    ///
    /// # Errors
    ///
    /// As [`HiDeStoreConfig::save_to`].
    pub fn save_to_with<V: Vfs>(
        &self,
        dir: impl AsRef<Path>,
        vfs: &V,
    ) -> Result<(), HiDeStoreError> {
        let path = dir.as_ref().join(CONFIG_FILE);
        let text = format!(
            "chunk={}\ncontainer={}\ndepth={}\nthreads={}\nrestore_threads={}\n\
             restore_queue={}\nrestore_readahead={}\nnet_timeout={}\nscheme={}\n",
            self.avg_chunk_size,
            self.container_capacity,
            self.history_depth,
            self.threads,
            self.restore.threads,
            self.restore.queue_depth,
            self.restore.readahead_containers,
            self.net_timeout_secs,
            self.scheme,
        );
        vfs.write(&path, text.as_bytes())
            .map_err(|e| HiDeStoreError::Config(format!("cannot write {}: {e}", path.display())))
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if a field is out of range (zero sizes, depth of 0, threshold
    /// outside `(0, 1]`, or a container smaller than the maximum chunk).
    pub fn validate(&self) {
        assert!(self.avg_chunk_size >= 64, "average chunk size too small");
        assert!(self.history_depth >= 1, "history depth must be at least 1");
        assert!(
            self.compact_threshold > 0.0 && self.compact_threshold <= 1.0,
            "compaction threshold must be in (0, 1]"
        );
        assert!(self.lookup_unit_bytes > 0, "lookup unit must be non-zero");
        assert!(self.queue_depth >= 1, "queue depth must be at least 1");
        self.restore.validate();
        let max_chunk = self.chunker.build(self.avg_chunk_size).max_size();
        assert!(
            self.container_capacity >= max_chunk,
            "container capacity {} cannot hold a maximum-size chunk ({max_chunk})",
            self.container_capacity
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = HiDeStoreConfig::default();
        assert_eq!(c.container_capacity, 4 * 1024 * 1024);
        assert_eq!(c.history_depth, 1);
        c.validate();
    }

    #[test]
    fn depth_2_for_macos() {
        let c = HiDeStoreConfig::small_for_tests().with_history_depth(2);
        assert_eq!(c.history_depth, 2);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "history depth")]
    fn zero_depth_rejected() {
        HiDeStoreConfig::small_for_tests()
            .with_history_depth(0)
            .validate();
    }

    #[test]
    fn threads_resolve() {
        let c = HiDeStoreConfig::small_for_tests();
        assert_eq!(c.effective_threads(), 1);
        assert_eq!(c.with_threads(8).effective_threads(), 8);
        assert_eq!(
            c.with_threads(0).effective_threads(),
            hidestore_hash::default_hash_threads()
        );
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_rejected() {
        HiDeStoreConfig::small_for_tests()
            .with_queue_depth(0)
            .validate();
    }

    #[test]
    fn net_timeout_round_trips_through_config_file() {
        let dir = std::env::temp_dir().join(format!(
            "hidestore-config-nettimeout-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let c = HiDeStoreConfig::small_for_tests().with_net_timeout(7);
        c.save_to(&dir).unwrap();
        let loaded = HiDeStoreConfig::load_from(&dir).unwrap();
        assert_eq!(loaded.net_timeout_secs, 7);
        // A pre-v2 config file without the key falls back to the default.
        std::fs::write(dir.join(CONFIG_FILE), "chunk=1024\ncontainer=32768\n").unwrap();
        let legacy = HiDeStoreConfig::load_from(&dir).unwrap();
        assert_eq!(legacy.net_timeout_secs, 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scheme_round_trips_through_config_file() {
        let dir =
            std::env::temp_dir().join(format!("hidestore-config-scheme-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for mode in DedupMode::ALL {
            let c = HiDeStoreConfig::small_for_tests().with_scheme(mode);
            c.save_to(&dir).unwrap();
            let loaded = HiDeStoreConfig::load_from(&dir).unwrap();
            assert_eq!(loaded.scheme, mode);
            assert_eq!(DedupMode::parse(mode.name()), Ok(mode));
        }
        // A pre-scheme config file defaults to HiDeStore.
        std::fs::write(dir.join(CONFIG_FILE), "chunk=1024\ncontainer=32768\n").unwrap();
        let legacy = HiDeStoreConfig::load_from(&dir).unwrap();
        assert_eq!(legacy.scheme, DedupMode::HiDeStore);
        // A bad spelling is a config error, not a silent default.
        std::fs::write(dir.join(CONFIG_FILE), "scheme=rev-dedup\n").unwrap();
        assert!(HiDeStoreConfig::load_from(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_concurrency_defaults_serial_and_validates() {
        let c = HiDeStoreConfig::small_for_tests();
        assert_eq!(c.restore, RestoreConcurrency::serial());
        c.with_restore_threads(8).validate();
        c.with_restore(RestoreConcurrency::threads(0)).validate();
    }

    #[test]
    #[should_panic(expected = "restore queue depth")]
    fn invalid_restore_concurrency_rejected() {
        HiDeStoreConfig::small_for_tests()
            .with_restore(RestoreConcurrency::serial().with_queue_depth(0))
            .validate();
    }
}
