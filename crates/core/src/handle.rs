//! [`RepositoryHandle`] — the open/save lifecycle owner for long-lived
//! processes.
//!
//! The CLI opens a repository, runs one operation, saves, and exits; the
//! `hds-served` daemon instead keeps a repository open for hours while many
//! connections operate on it concurrently. The handle centralizes the rules
//! that make that safe:
//!
//! * **One writer, many readers.** Mutations (`backup`, `prune`, `flatten`,
//!   …) run under an exclusive lock and are immediately persisted with the
//!   atomic commit journal from [`crate::HiDeStore::save_repository`].
//!   Read-only operations share a read lock, so restores and listings
//!   proceed concurrently with each other and never observe a half-applied
//!   mutation.
//! * **Rollback on failure.** If a mutation — or its save — fails, the
//!   on-disk repository is untouched (the journal guarantees the save is
//!   all-or-nothing), but the in-memory instance may hold the failed
//!   mutation. The handle discards it by reopening from disk, restoring
//!   memory/disk agreement; [`RepositoryHandle::rollbacks`] counts how
//!   often that happened.
//! * **Snapshot reads.** Operations that need `&mut` access for I/O
//!   accounting (restore, scrub) run against a *fresh* instance opened from
//!   disk under the read lock. Because every mutation saves before
//!   releasing the writer lock, a snapshot always sees a committed state,
//!   and multiple snapshot readers stream containers from the filesystem
//!   in parallel without contending on the writer's instance.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use hidestore_failpoint::{RealVfs, Vfs};
use hidestore_storage::FileContainerStore;

use crate::config::HiDeStoreConfig;
use crate::system::{HiDeStore, HiDeStoreError};

/// A thread-safe, long-lived handle to an on-disk repository. See the
/// module docs for the locking and rollback rules.
///
/// Generic over the [`Vfs`] so fault-injection tests can drive the
/// rollback-reopen path (and prove the poisoned state) through
/// [`hidestore_failpoint::FaultVfs`]; production callers use the
/// [`RealVfs`] default.
pub struct RepositoryHandle<V: Vfs = RealVfs> {
    dir: PathBuf,
    vfs: V,
    /// `None` only after a rollback reopen itself failed — the handle is
    /// then poisoned and every operation reports it, because neither the
    /// in-memory state nor a fresh open can be trusted.
    state: RwLock<Option<HiDeStore<FileContainerStore<V>>>>,
    rollbacks: AtomicU64,
}

impl RepositoryHandle<RealVfs> {
    /// Opens the repository at `dir`, reading its `config` file (with the
    /// `HDS_THREADS` override applied) and running journal recovery.
    ///
    /// # Errors
    ///
    /// [`HiDeStoreError::Config`] for a missing/invalid config file, or the
    /// errors of [`HiDeStore::open_repository`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, HiDeStoreError> {
        Self::open_with(dir, RealVfs)
    }
}

impl<V: Vfs> RepositoryHandle<V> {
    /// [`RepositoryHandle::open`] through an explicit [`Vfs`] — the
    /// fault-injection entry point. Every filesystem operation of the
    /// handle's lifecycle (open, save, rollback reopen, snapshots) goes
    /// through `vfs`.
    ///
    /// # Errors
    ///
    /// As [`RepositoryHandle::open`].
    pub fn open_with(dir: impl AsRef<Path>, vfs: V) -> Result<Self, HiDeStoreError> {
        let dir = dir.as_ref().to_path_buf();
        let config = HiDeStoreConfig::load_from_with(&dir, &vfs)?;
        let (system, _report) = HiDeStore::open_repository_with(config, &dir, vfs.clone())?;
        Ok(RepositoryHandle {
            dir,
            vfs,
            state: RwLock::new(Some(system)),
            rollbacks: AtomicU64::new(0),
        })
    }

    /// The repository directory this handle serves.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// How many failed mutations were rolled back by reopening from disk.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    fn read_guard(&self) -> RwLockReadGuard<'_, Option<HiDeStore<FileContainerStore<V>>>> {
        // The Option inside the lock carries the poison state explicitly, so
        // a lock poisoned by a panicking reader is safe to re-enter.
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_guard(&self) -> RwLockWriteGuard<'_, Option<HiDeStore<FileContainerStore<V>>>> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Runs a read-only closure against the shared in-memory instance under
    /// the read lock. Use for operations that take `&HiDeStore` (listings,
    /// statistics); they run concurrently with each other.
    ///
    /// # Errors
    ///
    /// [`HiDeStoreError::Poisoned`] if the handle is poisoned.
    pub fn read<R>(
        &self,
        f: impl FnOnce(&HiDeStore<FileContainerStore<V>>) -> R,
    ) -> Result<R, HiDeStoreError> {
        let guard = self.read_guard();
        match guard.as_ref() {
            Some(system) => Ok(f(system)),
            None => Err(HiDeStoreError::Poisoned),
        }
    }

    /// Opens a fresh snapshot of the committed on-disk state under the read
    /// lock and runs `f` against it. Use for read-path operations that need
    /// `&mut` access (restore, scrub): each caller gets its own instance,
    /// so snapshot readers proceed fully in parallel while mutations are
    /// held off by the read lock.
    ///
    /// # Errors
    ///
    /// [`HiDeStoreError::Poisoned`] if the handle is poisoned, the errors
    /// of [`HiDeStore::open_repository`], or `f`'s own.
    pub fn read_snapshot<R>(
        &self,
        f: impl FnOnce(&mut HiDeStore<FileContainerStore<V>>) -> Result<R, HiDeStoreError>,
    ) -> Result<R, HiDeStoreError> {
        let guard = self.read_guard();
        let config = match guard.as_ref() {
            Some(system) => *system.config(),
            None => return Err(HiDeStoreError::Poisoned),
        };
        let (mut snapshot, _report) =
            HiDeStore::open_repository_with(config, &self.dir, self.vfs.clone())?;
        f(&mut snapshot)
    }

    /// Runs a mutating closure under the exclusive lock and persists the
    /// result with [`HiDeStore::save_repository`]. If the closure or the
    /// save fails, the in-memory instance is rolled back by reopening the
    /// (journal-guaranteed intact) on-disk state, and the original error is
    /// returned.
    ///
    /// # Errors
    ///
    /// The closure's error or the save's, with the in-memory state rolled
    /// back either way. If even the rollback reopen fails, the handle is
    /// poisoned and subsequent operations fail fast with
    /// [`HiDeStoreError::Poisoned`].
    pub fn write<R>(
        &self,
        f: impl FnOnce(&mut HiDeStore<FileContainerStore<V>>) -> Result<R, HiDeStoreError>,
    ) -> Result<R, HiDeStoreError> {
        let mut guard = self.write_guard();
        let Some(system) = guard.as_mut() else {
            return Err(HiDeStoreError::Poisoned);
        };
        let result = f(system).and_then(|r| {
            system.save_repository(&self.dir)?;
            Ok(r)
        });
        if let Err(e) = result {
            // The mutation (or its save) failed. Disk still holds the last
            // committed state; discard the dirty in-memory instance.
            self.rollbacks.fetch_add(1, Ordering::Relaxed);
            let config = *system.config();
            match HiDeStore::open_repository_with(config, &self.dir, self.vfs.clone()) {
                Ok((fresh, _report)) => *guard = Some(fresh),
                Err(_) => *guard = None,
            }
            return Err(e);
        }
        result
    }

    /// [`RepositoryHandle::write`] with an admission check that runs under
    /// the same exclusive lock *before* the mutation. A failing `check`
    /// refuses the mutation without touching anything: no rollback, no
    /// reopen, no [`RepositoryHandle::rollbacks`] bump — the in-memory
    /// instance is exactly as committed. Quota enforcement uses this so a
    /// refused backup is a cheap read, not a rollback, and so the check
    /// and the mutation are atomic against concurrent writers.
    ///
    /// # Errors
    ///
    /// `check`'s error (nothing mutated), or as
    /// [`RepositoryHandle::write`] once the mutation begins.
    pub fn write_checked<R>(
        &self,
        check: impl FnOnce(&HiDeStore<FileContainerStore<V>>) -> Result<(), HiDeStoreError>,
        f: impl FnOnce(&mut HiDeStore<FileContainerStore<V>>) -> Result<R, HiDeStoreError>,
    ) -> Result<R, HiDeStoreError> {
        let mut guard = self.write_guard();
        let Some(system) = guard.as_mut() else {
            return Err(HiDeStoreError::Poisoned);
        };
        check(system)?;
        let result = f(system).and_then(|r| {
            system.save_repository(&self.dir)?;
            Ok(r)
        });
        if let Err(e) = result {
            self.rollbacks.fetch_add(1, Ordering::Relaxed);
            let config = *system.config();
            match HiDeStore::open_repository_with(config, &self.dir, self.vfs.clone()) {
                Ok((fresh, _report)) => *guard = Some(fresh),
                Err(_) => *guard = None,
            }
            return Err(e);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_failpoint::{FaultKind, FaultVfs};
    use hidestore_restore::{Faa, RestoreConcurrency};
    use hidestore_storage::VersionId;

    fn temp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-handle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn init_repo(dir: &Path) {
        let config = HiDeStoreConfig::small_for_tests();
        config.save_to(dir).unwrap();
        let mut system = HiDeStore::open_repository(config, dir).unwrap();
        system.save_repository(dir).unwrap();
    }

    #[test]
    fn open_requires_config() {
        let dir = temp("noconfig");
        match RepositoryHandle::open(&dir).err() {
            Some(HiDeStoreError::Config(msg)) => assert!(msg.contains("not a hidestore")),
            other => panic!("expected Config error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_persists_and_reads_see_it() {
        let dir = temp("write");
        init_repo(&dir);
        let handle = RepositoryHandle::open(&dir).unwrap();
        let stats = handle.write(|s| s.backup(&vec![42u8; 50_000])).unwrap();
        assert_eq!(stats.version.get(), 1);
        let versions = handle.read(|s| s.versions()).unwrap();
        assert_eq!(versions, vec![VersionId::new(1)]);
        // A snapshot sees the committed state and can restore from it.
        let bytes = handle
            .read_snapshot(|s| {
                let mut out = Vec::new();
                s.restore_with(
                    VersionId::new(1),
                    &mut Faa::new(1 << 20),
                    &mut out,
                    &RestoreConcurrency::serial(),
                )?;
                Ok(out)
            })
            .unwrap();
        assert_eq!(bytes, vec![42u8; 50_000]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_mutation_rolls_back_memory() {
        let dir = temp("rollback");
        init_repo(&dir);
        let handle = RepositoryHandle::open(&dir).unwrap();
        handle.write(|s| s.backup(&vec![1u8; 20_000])).unwrap();
        // A mutation that backs up and then errors: the version must not
        // survive in memory or on disk.
        let err = handle.write(|s| {
            s.backup(&vec![2u8; 20_000])?;
            Err::<(), _>(HiDeStoreError::UnknownVersion(VersionId::new(99)))
        });
        assert!(matches!(err, Err(HiDeStoreError::UnknownVersion(_))));
        assert_eq!(handle.rollbacks(), 1);
        let versions = handle.read(|s| s.versions()).unwrap();
        assert_eq!(versions, vec![VersionId::new(1)], "rolled back in memory");
        // And the next mutation gets the expected version number.
        let stats = handle.write(|s| s.backup(&vec![3u8; 20_000])).unwrap();
        assert_eq!(stats.version.get(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A fault that makes the mutation's save fail AND (crash semantics:
    /// every vfs op after the armed site fails too) makes the rollback
    /// reopen fail must poison the handle: every subsequent operation
    /// fast-fails with the typed [`HiDeStoreError::Poisoned`], never a
    /// half-trusted instance.
    #[test]
    fn failed_rollback_poisons_the_handle_with_typed_error() {
        let dir = temp("poison");
        init_repo(&dir);
        // Counting run: how many vfs ops does the open itself take? The
        // armed run fails the first op after that, i.e. the first I/O of
        // the mutation/save.
        let counting = FaultVfs::counting();
        let probe = RepositoryHandle::open_with(&dir, counting.clone()).unwrap();
        let open_ops = counting.ops();
        drop(probe);

        let vfs = FaultVfs::armed(open_ops, FaultKind::Error);
        let handle = RepositoryHandle::open_with(&dir, vfs.clone()).unwrap();
        let err = handle.write(|s| s.backup(&vec![5u8; 40_000]));
        assert!(err.is_err(), "the armed fault must fail the mutation");
        assert!(vfs.crashed(), "the armed site must have fired");
        assert_eq!(handle.rollbacks(), 1);
        // The rollback reopen also failed (crashed vfs), so the handle is
        // poisoned: reads, snapshots, and writes all fast-fail typed.
        assert!(matches!(
            handle.read(|s| s.versions()),
            Err(HiDeStoreError::Poisoned)
        ));
        assert!(matches!(
            handle.read_snapshot(|_s| Ok(())),
            Err(HiDeStoreError::Poisoned)
        ));
        assert!(matches!(
            handle.write(|s| s.backup(b"more")),
            Err(HiDeStoreError::Poisoned)
        ));
        let msg = HiDeStoreError::Poisoned.to_string();
        assert!(msg.contains("poisoned"), "display names the state: {msg}");
        // The repository on disk is still intact: a fresh handle over the
        // real filesystem opens and serves reads.
        let fresh = RepositoryHandle::open(&dir).unwrap();
        assert_eq!(fresh.read(|s| s.versions()).unwrap(), vec![]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_checked_refuses_without_rollback() {
        let dir = temp("checked");
        init_repo(&dir);
        let handle = RepositoryHandle::open(&dir).unwrap();
        handle.write(|s| s.backup(&vec![1u8; 10_000])).unwrap();
        // A failing check refuses before anything mutates: no new version,
        // no rollback, and the error passes through verbatim.
        let err = handle.write_checked(
            |s| {
                Err(HiDeStoreError::QuotaExceeded {
                    what: "versions",
                    used: s.versions().len() as u64,
                    limit: 1,
                })
            },
            |s| s.backup(&vec![2u8; 10_000]),
        );
        assert!(matches!(
            err,
            Err(HiDeStoreError::QuotaExceeded {
                what: "versions",
                used: 1,
                limit: 1
            })
        ));
        assert_eq!(handle.rollbacks(), 0, "a refused check is not a rollback");
        assert_eq!(handle.read(|s| s.versions()).unwrap().len(), 1);
        // A passing check lets the mutation commit normally.
        let stats = handle
            .write_checked(|_| Ok(()), |s| s.backup(&vec![3u8; 10_000]))
            .unwrap();
        assert_eq!(stats.version.get(), 2);
        // And a failing mutation after a passing check still rolls back.
        let err = handle.write_checked(
            |_| Ok(()),
            |s| {
                s.backup(&vec![4u8; 10_000])?;
                Err::<(), _>(HiDeStoreError::UnknownVersion(VersionId::new(77)))
            },
        );
        assert!(matches!(err, Err(HiDeStoreError::UnknownVersion(_))));
        assert_eq!(handle.rollbacks(), 1);
        assert_eq!(handle.read(|s| s.versions()).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let dir = temp("concurrent");
        init_repo(&dir);
        let handle = RepositoryHandle::open(&dir).unwrap();
        handle.write(|s| s.backup(&vec![9u8; 30_000])).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        let out = handle
                            .read_snapshot(|s| {
                                let mut out = Vec::new();
                                s.restore_with(
                                    VersionId::new(1),
                                    &mut Faa::new(1 << 20),
                                    &mut out,
                                    &RestoreConcurrency::serial(),
                                )?;
                                Ok(out)
                            })
                            .unwrap();
                        assert_eq!(out.len(), 30_000);
                    }
                });
            }
            scope.spawn(|| {
                for i in 0..5u8 {
                    handle
                        .write(|s| s.backup(&vec![i; 10_000 + i as usize]))
                        .unwrap();
                }
            });
        });
        let versions = handle.read(|s| s.versions()).unwrap();
        assert_eq!(versions.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
