//! The atomic multi-file commit journal behind `save_repository`.
//!
//! A repository save must replace several files (recipes, active-pool
//! snapshots, `hidestore.meta`) and delete others (expired recipes,
//! deferred container removals) as one unit: a crash between any two of
//! those writes would otherwise leave a torn repository. The protocol here
//! is redo logging with single-file atomic renames as the publish
//! primitive:
//!
//! 1. every new file is written to `repo/staging/<relative path>` and
//!    fsynced (content *and* directories);
//! 2. a checksummed **commit record** (`staging/COMMIT`) naming every
//!    publish and removal is written and fsynced — this is the commit
//!    point;
//! 3. the record is applied: removals are unlinked, staged files are
//!    renamed over their targets, target directories are fsynced, and the
//!    staging tree (COMMIT first) is retired.
//!
//! Recovery on open inspects `staging/`: a valid commit record is **rolled
//! forward** (step 3 is idempotent — replayed removals tolerate missing
//! files, replayed publishes skip entries whose staged file is already
//! renamed away), anything else is **rolled back** by discarding the
//! staging tree, deleting the (invalid) commit record first so a crash
//! mid-rollback can never be misread as a committable transaction. Reopen
//! therefore always observes either the pre-save or the post-save state,
//! never a mix.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use hidestore_failpoint::Vfs;
use hidestore_hash::crc32;
use hidestore_storage::StorageError;

/// Directory under the repository root holding the in-flight transaction.
pub(crate) const STAGING_DIR: &str = "staging";

/// The commit-record file name inside the staging directory.
pub(crate) const COMMIT_FILE: &str = "COMMIT";

const JOURNAL_MAGIC: &[u8; 4] = b"HDSJ";

/// What journal recovery found (and did) when the repository was opened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecovery {
    /// No interrupted transaction was present.
    Clean,
    /// A committed transaction was found and its publish was completed.
    RolledForward,
    /// An uncommitted transaction was found and discarded.
    RolledBack,
}

/// One file to publish from staging into the repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PublishEntry {
    /// Path relative to the repository root (and to the staging root).
    pub rel: String,
    /// Staged payload length, recorded for fsck and post-mortem debugging.
    pub len: u64,
    /// CRC-32 of the staged payload, same purpose.
    pub crc: u32,
}

/// The commit record: the full intent of one repository-save transaction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct CommitRecord {
    /// Files to rename from staging into the repository.
    pub publish: Vec<PublishEntry>,
    /// Repository-relative paths to unlink (stale recipes, expired
    /// containers whose removal was deferred to this commit).
    pub remove: Vec<String>,
}

impl CommitRecord {
    /// Serializes: magic, entry counts, entries, and a trailing CRC-32 over
    /// everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(JOURNAL_MAGIC);
        out.extend_from_slice(&(self.publish.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.remove.len() as u32).to_le_bytes());
        for entry in &self.publish {
            encode_path(&mut out, &entry.rel);
            out.extend_from_slice(&entry.len.to_le_bytes());
            out.extend_from_slice(&entry.crc.to_le_bytes());
        }
        for rel in &self.remove {
            encode_path(&mut out, rel);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses [`CommitRecord::encode`] output. `None` means the record is
    /// torn or corrupt — the transaction never committed and must be rolled
    /// back.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 || &bytes[..4] != JOURNAL_MAGIC {
            return None;
        }
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
        if crc32(body) != stored {
            return None;
        }
        let mut at = 4usize;
        let publish_count = read_u32(body, &mut at)? as usize;
        let remove_count = read_u32(body, &mut at)? as usize;
        let mut publish = Vec::with_capacity(publish_count.min(1 << 16));
        for _ in 0..publish_count {
            let rel = read_path(body, &mut at)?;
            let len = read_u64(body, &mut at)?;
            let crc = read_u32(body, &mut at)?;
            publish.push(PublishEntry { rel, len, crc });
        }
        let mut remove = Vec::with_capacity(remove_count.min(1 << 16));
        for _ in 0..remove_count {
            remove.push(read_path(body, &mut at)?);
        }
        (at == body.len()).then_some(CommitRecord { publish, remove })
    }
}

fn encode_path(out: &mut Vec<u8>, rel: &str) {
    out.extend_from_slice(&(rel.len() as u16).to_le_bytes());
    out.extend_from_slice(rel.as_bytes());
}

fn read_u32(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let raw = bytes.get(*at..*at + 4)?;
    *at += 4;
    Some(u32::from_le_bytes(raw.try_into().ok()?))
}

fn read_u64(bytes: &[u8], at: &mut usize) -> Option<u64> {
    let raw = bytes.get(*at..*at + 8)?;
    *at += 8;
    Some(u64::from_le_bytes(raw.try_into().ok()?))
}

fn read_path(bytes: &[u8], at: &mut usize) -> Option<String> {
    let raw = bytes.get(*at..*at + 2)?;
    let len = u16::from_le_bytes(raw.try_into().ok()?) as usize;
    *at += 2;
    let raw = bytes.get(*at..*at + len)?;
    *at += len;
    let rel = std::str::from_utf8(raw).ok()?;
    // Relative, forward, no traversal: the record must not name paths
    // outside the repository.
    let safe = !rel.is_empty()
        && !rel.starts_with('/')
        && rel
            .split('/')
            .all(|seg| !seg.is_empty() && seg != "." && seg != "..");
    safe.then(|| rel.to_owned())
}

/// The staging directory of the repository at `repo`.
pub(crate) fn staging_dir(repo: &Path) -> PathBuf {
    repo.join(STAGING_DIR)
}

/// The commit-record path of the repository at `repo`.
pub(crate) fn commit_path(repo: &Path) -> PathBuf {
    staging_dir(repo).join(COMMIT_FILE)
}

fn ignore_not_found(result: io::Result<()>) -> io::Result<()> {
    match result {
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        other => other,
    }
}

/// Inspects and resolves any interrupted transaction at `repo`. Called
/// before anything else reads the repository.
///
/// # Errors
///
/// Fails on filesystem errors, or if a committed record names a file that
/// is neither staged nor published (impossible under the crash model;
/// indicates external tampering).
pub(crate) fn recover<V: Vfs>(repo: &Path, vfs: &V) -> Result<JournalRecovery, StorageError> {
    let staging = staging_dir(repo);
    if !vfs.exists(&staging) {
        return Ok(JournalRecovery::Clean);
    }
    let commit = commit_path(repo);
    if vfs.exists(&commit) {
        let bytes = vfs.read(&commit)?;
        if let Some(record) = CommitRecord::decode(&bytes) {
            apply(repo, vfs, &record)?;
            return Ok(JournalRecovery::RolledForward);
        }
    }
    roll_back(repo, vfs)?;
    Ok(JournalRecovery::RolledBack)
}

/// Applies a durable commit record: removals, publishes, directory fsyncs,
/// then retirement of the staging tree. Idempotent — safe to replay after a
/// crash at any point inside it.
pub(crate) fn apply<V: Vfs>(
    repo: &Path,
    vfs: &V,
    record: &CommitRecord,
) -> Result<(), StorageError> {
    let staging = staging_dir(repo);
    for rel in &record.remove {
        ignore_not_found(vfs.remove_file(&repo.join(rel)))?;
    }
    for entry in &record.publish {
        let staged = staging.join(&entry.rel);
        let target = repo.join(&entry.rel);
        if vfs.exists(&staged) {
            if let Some(parent) = target.parent() {
                vfs.create_dir_all(parent)?;
            }
            vfs.rename(&staged, &target)?;
        } else if !vfs.exists(&target) {
            return Err(StorageError::Corrupt(format!(
                "commit record names '{}' but it is neither staged nor published",
                entry.rel
            )));
        }
    }
    // One fsync per touched directory makes every rename and unlink durable
    // before the journal is retired.
    let mut dirs: BTreeSet<PathBuf> = BTreeSet::new();
    dirs.insert(repo.to_path_buf());
    for rel in record
        .publish
        .iter()
        .map(|e| e.rel.as_str())
        .chain(record.remove.iter().map(String::as_str))
    {
        if let Some(parent) = repo.join(rel).parent() {
            dirs.insert(parent.to_path_buf());
        }
    }
    for d in &dirs {
        if vfs.exists(d) {
            vfs.sync_dir(d)?;
        }
    }
    retire_staging(repo, vfs)
}

/// Discards an uncommitted transaction. The commit record (if any — it was
/// invalid) goes first, so a crash mid-rollback re-enters rollback on the
/// next open rather than a partial roll-forward.
fn roll_back<V: Vfs>(repo: &Path, vfs: &V) -> Result<(), StorageError> {
    retire_staging(repo, vfs)
}

fn retire_staging<V: Vfs>(repo: &Path, vfs: &V) -> Result<(), StorageError> {
    let staging = staging_dir(repo);
    ignore_not_found(vfs.remove_file(&commit_path(repo)))?;
    vfs.sync_dir(&staging)?;
    vfs.remove_dir_all(&staging)?;
    vfs.sync_dir(repo)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CommitRecord {
        CommitRecord {
            publish: vec![
                PublishEntry {
                    rel: "recipes/r1.rcp".into(),
                    len: 40,
                    crc: 0xDEAD_BEEF,
                },
                PublishEntry {
                    rel: "hidestore.meta".into(),
                    len: 20,
                    crc: 7,
                },
            ],
            remove: vec!["archival/c3.ctr".into(), "recipes/r9.rcp".into()],
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let r = record();
        assert_eq!(CommitRecord::decode(&r.encode()), Some(r));
        let empty = CommitRecord::default();
        assert_eq!(CommitRecord::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn torn_record_rejected_at_every_length() {
        let enc = record().encode();
        for cut in 0..enc.len() {
            assert_eq!(
                CommitRecord::decode(&enc[..cut]),
                None,
                "torn at {cut} must not decode"
            );
        }
    }

    #[test]
    fn flipped_bit_rejected() {
        let mut enc = record().encode();
        for at in [0, 5, enc.len() / 2, enc.len() - 1] {
            enc[at] ^= 0x10;
            assert_eq!(CommitRecord::decode(&enc), None, "flip at {at}");
            enc[at] ^= 0x10;
        }
        assert!(
            CommitRecord::decode(&enc).is_some(),
            "restored record decodes"
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = record().encode();
        enc.push(0);
        assert_eq!(CommitRecord::decode(&enc), None);
    }

    #[test]
    fn unsafe_paths_rejected() {
        for rel in ["../evil", "/etc/passwd", "a//b", "", "a/./b"] {
            let r = CommitRecord {
                publish: vec![],
                remove: vec![rel.into()],
            };
            assert_eq!(
                CommitRecord::decode(&r.encode()),
                None,
                "path {rel:?} must be rejected"
            );
        }
    }
}
