#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! **HiDeStore** — the paper's contribution: a backup system that enhances
//! the *physical locality* of new backup versions during deduplication, so
//! restores of recent versions touch few containers, without rewriting
//! duplicate chunks (no deduplication-ratio loss) and without a full
//! fingerprint index (no index-lookup bottleneck).
//!
//! The design follows §4 of the paper:
//!
//! * **Fingerprint cache with double hash tables** (§4.1, [`FingerprintCache`])
//!   — `T1` holds the previous version's chunks, `T2` collects the current
//!   version's. Chunks that hit `T1` migrate to `T2`; whatever remains in
//!   `T1` at the end of the version is *cold* — observed (Figure 3) to have
//!   negligible probability of ever recurring.
//! * **Chunk filter** (§4.2, [`ActivePool`]) — unique chunks are staged in
//!   *active containers*; at each version end the cold chunks are demoted to
//!   sealed *archival containers* and the sparse active containers are
//!   merged/compacted, keeping the hot set physically dense.
//! * **Recipe chain** (§4.3, [`chain`]) — recipes are written with CID 0
//!   (active); only the *previous* recipe is updated per backup (cold →
//!   archival CID, hot → negative CID pointing at the next recipe), and
//!   Algorithm 1 ([`chain::flatten_recipes`]) periodically collapses the
//!   chain offline.
//! * **Restore** (§4.4) — resolves the three CID states and feeds any
//!   [`hidestore_restore::RestoreCache`].
//! * **Deletion** (§4.5, [`HiDeStore::delete_expired`]) — expired versions
//!   drop whole archival containers by version tag; no liveness detection,
//!   no garbage collection.
//!
//! # Examples
//!
//! ```
//! use hidestore_core::{HiDeStore, HiDeStoreConfig};
//! use hidestore_restore::Faa;
//! use hidestore_storage::{MemoryContainerStore, VersionId};
//!
//! let mut system = HiDeStore::new(HiDeStoreConfig::small_for_tests(), MemoryContainerStore::new());
//! let v1 = vec![7u8; 100_000];
//! system.backup(&v1)?;
//! let mut v2 = v1.clone();
//! v2.extend_from_slice(b"new tail data");
//! system.backup(&v2)?;
//!
//! let mut out = Vec::new();
//! let report = system.restore(VersionId::new(2), &mut Faa::new(1 << 20), &mut out)?;
//! assert_eq!(out, v2);
//! assert!(report.speed_factor() > 0.0);
//! # Ok::<(), hidestore_core::HiDeStoreError>(())
//! ```

mod active;
mod cache;
pub mod chain;
mod composite;
mod config;
mod handle;
mod journal;
mod persist;
mod recluster;
mod scheme;
mod stats;
mod system;

pub use active::{ActivePool, CompactionReport};
pub use cache::{CacheEntry, Classification, FingerprintCache};
pub use composite::{CompositeStore, ACTIVE_ID_BASE};
pub use config::{DedupMode, HiDeStoreConfig, CONFIG_FILE};
pub use handle::RepositoryHandle;
pub use journal::JournalRecovery;
pub use persist::{
    repository_recovery_state, OpenReport, PendingJournal, QuarantineEntry, QuarantinedArtifact,
    RecoveryState, RepositoryMeta,
};
pub use recluster::ReclusterReport;
pub use scheme::OutOfLineReport;
pub use stats::{DeletionReport, HiDeStoreRunStats, HiDeStoreVersionStats, ScrubReport};
pub use system::{HiDeStore, HiDeStoreError, IntegrityViews};
