//! Repository persistence: save a HiDeStore instance's state to a directory
//! and reopen it later — the restart story of a real backup appliance.
//!
//! Layout under the repository root:
//!
//! ```text
//! repo/
//!   archival/      container files (managed by FileContainerStore)
//!   active/        active-pool containers, same binary format
//!   recipes/       r<version>.rcp files
//!   staging/       in-flight save transaction (absent when quiescent)
//!   quarantine/    artifacts moved aside by degraded-mode recovery
//!   hidestore.meta next version / next archival id / config echo, CRC-guarded
//! ```
//!
//! Saves are **transactional** (see [`crate::journal`]): every file of a save
//! is staged, fsynced, and published under a checksummed commit record, so a
//! crash at any point leaves the repository openable in either the pre-save
//! or the post-save state — never a mix. Opens are **degraded-mode**:
//! unreadable or corrupt containers and recipes are moved to `quarantine/`
//! and reported (see [`OpenReport`]) instead of aborting the open; versions
//! that do not depend on quarantined artifacts restore normally, the rest
//! fail with [`HiDeStoreError::PartialRestore`] naming their lost
//! dependencies.
//!
//! The fingerprint cache is *not* persisted: per the paper (§4.1), the
//! previous version's table `T1` is rebuilt by prefetching the newest
//! recipe(s), with active-container locations recovered from the pool.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

use hidestore_failpoint::{RealVfs, Vfs};
use hidestore_hash::{crc32, Fingerprint};
use hidestore_storage::{
    Container, ContainerId, ContainerStore, FileContainerStore, RecipeStore, StorageError,
    VersionId,
};

use crate::cache::{CacheEntry, FingerprintCache};
use crate::config::HiDeStoreConfig;
use crate::journal::{self, CommitRecord, JournalRecovery, PublishEntry};
use crate::system::{HiDeStore, HiDeStoreError};

const META_FILE: &str = "hidestore.meta";
/// Legacy (pre-CRC) meta format: magic + three LE u32 counters, 16 bytes.
const META_MAGIC_V1: &[u8; 4] = b"HDSM";
/// Current meta format: magic + three LE u32 counters + CRC-32 over the
/// first 16 bytes, 20 bytes total. A torn or bit-flipped meta fails the
/// length or CRC check and is reported as corrupt instead of misparsed.
const META_MAGIC_V2: &[u8; 4] = b"HDS2";

/// Directory quarantined artifacts are moved into.
pub(crate) const QUARANTINE_DIR: &str = "quarantine";

/// The counters stored in a repository's `hidestore.meta` file, readable
/// without opening the full repository (e.g. so `hds-fsck` can discover the
/// history depth a repository was written with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepositoryMeta {
    /// Next version number to assign (retained versions are below this).
    pub next_version: u32,
    /// Next archival container ID to assign.
    pub next_archival: u32,
    /// The history depth the repository was written with.
    pub history_depth: u32,
}

impl RepositoryMeta {
    /// Reads the meta file of the repository at `dir`. Returns `Ok(None)`
    /// when no meta file exists (a fresh or never-saved repository).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a corrupt (torn, bit-flipped, or
    /// unrecognized) meta file.
    pub fn read(dir: impl AsRef<Path>) -> Result<Option<Self>, HiDeStoreError> {
        Self::read_with(dir, &RealVfs)
    }

    /// [`RepositoryMeta::read`] through an explicit [`Vfs`] — the
    /// fault-injection entry point.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a corrupt meta file.
    pub fn read_with<V: Vfs>(
        dir: impl AsRef<Path>,
        vfs: &V,
    ) -> Result<Option<Self>, HiDeStoreError> {
        let meta_path = dir.as_ref().join(META_FILE);
        if !vfs.exists(&meta_path) {
            return Ok(None);
        }
        let meta = vfs.read(&meta_path).map_err(StorageError::from)?;
        let corrupt = |why: &str| {
            HiDeStoreError::Storage(StorageError::Corrupt(format!(
                "bad repository meta file: {why}"
            )))
        };
        if meta.len() >= 4 && &meta[..4] == META_MAGIC_V2 {
            if meta.len() != 20 {
                return Err(corrupt(&format!("{} bytes, expected 20", meta.len())));
            }
            if crc32(&meta[..16]) != meta_u32(&meta, 16) {
                return Err(corrupt("payload checksum mismatch (torn write?)"));
            }
        } else if !(meta.len() == 16 && &meta[..4] == META_MAGIC_V1) {
            return Err(corrupt("unrecognized magic or length"));
        }
        Ok(Some(RepositoryMeta {
            next_version: meta_u32(&meta, 4),
            next_archival: meta_u32(&meta, 8),
            history_depth: meta_u32(&meta, 12),
        }))
    }

    /// Serializes in the current (CRC-guarded) format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20);
        out.extend_from_slice(META_MAGIC_V2);
        out.extend_from_slice(&self.next_version.to_le_bytes());
        out.extend_from_slice(&self.next_archival.to_le_bytes());
        out.extend_from_slice(&self.history_depth.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// Little-endian u32 at `at`; the caller has checked `meta` is long enough.
fn meta_u32(meta: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&meta[at..at + 4]);
    u32::from_le_bytes(b)
}

/// A repository artifact that degraded-mode recovery moved aside because it
/// could not be read or decoded (or, for containers, was provably written
/// by a save that never committed).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QuarantinedArtifact {
    /// An archival container file (`archival/c<id>.ctr`).
    ArchivalContainer(ContainerId),
    /// An active-pool snapshot file (`active/a<cid>.ctr`), by pool-local ID.
    ActiveContainer(u32),
    /// A recipe file (`recipes/r<version>.rcp`).
    Recipe(VersionId),
    /// A file whose name did not parse as any known artifact.
    Unrecognized(String),
}

impl fmt::Display for QuarantinedArtifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantinedArtifact::ArchivalContainer(id) => {
                write!(f, "archival container {}", id.get())
            }
            QuarantinedArtifact::ActiveContainer(cid) => write!(f, "active container {cid}"),
            QuarantinedArtifact::Recipe(v) => write!(f, "recipe of {v}"),
            QuarantinedArtifact::Unrecognized(name) => write!(f, "file '{name}'"),
        }
    }
}

/// One artifact moved to `quarantine/` during a degraded open: what it was,
/// where it now lives, and why it was pulled.
#[derive(Debug, Clone)]
pub struct QuarantineEntry {
    /// The artifact, as identified from its file name.
    pub artifact: QuarantinedArtifact,
    /// Where the file now lives (inside the quarantine directory).
    pub path: PathBuf,
    /// Why it was quarantined.
    pub reason: String,
}

/// What [`HiDeStore::open_repository_with`] found and fixed while opening:
/// journal recovery outcome and every artifact quarantined this open.
#[derive(Debug)]
pub struct OpenReport {
    /// Whether an interrupted save transaction was rolled forward or back.
    pub journal: JournalRecovery,
    /// Artifacts moved to `quarantine/` by this open.
    pub quarantined: Vec<QuarantineEntry>,
}

/// An interrupted save transaction found on disk, and what opening the
/// repository will do with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingJournal {
    /// The commit record is valid: open will complete the publish.
    RollForward {
        /// Files the transaction still has to publish.
        publishes: usize,
        /// Files the transaction removes.
        removals: usize,
    },
    /// No valid commit record: open will discard the staging tree.
    RollBack,
}

/// Crash-recovery artifacts present in a repository directory, inspected
/// *without* opening (and therefore without recovering) the repository —
/// this is how `hds-fsck` reports a pending journal before
/// [`HiDeStore::open_repository`] resolves it.
#[derive(Debug, Default)]
pub struct RecoveryState {
    /// An interrupted save transaction, if `staging/` exists.
    pub pending_journal: Option<PendingJournal>,
    /// Files currently held in `quarantine/` (from this or earlier opens).
    pub quarantined_files: Vec<PathBuf>,
}

/// Inspects the repository at `dir` for crash-recovery artifacts — a
/// leftover `staging/` transaction and `quarantine/` contents — without
/// opening or modifying anything.
///
/// # Errors
///
/// Fails on filesystem errors while listing the directories.
pub fn repository_recovery_state(dir: impl AsRef<Path>) -> Result<RecoveryState, HiDeStoreError> {
    let vfs = RealVfs;
    let dir = dir.as_ref();
    let mut state = RecoveryState::default();
    if vfs.exists(&journal::staging_dir(dir)) {
        let commit = journal::commit_path(dir);
        let record = vfs
            .read(&commit)
            .ok()
            .and_then(|bytes| CommitRecord::decode(&bytes));
        state.pending_journal = Some(match record {
            Some(r) => PendingJournal::RollForward {
                publishes: r.publish.len(),
                removals: r.remove.len(),
            },
            None => PendingJournal::RollBack,
        });
    }
    let quarantine = dir.join(QUARANTINE_DIR);
    if vfs.exists(&quarantine) {
        state.quarantined_files = vfs.read_dir(&quarantine).map_err(StorageError::from)?;
    }
    Ok(state)
}

/// Moves `src` into the quarantine directory, fsyncing both directories so
/// the move survives a crash. Returns the new location.
fn quarantine_file<V: Vfs>(
    vfs: &V,
    quarantine_dir: &Path,
    src: &Path,
) -> Result<PathBuf, StorageError> {
    vfs.create_dir_all(quarantine_dir)?;
    let name = src
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "artifact".into());
    let dest = quarantine_dir.join(name);
    vfs.rename(src, &dest)?;
    if let Some(parent) = src.parent() {
        vfs.sync_dir(parent)?;
    }
    vfs.sync_dir(quarantine_dir)?;
    Ok(dest)
}

/// Identifies a recipe file from its name for quarantine reporting.
fn recipe_artifact(path: &Path) -> QuarantinedArtifact {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    name.strip_prefix('r')
        .and_then(|s| s.strip_suffix(".rcp"))
        .and_then(|s| s.parse::<u32>().ok())
        .filter(|&v| v != 0)
        .map_or(QuarantinedArtifact::Unrecognized(name.clone()), |v| {
            QuarantinedArtifact::Recipe(VersionId::new(v))
        })
}

/// Identifies any quarantined file from its name (`c<id>.ctr` archival,
/// `a<cid>.ctr` active snapshot, `r<v>.rcp` recipe).
fn quarantined_artifact_of(path: &Path) -> QuarantinedArtifact {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    if let Some(id) = name
        .strip_prefix('c')
        .and_then(|s| s.strip_suffix(".ctr"))
        .and_then(|s| s.parse::<u32>().ok())
        .filter(|&id| id != 0)
    {
        return QuarantinedArtifact::ArchivalContainer(ContainerId::new(id));
    }
    if let Some(cid) = name
        .strip_prefix('a')
        .and_then(|s| s.strip_suffix(".ctr"))
        .and_then(|s| s.parse::<u32>().ok())
    {
        return QuarantinedArtifact::ActiveContainer(cid);
    }
    recipe_artifact(path)
}

impl HiDeStore<FileContainerStore> {
    /// Opens (or initializes) a persistent repository at `dir`.
    ///
    /// A fresh directory becomes an empty repository; an existing one is
    /// reloaded: recipes, active containers, counters, and the fingerprint
    /// cache rebuilt from the newest recipes. An interrupted save
    /// transaction is rolled forward or back first, and unreadable/corrupt
    /// artifacts are quarantined rather than failing the open — see
    /// [`HiDeStore::open_repository_report`] to observe what recovery did.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors, a corrupt meta file, or a history-depth
    /// mismatch.
    pub fn open_repository(
        config: HiDeStoreConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, HiDeStoreError> {
        Ok(Self::open_repository_with(config, dir, RealVfs)?.0)
    }

    /// [`HiDeStore::open_repository`], additionally returning the
    /// [`OpenReport`] describing journal recovery and quarantined artifacts.
    ///
    /// # Errors
    ///
    /// Same as [`HiDeStore::open_repository`].
    pub fn open_repository_report(
        config: HiDeStoreConfig,
        dir: impl AsRef<Path>,
    ) -> Result<(Self, OpenReport), HiDeStoreError> {
        Self::open_repository_with(config, dir, RealVfs)
    }
}

impl<V: Vfs> HiDeStore<FileContainerStore<V>> {
    /// [`HiDeStore::open_repository`] through an explicit [`Vfs`] — the
    /// fault-injection entry point. Every filesystem operation of the open
    /// (journal recovery included) goes through `vfs`.
    ///
    /// # Errors
    ///
    /// Same as [`HiDeStore::open_repository`].
    pub fn open_repository_with(
        config: HiDeStoreConfig,
        dir: impl AsRef<Path>,
        vfs: V,
    ) -> Result<(Self, OpenReport), HiDeStoreError> {
        let dir = dir.as_ref();
        vfs.create_dir_all(dir).map_err(StorageError::from)?;

        // 1. Resolve any interrupted save transaction before reading
        // anything: after this, the on-disk state is exactly the pre-save
        // or post-save repository.
        let journal_outcome = journal::recover(dir, &vfs)?;
        let quarantine_dir = dir.join(QUARANTINE_DIR);
        let mut quarantined: Vec<QuarantineEntry> = Vec::new();

        // 1b. Quarantine is durable: artifacts moved aside by an earlier
        // open stay lost until an operator resolves them, so their entries
        // are reconstructed from the directory — restores that depend on
        // them keep failing with `PartialRestore` on every reopen, not just
        // the one that performed the quarantine.
        if vfs.exists(&quarantine_dir) {
            for path in vfs.read_dir(&quarantine_dir).map_err(StorageError::from)? {
                quarantined.push(QuarantineEntry {
                    artifact: quarantined_artifact_of(&path),
                    path: path.clone(),
                    reason: "quarantined by an earlier open".into(),
                });
            }
        }

        // 2. Counters (CRC-guarded; a corrupt meta is a hard error — without
        // trustworthy counters nothing else can be interpreted).
        let meta = RepositoryMeta::read_with(dir, &vfs)?;

        // 3. Archival store (sweeps stale tmp files). Removals are deferred
        // from here on: `delete_expired` must not unlink container files
        // before the save that commits the matching recipe drops.
        let mut archival = FileContainerStore::open_with(dir.join("archival"), vfs.clone())?;
        archival.set_deferred_removals(true);

        // 4. Uncommitted residue: containers numbered at or above the
        // committed next-archival counter were written by a backup whose
        // save never committed. No committed recipe can reference them, so
        // they are quarantined, restoring the exact committed state.
        let archival_bound = meta.as_ref().map_or(1, |m| m.next_archival);
        for id in archival.ids() {
            if id.get() >= archival_bound {
                let dest = quarantine_file(&vfs, &quarantine_dir, &archival.path_of(id))?;
                archival.forget(id);
                quarantined.push(QuarantineEntry {
                    artifact: QuarantinedArtifact::ArchivalContainer(id),
                    path: dest,
                    reason: format!(
                        "container id {} >= committed next-archival {archival_bound} \
                         (residue of an uncommitted save)",
                        id.get()
                    ),
                });
            }
        }

        // 5. Decode-verify what remains; corrupt or unreadable containers
        // are quarantined instead of failing every restore that walks past
        // them.
        for (id, why) in archival.verify_containers() {
            let dest = quarantine_file(&vfs, &quarantine_dir, &archival.path_of(id))?;
            archival.forget(id);
            quarantined.push(QuarantineEntry {
                artifact: QuarantinedArtifact::ArchivalContainer(id),
                path: dest,
                reason: why,
            });
        }

        let mut system = HiDeStore::new(config, archival);
        let Some(meta) = meta else {
            system.set_quarantine(quarantined.clone());
            return Ok((
                system,
                OpenReport {
                    journal: journal_outcome,
                    quarantined,
                },
            ));
        };
        if meta.history_depth as usize != system.config().history_depth {
            return Err(HiDeStoreError::Storage(StorageError::Corrupt(format!(
                "repository was written with history depth {}, \
                 reopened with {}",
                meta.history_depth,
                system.config().history_depth
            ))));
        }

        // 6. Recipes, per-file: a corrupt recipe quarantines that version
        // and the rest of the repository opens normally.
        let recipe_report = RecipeStore::load_dir_report_with(dir.join("recipes"), &vfs)?;
        for (path, err) in recipe_report.failed {
            let artifact = recipe_artifact(&path);
            let dest = quarantine_file(&vfs, &quarantine_dir, &path)?;
            quarantined.push(QuarantineEntry {
                artifact,
                path: dest,
                reason: err.to_string(),
            });
        }

        // 7. Active pool, per-file likewise.
        let active_dir = dir.join("active");
        let mut pool_containers: Vec<Container> = Vec::new();
        if vfs.exists(&active_dir) {
            for path in vfs.read_dir(&active_dir).map_err(StorageError::from)? {
                let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                    continue;
                };
                let Some(cid) = name
                    .strip_prefix('a')
                    .and_then(|s| s.strip_suffix(".ctr"))
                    .and_then(|s| s.parse::<u32>().ok())
                else {
                    continue;
                };
                let decoded = vfs
                    .read(&path)
                    .map_err(|e| format!("unreadable: {e}"))
                    .and_then(|bytes| Container::decode(&bytes));
                match decoded {
                    Ok(container) => pool_containers.push(container),
                    Err(reason) => {
                        let dest = quarantine_file(&vfs, &quarantine_dir, &path)?;
                        quarantined.push(QuarantineEntry {
                            artifact: QuarantinedArtifact::ActiveContainer(cid),
                            path: dest,
                            reason,
                        });
                    }
                }
            }
        }

        system.restore_persistent_state(
            meta.next_version,
            meta.next_archival,
            recipe_report.store,
            pool_containers,
        )?;
        system.set_quarantine(quarantined.clone());
        Ok((
            system,
            OpenReport {
                journal: journal_outcome,
                quarantined,
            },
        ))
    }

    /// Saves the repository state so [`HiDeStore::open_repository`] can
    /// resume it: recipes, active containers, and counters. Archival
    /// containers are already on disk (the store is file-backed); container
    /// removals deferred by `delete_expired` are committed here.
    ///
    /// The save is atomic: every file is staged under `staging/`, fsynced,
    /// and published under a checksummed commit record. A crash at any
    /// point leaves the repository reopening as either the pre-save or the
    /// post-save state (see [`crate::journal`]).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn save_repository(&mut self, dir: impl AsRef<Path>) -> Result<(), HiDeStoreError> {
        let vfs = self.archival().vfs().clone();
        let dir = dir.as_ref();
        vfs.create_dir_all(dir).map_err(StorageError::from)?;
        // A transaction left behind by an earlier interrupted save in this
        // process resolves exactly like it would at open.
        journal::recover(dir, &vfs)?;

        let staging = journal::staging_dir(dir);
        let mut record = CommitRecord::default();

        // Assemble the new file set.
        let mut staged: Vec<(String, Vec<u8>)> = Vec::new();
        for recipe in self.recipes().iter() {
            staged.push((
                format!("recipes/r{}.rcp", recipe.version().get()),
                recipe.encode(),
            ));
        }
        let mut live_active: BTreeSet<String> = BTreeSet::new();
        for (cid, container) in self.pool().containers() {
            let name = format!("a{cid}.ctr");
            live_active.insert(name.clone());
            staged.push((format!("active/{name}"), container.encode()));
        }
        let meta = RepositoryMeta {
            next_version: self.next_version_raw(),
            next_archival: self.next_archival_raw(),
            history_depth: self.config().history_depth as u32,
        };
        staged.push((META_FILE.to_string(), meta.encode()));

        // Assemble the removal set: stale recipes, stale active snapshots,
        // and container removals deferred since the last save. The deferred
        // queue is only drained after the commit succeeds, so a failed save
        // retries them.
        let recipes_dir = dir.join("recipes");
        if vfs.exists(&recipes_dir) {
            for path in vfs.read_dir(&recipes_dir).map_err(StorageError::from)? {
                let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                    continue;
                };
                if let Some(v) = name.strip_prefix('r').and_then(|s| s.strip_suffix(".rcp")) {
                    let stale = v
                        .parse::<u32>()
                        .ok()
                        .and_then(|v| (v != 0).then(|| VersionId::new(v)))
                        .is_none_or(|v| self.recipes().get(v).is_none());
                    if stale {
                        record.remove.push(format!("recipes/{name}"));
                    }
                }
            }
        }
        let active_dir = dir.join("active");
        if vfs.exists(&active_dir) {
            for path in vfs.read_dir(&active_dir).map_err(StorageError::from)? {
                let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                    continue;
                };
                if name.starts_with('a') && name.ends_with(".ctr") && !live_active.contains(&name) {
                    record.remove.push(format!("active/{name}"));
                }
            }
        }
        for &id in self.archival().deferred_removals() {
            record.remove.push(format!("archival/c{}.ctr", id.get()));
        }

        // Stage: write + fsync every file, then fsync the staged
        // directories and the repository root (making `staging/` itself
        // durable) before the commit record exists.
        let mut staged_dirs: BTreeSet<PathBuf> = BTreeSet::new();
        staged_dirs.insert(staging.clone());
        for (rel, bytes) in &staged {
            let path = staging.join(rel);
            if let Some(parent) = path.parent() {
                vfs.create_dir_all(parent).map_err(StorageError::from)?;
                staged_dirs.insert(parent.to_path_buf());
            }
            vfs.write(&path, bytes).map_err(StorageError::from)?;
            vfs.sync_file(&path).map_err(StorageError::from)?;
            record.publish.push(PublishEntry {
                rel: rel.clone(),
                len: bytes.len() as u64,
                crc: crc32(bytes),
            });
        }
        for d in &staged_dirs {
            vfs.sync_dir(d).map_err(StorageError::from)?;
        }
        vfs.sync_dir(dir).map_err(StorageError::from)?;

        // Commit: the fsynced record is the commit point.
        let commit = journal::commit_path(dir);
        vfs.write(&commit, &record.encode())
            .map_err(StorageError::from)?;
        vfs.sync_file(&commit).map_err(StorageError::from)?;
        vfs.sync_dir(&staging).map_err(StorageError::from)?;

        // Publish. From here on a crash is rolled *forward* at next open.
        journal::apply(dir, &vfs, &record)?;
        self.archival_mut().take_deferred();
        Ok(())
    }
}

/// Rebuilds the fingerprint cache from the newest `depth` recipes and the
/// active pool, per §4.1: table `T_w` holds the chunks whose most recent
/// version is `w`, located via the pool.
pub(crate) fn rebuild_cache(
    recipes: &RecipeStore,
    pool: &crate::active::ActivePool,
    depth: usize,
) -> FingerprintCache {
    let mut cache = FingerprintCache::new(depth);
    let Some(latest) = recipes.latest_version() else {
        return cache;
    };
    // Collect the newest `depth` versions oldest-first so preload_history
    // ends with the newest at the front.
    let mut versions: Vec<VersionId> = Vec::new();
    let mut v = Some(latest);
    for _ in 0..depth {
        let Some(cur) = v else { break };
        if recipes.get(cur).is_some() {
            versions.push(cur);
        }
        v = cur.prev();
    }
    versions.reverse();
    let mut seen_newer: std::collections::HashSet<Fingerprint> = Default::default();
    // Walk newest-first when assigning ownership; preload oldest-first.
    let mut tables: Vec<HashMap<Fingerprint, CacheEntry>> = Vec::new();
    for &w in versions.iter().rev() {
        let Some(recipe) = recipes.get(w) else {
            continue;
        };
        let mut table = HashMap::new();
        for entry in recipe.entries() {
            if seen_newer.contains(&entry.fingerprint) {
                continue;
            }
            if let Some(cid) = pool.locate(&entry.fingerprint) {
                table.insert(
                    entry.fingerprint,
                    CacheEntry {
                        size: entry.size,
                        active_cid: cid,
                    },
                );
            }
            seen_newer.insert(entry.fingerprint);
        }
        tables.push(table);
    }
    // `tables` is newest-first; preload oldest-first so the newest ends up
    // in front.
    for table in tables.into_iter().rev() {
        cache.preload_history(table);
    }
    cache
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_restore::Faa;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> HiDeStoreConfig {
        HiDeStoreConfig {
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            ..HiDeStoreConfig::default()
        }
    }

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn fresh_repository_is_empty() {
        let dir = temp_dir("fresh");
        let system = HiDeStore::open_repository(config(), &dir).unwrap();
        assert!(system.versions().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_reopen_restores_old_versions() {
        let dir = temp_dir("roundtrip");
        let v1 = noise(100_000, 1);
        let mut v2 = v1.clone();
        v2[10_000..14_000].copy_from_slice(&noise(4000, 2));
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&v1).unwrap();
            system.backup(&v2).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let mut reopened = HiDeStore::open_repository(config(), &dir).unwrap();
        assert_eq!(reopened.versions().len(), 2);
        for (i, expect) in [&v1, &v2].into_iter().enumerate() {
            let mut out = Vec::new();
            reopened
                .restore(
                    VersionId::new(i as u32 + 1),
                    &mut Faa::new(1 << 18),
                    &mut out,
                )
                .unwrap();
            assert_eq!(&out, expect, "V{} after reopen", i + 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dedup_continues_across_restart() {
        let dir = temp_dir("continue");
        let v1 = noise(100_000, 3);
        let mut v2 = v1.clone();
        v2.extend_from_slice(&noise(5000, 4));
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&v1).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let mut reopened = HiDeStore::open_repository(config(), &dir).unwrap();
        let stats = reopened.backup(&v2).unwrap();
        // The rebuilt T1 must recognize v1's chunks: only the tail is new.
        assert!(
            stats.stored_bytes < 20_000,
            "stored {} bytes after restart — cache not rebuilt",
            stats.stored_bytes
        );
        let mut out = Vec::new();
        reopened
            .restore(VersionId::new(2), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, v2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_numbering_continues() {
        let dir = temp_dir("numbering");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 5)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let mut reopened = HiDeStore::open_repository(config(), &dir).unwrap();
        let stats = reopened.backup(&noise(50_000, 6)).unwrap();
        assert_eq!(stats.version, VersionId::new(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn depth_mismatch_rejected() {
        let dir = temp_dir("depth");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 7)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let err = HiDeStore::open_repository(config().with_history_depth(2), &dir).unwrap_err();
        assert!(err.to_string().contains("history depth"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_meta_rejected() {
        let dir = temp_dir("meta");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 8)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        fs::write(dir.join("hidestore.meta"), b"garbage").unwrap();
        assert!(HiDeStore::open_repository(config(), &dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_meta_detected_by_crc() {
        let dir = temp_dir("torn-meta");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 30)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let meta = fs::read(dir.join("hidestore.meta")).unwrap();
        assert_eq!(meta.len(), 20, "current meta format is 20 bytes");
        // A truncated v2 meta must be corrupt, not misparsed as legacy.
        fs::write(dir.join("hidestore.meta"), &meta[..16]).unwrap();
        let err = HiDeStore::open_repository(config(), &dir).unwrap_err();
        assert!(err.to_string().contains("bad repository meta"), "{err}");
        // So must a bit flip inside the payload.
        let mut flipped = meta.clone();
        flipped[6] ^= 0x01;
        fs::write(dir.join("hidestore.meta"), &flipped).unwrap();
        let err = HiDeStore::open_repository(config(), &dir).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_meta_format_still_opens() {
        let dir = temp_dir("legacy-meta");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 31)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        // Rewrite the meta in the pre-CRC 16-byte format.
        let meta = RepositoryMeta::read(&dir).unwrap().unwrap();
        let mut legacy = Vec::with_capacity(16);
        legacy.extend_from_slice(META_MAGIC_V1);
        legacy.extend_from_slice(&meta.next_version.to_le_bytes());
        legacy.extend_from_slice(&meta.next_archival.to_le_bytes());
        legacy.extend_from_slice(&meta.history_depth.to_le_bytes());
        fs::write(dir.join("hidestore.meta"), legacy).unwrap();
        let reopened = HiDeStore::open_repository(config(), &dir).unwrap();
        assert_eq!(reopened.versions().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_leaves_no_staging_directory() {
        let dir = temp_dir("no-staging");
        let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
        system.backup(&noise(60_000, 32)).unwrap();
        system.save_repository(&dir).unwrap();
        assert!(!dir.join("staging").exists());
        let state = repository_recovery_state(&dir).unwrap();
        assert!(state.pending_journal.is_none());
        assert!(state.quarantined_files.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_survives_reopen() {
        let dir = temp_dir("quarantine-durable");
        let v1 = noise(100_000, 50);
        let mut v2 = v1.clone();
        v2[20_000..28_000].copy_from_slice(&noise(8_000, 51));
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&v1).unwrap();
            system.backup(&v2).unwrap();
            system.save_repository(&dir).unwrap();
        }
        // Corrupt one archival container; the next open quarantines it.
        let victim = fs::read_dir(dir.join("archival"))
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "ctr"))
            .unwrap();
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
        {
            let (system, report) = HiDeStore::open_repository_report(config(), &dir).unwrap();
            assert_eq!(report.quarantined.len(), 1);
            assert_eq!(system.quarantine().len(), 1);
        }
        // A *second* open performs no new quarantine, yet must still know
        // about the artifact and keep degrading dependent restores.
        let (mut system, report) = HiDeStore::open_repository_report(config(), &dir).unwrap();
        assert_eq!(
            report.quarantined.len(),
            1,
            "quarantine entry reconstructed"
        );
        assert!(matches!(
            report.quarantined[0].artifact,
            QuarantinedArtifact::ArchivalContainer(_)
        ));
        let mut out = Vec::new();
        let err = system
            .restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out)
            .unwrap_err();
        assert!(
            matches!(err, HiDeStoreError::PartialRestore { .. }),
            "expected PartialRestore after reopen, got: {err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deferred_removals_commit_with_the_save() {
        let dir = temp_dir("deferred-rm");
        let mut data = noise(80_000, 33);
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            for round in 0..4u64 {
                system.backup(&data).unwrap();
                let start = (round as usize * 13_000) % 60_000;
                let patch = noise(9_000, 40 + round);
                data[start..start + patch.len()].copy_from_slice(&patch);
            }
            system.save_repository(&dir).unwrap();
        }
        let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
        let report = system.delete_expired(VersionId::new(2)).unwrap();
        assert!(report.containers_dropped > 0);
        // Deferred: the files are still on disk until the save commits.
        let on_disk = fs::read_dir(dir.join("archival")).unwrap().count();
        assert!(
            on_disk > system.archival().len(),
            "removed container files must survive until the save"
        );
        system.save_repository(&dir).unwrap();
        let on_disk = fs::read_dir(dir.join("archival")).unwrap().count();
        assert_eq!(on_disk, system.archival().len());
        fs::remove_dir_all(&dir).unwrap();
    }
}
