//! Repository persistence: save a HiDeStore instance's state to a directory
//! and reopen it later — the restart story of a real backup appliance.
//!
//! Layout under the repository root:
//!
//! ```text
//! repo/
//!   archival/      container files (managed by FileContainerStore)
//!   active/        active-pool containers, same binary format
//!   recipes/       r<version>.rcp files
//!   hidestore.meta next version / next archival id / config echo
//! ```
//!
//! The fingerprint cache is *not* persisted: per the paper (§4.1), the
//! previous version's table `T1` is rebuilt by prefetching the newest
//! recipe(s), with active-container locations recovered from the pool.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

use hidestore_hash::Fingerprint;
use hidestore_storage::{Container, FileContainerStore, RecipeStore, StorageError, VersionId};

use crate::cache::{CacheEntry, FingerprintCache};
use crate::config::HiDeStoreConfig;
use crate::system::{HiDeStore, HiDeStoreError};

const META_MAGIC: &[u8; 4] = b"HDSM";

/// The counters stored in a repository's `hidestore.meta` file, readable
/// without opening the full repository (e.g. so `hds-fsck` can discover the
/// history depth a repository was written with).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepositoryMeta {
    /// Next version number to assign (retained versions are below this).
    pub next_version: u32,
    /// Next archival container ID to assign.
    pub next_archival: u32,
    /// The history depth the repository was written with.
    pub history_depth: u32,
}

impl RepositoryMeta {
    /// Reads the meta file of the repository at `dir`. Returns `Ok(None)`
    /// when no meta file exists (a fresh or never-saved repository).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a corrupt meta file.
    pub fn read(dir: impl AsRef<Path>) -> Result<Option<Self>, HiDeStoreError> {
        let meta_path = dir.as_ref().join("hidestore.meta");
        if !meta_path.exists() {
            return Ok(None);
        }
        let meta = fs::read(&meta_path).map_err(StorageError::from)?;
        if meta.len() < 16 || &meta[..4] != META_MAGIC {
            return Err(HiDeStoreError::Storage(StorageError::Corrupt(
                "bad repository meta file".into(),
            )));
        }
        Ok(Some(RepositoryMeta {
            next_version: meta_u32(&meta, 4),
            next_archival: meta_u32(&meta, 8),
            history_depth: meta_u32(&meta, 12),
        }))
    }
}

/// Little-endian u32 at `at`; the caller has checked `meta` is long enough.
fn meta_u32(meta: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&meta[at..at + 4]);
    u32::from_le_bytes(b)
}

impl HiDeStore<FileContainerStore> {
    /// Opens (or initializes) a persistent repository at `dir`.
    ///
    /// A fresh directory becomes an empty repository; an existing one is
    /// reloaded: recipes, active containers, counters, and the fingerprint
    /// cache rebuilt from the newest recipes.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or corrupt repository files.
    pub fn open_repository(
        config: HiDeStoreConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, HiDeStoreError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(StorageError::from)?;
        let archival = FileContainerStore::open(dir.join("archival"))?;
        let mut system = HiDeStore::new(config, archival);

        let Some(meta) = RepositoryMeta::read(dir)? else {
            return Ok(system);
        };
        if meta.history_depth as usize != system.config().history_depth {
            return Err(HiDeStoreError::Storage(StorageError::Corrupt(format!(
                "repository was written with history depth {}, \
                 reopened with {}",
                meta.history_depth,
                system.config().history_depth
            ))));
        }

        // Recipes.
        let recipes = RecipeStore::load_dir(dir.join("recipes"))?;

        // Active pool.
        let active_dir = dir.join("active");
        let mut pool_containers: Vec<Container> = Vec::new();
        if active_dir.exists() {
            for entry in fs::read_dir(&active_dir).map_err(StorageError::from)? {
                let entry = entry.map_err(StorageError::from)?;
                let mut bytes = Vec::new();
                fs::File::open(entry.path())
                    .map_err(StorageError::from)?
                    .read_to_end(&mut bytes)
                    .map_err(StorageError::from)?;
                pool_containers.push(Container::decode(&bytes).map_err(StorageError::Corrupt)?);
            }
        }
        system.restore_persistent_state(
            meta.next_version,
            meta.next_archival,
            recipes,
            pool_containers,
        )?;
        Ok(system)
    }

    /// Saves the repository state so [`HiDeStore::open_repository`] can
    /// resume it: recipes, active containers, and counters. Archival
    /// containers are already on disk (the store is file-backed).
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors.
    pub fn save_repository(&self, dir: impl AsRef<Path>) -> Result<(), HiDeStoreError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir).map_err(StorageError::from)?;
        self.recipes().save_dir(dir.join("recipes"))?;

        let active_dir = dir.join("active");
        let _ = fs::remove_dir_all(&active_dir);
        fs::create_dir_all(&active_dir).map_err(StorageError::from)?;
        for (cid, container) in self.pool().containers() {
            let path = active_dir.join(format!("a{cid}.ctr"));
            let mut f = fs::File::create(path).map_err(StorageError::from)?;
            f.write_all(&container.encode())
                .map_err(StorageError::from)?;
        }

        let mut meta = Vec::with_capacity(16);
        meta.extend_from_slice(META_MAGIC);
        meta.extend_from_slice(&self.next_version_raw().to_le_bytes());
        meta.extend_from_slice(&self.next_archival_raw().to_le_bytes());
        meta.extend_from_slice(&(self.config().history_depth as u32).to_le_bytes());
        fs::write(dir.join("hidestore.meta"), meta).map_err(StorageError::from)?;
        Ok(())
    }
}

/// Rebuilds the fingerprint cache from the newest `depth` recipes and the
/// active pool, per §4.1: table `T_w` holds the chunks whose most recent
/// version is `w`, located via the pool.
pub(crate) fn rebuild_cache(
    recipes: &RecipeStore,
    pool: &crate::active::ActivePool,
    depth: usize,
) -> FingerprintCache {
    let mut cache = FingerprintCache::new(depth);
    let Some(latest) = recipes.latest_version() else {
        return cache;
    };
    // Collect the newest `depth` versions oldest-first so preload_history
    // ends with the newest at the front.
    let mut versions: Vec<VersionId> = Vec::new();
    let mut v = Some(latest);
    for _ in 0..depth {
        let Some(cur) = v else { break };
        if recipes.get(cur).is_some() {
            versions.push(cur);
        }
        v = cur.prev();
    }
    versions.reverse();
    let mut seen_newer: std::collections::HashSet<Fingerprint> = Default::default();
    // Walk newest-first when assigning ownership; preload oldest-first.
    let mut tables: Vec<HashMap<Fingerprint, CacheEntry>> = Vec::new();
    for &w in versions.iter().rev() {
        let Some(recipe) = recipes.get(w) else {
            continue;
        };
        let mut table = HashMap::new();
        for entry in recipe.entries() {
            if seen_newer.contains(&entry.fingerprint) {
                continue;
            }
            if let Some(cid) = pool.locate(&entry.fingerprint) {
                table.insert(
                    entry.fingerprint,
                    CacheEntry {
                        size: entry.size,
                        active_cid: cid,
                    },
                );
            }
            seen_newer.insert(entry.fingerprint);
        }
        tables.push(table);
    }
    // `tables` is newest-first; preload oldest-first so the newest ends up
    // in front.
    for table in tables.into_iter().rev() {
        cache.preload_history(table);
    }
    cache
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_restore::Faa;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> HiDeStoreConfig {
        HiDeStoreConfig {
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            ..HiDeStoreConfig::default()
        }
    }

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    #[test]
    fn fresh_repository_is_empty() {
        let dir = temp_dir("fresh");
        let system = HiDeStore::open_repository(config(), &dir).unwrap();
        assert!(system.versions().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_reopen_restores_old_versions() {
        let dir = temp_dir("roundtrip");
        let v1 = noise(100_000, 1);
        let mut v2 = v1.clone();
        v2[10_000..14_000].copy_from_slice(&noise(4000, 2));
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&v1).unwrap();
            system.backup(&v2).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let mut reopened = HiDeStore::open_repository(config(), &dir).unwrap();
        assert_eq!(reopened.versions().len(), 2);
        for (i, expect) in [&v1, &v2].into_iter().enumerate() {
            let mut out = Vec::new();
            reopened
                .restore(
                    VersionId::new(i as u32 + 1),
                    &mut Faa::new(1 << 18),
                    &mut out,
                )
                .unwrap();
            assert_eq!(&out, expect, "V{} after reopen", i + 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dedup_continues_across_restart() {
        let dir = temp_dir("continue");
        let v1 = noise(100_000, 3);
        let mut v2 = v1.clone();
        v2.extend_from_slice(&noise(5000, 4));
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&v1).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let mut reopened = HiDeStore::open_repository(config(), &dir).unwrap();
        let stats = reopened.backup(&v2).unwrap();
        // The rebuilt T1 must recognize v1's chunks: only the tail is new.
        assert!(
            stats.stored_bytes < 20_000,
            "stored {} bytes after restart — cache not rebuilt",
            stats.stored_bytes
        );
        let mut out = Vec::new();
        reopened
            .restore(VersionId::new(2), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, v2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_numbering_continues() {
        let dir = temp_dir("numbering");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 5)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let mut reopened = HiDeStore::open_repository(config(), &dir).unwrap();
        let stats = reopened.backup(&noise(50_000, 6)).unwrap();
        assert_eq!(stats.version, VersionId::new(2));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn depth_mismatch_rejected() {
        let dir = temp_dir("depth");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 7)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        let err = HiDeStore::open_repository(config().with_history_depth(2), &dir).unwrap_err();
        assert!(err.to_string().contains("history depth"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_meta_rejected() {
        let dir = temp_dir("meta");
        {
            let mut system = HiDeStore::open_repository(config(), &dir).unwrap();
            system.backup(&noise(50_000, 8)).unwrap();
            system.save_repository(&dir).unwrap();
        }
        fs::write(dir.join("hidestore.meta"), b"garbage").unwrap();
        assert!(HiDeStore::open_repository(config(), &dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
