//! Offline archival re-clustering — an extension beyond the paper.
//!
//! HiDeStore deliberately sacrifices *old* versions' restore locality
//! (§5.3): cold chunks are demoted in demotion order, so an old version's
//! chunks end up interleaved with other versions' cold chunks across the
//! archival containers sealed at the same time. Because the demotion tag
//! also drives deletion, the archival layout can be **re-clustered offline**
//! without touching any invariant: within each version-tag group, chunks
//! are repacked in the order of the oldest surviving recipe that references
//! them. Restores of old versions then read each tag group's containers
//! mostly sequentially.
//!
//! Re-clustering moves chunks but never copies them, so the deduplication
//! ratio is untouched; containers keep their version tags, so §4.5 deletion
//! stays a tag-ranged container drop.

use std::collections::HashMap;

use hidestore_hash::Fingerprint;
use hidestore_storage::{Cid, Container, ContainerId, ContainerStore};

use crate::system::{HiDeStore, HiDeStoreError};

/// Outcome of [`HiDeStore::recluster_archival`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReclusterReport {
    /// Version-tag groups processed.
    pub tag_groups: u64,
    /// Containers rewritten.
    pub containers_rewritten: u64,
    /// Chunks moved.
    pub chunks_moved: u64,
    /// Recipe entries updated to the new locations.
    pub recipe_entries_updated: u64,
}

impl<S: ContainerStore> HiDeStore<S> {
    /// Re-clusters the archival containers offline (see module docs): within
    /// every version-tag group, chunks are repacked in the read order of the
    /// oldest surviving recipe referencing them, and all recipes are updated
    /// to the new container IDs. Improves old-version restore locality with
    /// no deduplication-ratio cost; deletion semantics are unchanged.
    ///
    /// Recipe chains are flattened first (Algorithm 1), as in any offline
    /// maintenance pass.
    ///
    /// # Errors
    ///
    /// Fails if the container store rejects a read or write mid-pass.
    pub fn recluster_archival(&mut self) -> Result<ReclusterReport, HiDeStoreError> {
        self.flatten_recipes();
        let mut report = ReclusterReport::default();

        // Read order: for each archival-resident fingerprint, the oldest
        // surviving recipe referencing it and its position there.
        let mut order: HashMap<Fingerprint, (u32, u32)> = HashMap::new();
        for recipe in self.recipes().iter() {
            let v = recipe.version().get();
            for (pos, entry) in recipe.entries().iter().enumerate() {
                if entry.cid.as_archival().is_some() {
                    order.entry(entry.fingerprint).or_insert((v, pos as u32));
                }
            }
        }

        // Group archival containers by version tag.
        let mut groups: HashMap<u32, Vec<ContainerId>> = HashMap::new();
        for id in self.archival_mut().ids() {
            let container = self.archival_mut().read(id)?;
            groups.entry(container.version_tag()).or_default().push(id);
        }

        let capacity = self.config().container_capacity;
        let mut relocations: HashMap<Fingerprint, ContainerId> = HashMap::new();
        let mut tags: Vec<u32> = groups.keys().copied().collect();
        tags.sort_unstable();
        for tag in tags {
            let ids = &groups[&tag];
            if ids.len() < 2 {
                // A single container per tag is already as clustered as it
                // can get.
                continue;
            }
            report.tag_groups += 1;
            // Pull every chunk of the group.
            let mut chunks: Vec<(Fingerprint, bytes::Bytes)> = Vec::new();
            for &id in ids {
                let container = self.archival_mut().read(id)?;
                chunks.extend(container.drain_chunks());
            }
            // Repack in recipe read order; unreferenced chunks last (they
            // belong to already-expired references and will die with the
            // tag group).
            chunks.sort_by_key(|(fp, _)| order.get(fp).copied().unwrap_or((u32::MAX, u32::MAX)));
            // Rewrite the group: original IDs are reused in order, and if
            // the new packing order needs more containers than the group
            // had (variable-size chunks repack imperfectly), fresh archival
            // IDs are allocated under the same tag.
            let group_ids = ids.clone();
            let mut next_reuse = 0usize;
            let mut current: Option<Container> = None;
            // Seal a finished container: `replace` for reused IDs, `write`
            // for freshly allocated ones.
            let seal = |store_self: &mut Self, c: Container, reused: bool| {
                if reused {
                    store_self.archival_mut().replace(c)
                } else {
                    store_self.archival_mut().write(c)
                }
            };
            let mut current_reused = true;
            for (fp, data) in chunks {
                report.chunks_moved += 1;
                loop {
                    let container = match current.as_mut() {
                        Some(c) => c,
                        None => {
                            let (id, reused) = if next_reuse < group_ids.len() {
                                next_reuse += 1;
                                (group_ids[next_reuse - 1], true)
                            } else {
                                (self.alloc_archival_id(), false)
                            };
                            let mut c = Container::new(id, capacity);
                            c.set_version_tag(tag);
                            current_reused = reused;
                            current.insert(c)
                        }
                    };
                    if container.try_add(fp, &data) {
                        relocations.insert(fp, container.id());
                        break;
                    }
                    if let Some(full) = current.take() {
                        report.containers_rewritten += 1;
                        seal(self, full, current_reused)?;
                    }
                }
            }
            if let Some(last) = current.take() {
                report.containers_rewritten += 1;
                seal(self, last, current_reused)?;
            }
            // Drop any group containers left empty by tighter packing.
            for &id in &group_ids[next_reuse..] {
                self.archival_mut().remove(id)?;
            }
        }

        // Point every recipe at the new homes.
        report.recipe_entries_updated = self.apply_archival_relocations(&relocations);
        Ok(report)
    }

    pub(crate) fn apply_archival_relocations(
        &mut self,
        relocations: &HashMap<Fingerprint, ContainerId>,
    ) -> u64 {
        let mut updated = 0;
        for version in self.recipes().versions() {
            let Some(recipe) = self.recipes_mut_internal().get_mut(version) else {
                continue;
            };
            for entry in recipe.entries_mut() {
                if entry.cid.as_archival().is_some() {
                    if let Some(&new_cid) = relocations.get(&entry.fingerprint) {
                        let new = Cid::archival(new_cid);
                        if entry.cid != new {
                            entry.cid = new;
                            updated += 1;
                        }
                    }
                }
            }
        }
        updated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiDeStoreConfig;
    use hidestore_restore::Faa;
    use hidestore_storage::{MemoryContainerStore, VersionId};

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn churned_system() -> (HiDeStore<MemoryContainerStore>, Vec<Vec<u8>>) {
        let mut hds = HiDeStore::new(
            HiDeStoreConfig {
                avg_chunk_size: 1024,
                // Small containers so each version's cold set spans several,
                // giving the recluster pass real multi-container tag groups.
                container_capacity: 8 * 1024,
                ..HiDeStoreConfig::small_for_tests()
            },
            MemoryContainerStore::new(),
        );
        let mut snapshots = Vec::new();
        let mut data = noise(200_000, 41);
        for round in 0..8u64 {
            hds.backup(&data).unwrap();
            snapshots.push(data.clone());
            let start = (round as usize * 23_000) % 150_000;
            data[start..start + 20_000].copy_from_slice(&noise(20_000, 900 + round));
        }
        (hds, snapshots)
    }

    #[test]
    fn recluster_preserves_every_version() {
        let (mut hds, snapshots) = churned_system();
        let report = hds.recluster_archival().unwrap();
        assert!(report.chunks_moved > 0, "{report:?}");
        for (i, snapshot) in snapshots.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 18),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, snapshot, "V{} after recluster", i + 1);
        }
    }

    #[test]
    fn recluster_improves_or_preserves_old_version_reads() {
        let (mut hds, _) = churned_system();
        let reads = |hds: &mut HiDeStore<MemoryContainerStore>, v: u32| {
            let mut cache = Faa::new(1 << 18);
            hds.restore(VersionId::new(v), &mut cache, &mut std::io::sink())
                .unwrap()
                .container_reads
        };
        hds.flatten_recipes();
        let before: u64 = (1..=4u32).map(|v| reads(&mut hds, v)).sum();
        hds.recluster_archival().unwrap();
        let after: u64 = (1..=4u32).map(|v| reads(&mut hds, v)).sum();
        assert!(
            after <= before,
            "old-version reads should not regress: {before} -> {after}"
        );
    }

    #[test]
    fn recluster_is_space_neutral() {
        let (mut hds, _) = churned_system();
        let live_before: u64 = {
            let store = hds.archival();
            store.total_live_bytes()
        };
        hds.recluster_archival().unwrap();
        assert_eq!(hds.archival().total_live_bytes(), live_before);
    }

    #[test]
    fn deletion_still_safe_after_recluster() {
        let (mut hds, snapshots) = churned_system();
        hds.recluster_archival().unwrap();
        hds.delete_expired(VersionId::new(4)).unwrap();
        for v in 5..=8u32 {
            let mut out = Vec::new();
            hds.restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
                .unwrap();
            assert_eq!(&out, &snapshots[(v - 1) as usize], "survivor V{v}");
        }
    }

    #[test]
    fn recluster_twice_is_stable() {
        let (mut hds, snapshots) = churned_system();
        hds.recluster_archival().unwrap();
        let second = hds.recluster_archival().unwrap();
        // The second pass finds everything already in order: entries may be
        // rewritten but restores stay correct.
        let _ = second;
        let mut out = Vec::new();
        hds.restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, snapshots[0]);
    }
}
