//! Out-of-line deduplication schemes — an extension beyond the paper.
//!
//! HiDeStore deduplicates *inline* and keeps the newest version hot; two
//! related systems attack the same restore-locality goal from the other
//! side and are reproduced here as first-class schemes selected by
//! [`DedupMode`] (`init --scheme`, persisted in the repository config):
//!
//! * **RevDedup** (`--scheme revdedup`) — coarse *segment-level* dedup on
//!   ingest: the chunk stream is cut into content-defined segments (a chunk
//!   whose fingerprint matches an anchor mask ends a segment) and a segment
//!   is deduplicated only when it matches a whole segment of the previous
//!   version. The newest backup therefore lands almost sequentially in its
//!   own containers; the fine-grained duplicates this leaves behind are
//!   removed later by [`HiDeStore::out_of_line_pass`], which *reverse*
//!   deduplicates old copies against the newest version's layout.
//! * **Hybrid inline/out-of-line** (`--scheme hybrid`) — exact chunk-level
//!   inline dedup, but only against an in-memory map of the *previous*
//!   version (no on-disk fingerprint index); duplicates against older
//!   versions are deferred to the same out-of-line pass.
//!
//! Both schemes write chunks straight into version-tagged archival
//! containers and emit recipes with direct archival references — the active
//! pool, fingerprint cache, and recipe chains stay empty/unused, so
//! restore, persistence, and fsck work unchanged.
//!
//! ## Crash safety of the out-of-line pass
//!
//! The pass never overwrites a container in place. Shrunken containers are
//! rebuilt under **fresh** archival IDs (uncommitted until the next saved
//! transaction — a crash quarantines them as residue and the committed
//! layout still restores every version), and old containers are removed
//! through the store's deferred-removal queue, which the next
//! `save_repository` journals atomically with the repointed recipes.

use std::collections::HashMap;
use std::time::Instant;

use hidestore_hash::{Fingerprint, FINGERPRINT_LEN};
use hidestore_storage::{
    Cid, Container, ContainerId, ContainerStore, Recipe, RecipeEntry, RecipeStore, VersionId,
};

use crate::config::DedupMode;
use crate::stats::{DeletionReport, HiDeStoreVersionStats};
use crate::system::{HiDeStore, HiDeStoreError};

/// Average chunks per RevDedup segment: a chunk whose fingerprint prefix
/// matches this mask ends the segment, so segments average `MASK + 1`
/// chunks. Anchoring on content (fingerprints) keeps segment boundaries
/// stable across the insertions and deletions of evolving versions.
const SEGMENT_ANCHOR_MASK: u64 = 0x7;

/// Cuts a fingerprint stream into content-defined segments (end-exclusive
/// ranges covering the whole stream in order).
pub(crate) fn segments_of(fps: &[Fingerprint]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, fp) in fps.iter().enumerate() {
        if fp.prefix64() & SEGMENT_ANCHOR_MASK == 0 {
            out.push(start..i + 1);
            start = i + 1;
        }
    }
    if start < fps.len() {
        out.push(start..fps.len());
    }
    out
}

/// A segment's identity: the hash of its chunk fingerprints in order.
pub(crate) fn segment_fingerprint(fps: &[Fingerprint]) -> Fingerprint {
    let mut buf = Vec::with_capacity(fps.len() * FINGERPRINT_LEN);
    for fp in fps {
        buf.extend_from_slice(fp.as_bytes());
    }
    Fingerprint::of(&buf)
}

/// In-memory inline-dedup state for the out-of-line schemes: what the
/// *newest* ingested version looks like. Derived state — rebuilt from the
/// newest recipe on open and after every backup or maintenance pass, never
/// persisted.
#[derive(Debug, Default)]
pub(crate) struct SchemeState {
    /// RevDedup: segment fingerprint → that segment's chunk run
    /// `(fingerprint, size, container)` in the newest version.
    segments: HashMap<Fingerprint, Vec<(Fingerprint, u32, ContainerId)>>,
    /// Hybrid: newest version's chunk fingerprint → container.
    chunks: HashMap<Fingerprint, ContainerId>,
}

impl SchemeState {
    /// Rebuilds the state from the newest retained recipe. Segmentation is
    /// deterministic over the fingerprint stream, so this reproduces exactly
    /// the table the ingest path left behind.
    pub(crate) fn rebuild(mode: DedupMode, recipes: &RecipeStore) -> SchemeState {
        let mut state = SchemeState::default();
        if !mode.is_out_of_line() {
            return state;
        }
        let Some(recipe) = recipes.latest_version().and_then(|v| recipes.get(v)) else {
            return state;
        };
        let entries = recipe.entries();
        match mode {
            DedupMode::RevDedup => {
                let fps: Vec<Fingerprint> = entries.iter().map(|e| e.fingerprint).collect();
                for range in segments_of(&fps) {
                    // Only fully archival-resident segments are reusable
                    // (always the case for scheme-written recipes).
                    let run: Option<Vec<_>> = entries[range.clone()]
                        .iter()
                        .map(|e| e.cid.as_archival().map(|cid| (e.fingerprint, e.size, cid)))
                        .collect();
                    if let Some(run) = run {
                        state.segments.insert(segment_fingerprint(&fps[range]), run);
                    }
                }
            }
            DedupMode::Hybrid => {
                for e in entries {
                    if let Some(cid) = e.cid.as_archival() {
                        state.chunks.insert(e.fingerprint, cid);
                    }
                }
            }
            DedupMode::HiDeStore => {}
        }
        state
    }

    /// Approximate memory footprint of the inline tables (the scheme
    /// equivalent of HiDeStore's fingerprint-cache bytes).
    pub(crate) fn table_bytes(&self) -> u64 {
        let seg_entry = FINGERPRINT_LEN + std::mem::size_of::<(Fingerprint, u32, ContainerId)>();
        let chunk_entry = FINGERPRINT_LEN + std::mem::size_of::<ContainerId>();
        let seg: usize = self
            .segments
            .values()
            .map(|run| FINGERPRINT_LEN + run.len() * seg_entry)
            .sum();
        (seg + self.chunks.len() * chunk_entry) as u64
    }
}

/// Outcome of [`HiDeStore::out_of_line_pass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutOfLineReport {
    /// Duplicate chunk copies removed from the archival containers.
    pub duplicate_chunks_removed: u64,
    /// Bytes those duplicates occupied.
    pub bytes_reclaimed: u64,
    /// Replacement containers written (under fresh IDs).
    pub containers_rewritten: u64,
    /// Containers dropped entirely (every chunk was a duplicate copy).
    pub containers_removed: u64,
    /// Recipe entries repointed at canonical chunk locations.
    pub recipe_entries_updated: u64,
    /// Bytes of *surviving* chunks copied while rebuilding containers.
    /// Rewrite traffic, not new user data — surfaced separately in stats.
    pub rewritten_bytes: u64,
    /// Wall-clock time of the pass.
    pub elapsed: std::time::Duration,
}

impl<S: ContainerStore> HiDeStore<S> {
    /// Ingest path for the out-of-line schemes: inline dedup against the
    /// previous version only (whole segments for RevDedup, single chunks
    /// for hybrid), everything else written straight into version-tagged
    /// archival containers, and a recipe of direct archival references.
    pub(crate) fn run_backup_out_of_line<'a>(
        &mut self,
        fingerprints: &[Fingerprint],
        sizes: &[u32],
        content: &impl Fn(usize) -> std::borrow::Cow<'a, [u8]>,
    ) -> Result<HiDeStoreVersionStats, HiDeStoreError> {
        let mode = self.config().scheme;
        let version = self.alloc_version();
        let logical_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();

        // Inline classification against the previous version's tables.
        let mut placements: Vec<Option<ContainerId>> = vec![None; fingerprints.len()];
        let mut lookup_requests = 0u64;
        match mode {
            DedupMode::RevDedup => {
                for range in segments_of(fingerprints) {
                    lookup_requests += 1;
                    let seg_fp = segment_fingerprint(&fingerprints[range.clone()]);
                    let Some(run) = self.scheme_state().segments.get(&seg_fp) else {
                        continue;
                    };
                    // Guard against segment-hash collisions: the run must
                    // match chunk for chunk before it is reused.
                    if run.len() == range.len()
                        && run
                            .iter()
                            .zip(range.clone())
                            .all(|(&(fp, size, _), i)| fp == fingerprints[i] && size == sizes[i])
                    {
                        for (j, i) in range.enumerate() {
                            placements[i] = Some(run[j].2);
                        }
                    }
                }
            }
            DedupMode::Hybrid => {
                for (i, fp) in fingerprints.iter().enumerate() {
                    lookup_requests += 1;
                    placements[i] = self.scheme_state().chunks.get(fp).copied();
                }
            }
            // `run_backup` routes HiDeStore through the inline pipeline.
            DedupMode::HiDeStore => unreachable!("inline scheme in out-of-line ingest"),
        }

        // Store pass: new chunks go into fresh archival containers tagged
        // with this version; duplicates within the version reuse the copy
        // stored moments ago.
        let capacity = self.config().container_capacity;
        let mut recipe = Recipe::new(version);
        let mut stored_bytes = 0u64;
        let mut unique_chunks = 0u64;
        let mut sealed = 0u64;
        let mut open: Option<Container> = None;
        let mut stored: HashMap<Fingerprint, ContainerId> = HashMap::new();
        for (i, (&fp, &size)) in fingerprints.iter().zip(sizes).enumerate() {
            let cid = match placements[i].or_else(|| stored.get(&fp).copied()) {
                Some(cid) => cid,
                None => {
                    let data = content(i);
                    let cid = loop {
                        let container = match open.as_mut() {
                            Some(c) => c,
                            None => {
                                let id = self.alloc_archival_id();
                                let mut c = Container::new(id, capacity);
                                c.set_version_tag(version.get());
                                open.insert(c)
                            }
                        };
                        if container.try_add(fp, &data) {
                            break container.id();
                        }
                        if let Some(full) = open.take() {
                            self.archival_mut().write(full)?;
                            sealed += 1;
                        }
                    };
                    stored.insert(fp, cid);
                    stored_bytes += size as u64;
                    unique_chunks += 1;
                    cid
                }
            };
            recipe.push(RecipeEntry::new(fp, size, Cid::archival(cid)));
        }
        if let Some(last) = open.take() {
            if !last.is_empty() {
                self.archival_mut().write(last)?;
                sealed += 1;
            }
        }
        self.recipes_mut_internal().insert(recipe);
        // The version just ingested becomes the next one's inline target.
        self.rebuild_scheme_state();

        let stats = HiDeStoreVersionStats {
            version,
            logical_bytes,
            stored_bytes,
            chunks: fingerprints.len() as u64,
            unique_chunks,
            cold_chunks: 0,
            cold_bytes: 0,
            archival_containers_sealed: sealed,
            containers_merged: 0,
            lookup_requests,
            fingerprint_cache_bytes: self.scheme_state().table_bytes(),
            recipe_update_time: std::time::Duration::ZERO,
            chunk_move_time: std::time::Duration::ZERO,
        };
        self.record_version_stats(stats);
        Ok(stats)
    }

    /// Runs the out-of-line deduplication pass (RevDedup's *reverse*
    /// deduplication; the hybrid scheme's deferred fine-grained dedup):
    /// every fingerprint keeps exactly one canonical copy — the **newest**
    /// version's — duplicate copies in older containers are dropped,
    /// containers that shrank are rebuilt under fresh IDs, and all recipes
    /// are repointed. The newest backup's physical layout is untouched, so
    /// its restore locality is preserved; the pass trades a burst of
    /// offline I/O for the deduplication the schemes skipped at ingest.
    ///
    /// Crash-safe by construction (see module docs): replacement containers
    /// use fresh uncommitted IDs and removals are deferred, so an interrupted
    /// pass rolls back to the last saved boundary.
    ///
    /// # Errors
    ///
    /// Fails for repositories initialised with `--scheme hidestore` (which
    /// deduplicates inline and has nothing to do out of line) and on
    /// container-store I/O errors.
    pub fn out_of_line_pass(&mut self) -> Result<OutOfLineReport, HiDeStoreError> {
        if !self.config().scheme.is_out_of_line() {
            return Err(HiDeStoreError::Config(
                "scheme \"hidestore\" deduplicates inline and has no out-of-line pass \
                 (init with --scheme revdedup or hybrid)"
                    .into(),
            ));
        }
        let start = Instant::now();
        let mut report = OutOfLineReport::default();

        // Canonical location per fingerprint: the newest version's copy
        // wins, so reverse dedup preserves the latest backup's layout.
        let mut canonical: HashMap<Fingerprint, ContainerId> = HashMap::new();
        let mut versions = self.recipes().versions();
        versions.reverse();
        for &v in &versions {
            let Some(recipe) = self.recipes().get(v) else {
                continue;
            };
            for entry in recipe.entries() {
                if let Some(cid) = entry.cid.as_archival() {
                    canonical.entry(entry.fingerprint).or_insert(cid);
                }
            }
        }

        // Sweep the containers: a chunk survives only where it is some
        // fingerprint's canonical home. Containers that lost chunks are
        // rebuilt under fresh IDs; fully duplicate ones are dropped.
        let capacity = self.config().container_capacity;
        let mut relocations: HashMap<Fingerprint, ContainerId> = HashMap::new();
        for id in self.archival_mut().ids() {
            let container = self.archival_mut().read(id)?;
            let tag = container.version_tag();
            let chunks = container.drain_chunks();
            drop(container);
            let (keep, dropped): (Vec<_>, Vec<_>) = chunks
                .into_iter()
                .partition(|(fp, _)| canonical.get(fp) == Some(&id));
            if dropped.is_empty() {
                continue;
            }
            report.duplicate_chunks_removed += dropped.len() as u64;
            report.bytes_reclaimed += dropped.iter().map(|(_, d)| d.len() as u64).sum::<u64>();
            if keep.is_empty() {
                self.archival_mut().remove(id)?;
                report.containers_removed += 1;
                continue;
            }
            let mut open: Option<Container> = None;
            for (fp, data) in keep {
                report.rewritten_bytes += data.len() as u64;
                loop {
                    let replacement = match open.as_mut() {
                        Some(c) => c,
                        None => {
                            let fresh = self.alloc_archival_id();
                            let mut c = Container::new(fresh, capacity);
                            c.set_version_tag(tag);
                            open.insert(c)
                        }
                    };
                    if replacement.try_add(fp, &data) {
                        relocations.insert(fp, replacement.id());
                        break;
                    }
                    if let Some(full) = open.take() {
                        self.archival_mut().write(full)?;
                        report.containers_rewritten += 1;
                    }
                }
            }
            if let Some(last) = open.take() {
                self.archival_mut().write(last)?;
                report.containers_rewritten += 1;
            }
            self.archival_mut().remove(id)?;
        }

        // Repoint every archival recipe entry at its canonical — and
        // possibly relocated — home.
        canonical.extend(relocations);
        report.recipe_entries_updated = self.apply_archival_relocations(&canonical);

        self.add_out_of_line_rewritten_bytes(report.rewritten_bytes);
        self.rebuild_scheme_state();
        report.elapsed = start.elapsed();
        Ok(report)
    }

    /// §4.5 deletion for the out-of-line schemes. Tag-ranged container
    /// drops are unsafe here — newer versions deduplicate *inline* against
    /// older containers — so expiry is reference-based instead: recipes up
    /// to `up_to` are dropped, then every container no surviving recipe
    /// references is removed whole. Still no chunk-liveness detection; the
    /// out-of-line pass is what compacts partially dead containers.
    pub(crate) fn delete_expired_out_of_line(
        &mut self,
        up_to: VersionId,
    ) -> Result<DeletionReport, HiDeStoreError> {
        let start = Instant::now();
        let mut report = DeletionReport::default();
        for v in self.recipes().versions() {
            if v <= up_to {
                self.recipes_mut_internal().remove(v);
                report.versions_removed += 1;
            }
        }
        let mut referenced: std::collections::HashSet<ContainerId> =
            std::collections::HashSet::new();
        for recipe in self.recipes().iter() {
            for entry in recipe.entries() {
                if let Some(cid) = entry.cid.as_archival() {
                    referenced.insert(cid);
                }
            }
        }
        for id in self.archival_mut().ids() {
            if referenced.contains(&id) {
                continue;
            }
            let container = self.archival_mut().read(id)?;
            report.bytes_reclaimed += container.live_bytes() as u64;
            drop(container);
            self.archival_mut().remove(id)?;
            report.containers_dropped += 1;
        }
        report.elapsed = start.elapsed();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HiDeStoreConfig;
    use hidestore_restore::Faa;
    use hidestore_storage::MemoryContainerStore;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn evolve(data: &mut Vec<u8>, round: u64) {
        let start = (round as usize * 17_000) % (data.len().saturating_sub(9_000).max(1));
        let patch = noise(8_000.min(data.len() - start), 7_000 + round);
        data[start..start + patch.len()].copy_from_slice(&patch);
        data.extend_from_slice(&noise(1000, 9_000 + round));
    }

    fn system(mode: DedupMode) -> HiDeStore<MemoryContainerStore> {
        HiDeStore::new(
            HiDeStoreConfig::small_for_tests().with_scheme(mode),
            MemoryContainerStore::new(),
        )
    }

    fn versions(n: u64) -> Vec<Vec<u8>> {
        let mut data = noise(150_000, 31);
        let mut out = Vec::new();
        for round in 0..n {
            out.push(data.clone());
            evolve(&mut data, round);
        }
        out
    }

    /// The macos flapping pattern: an evolving base plus an extra block
    /// present only in every other version. The recurring extra chunks are
    /// re-stored on each reappearance (the previous version lacked them),
    /// which is exactly the duplication the out-of-line pass exists to
    /// reclaim.
    fn flapping_versions(n: u64) -> Vec<Vec<u8>> {
        let mut data = noise(120_000, 34);
        let extra = noise(40_000, 35);
        let mut out = Vec::new();
        for round in 0..n {
            let mut v = data.clone();
            if round % 2 == 0 {
                v.extend_from_slice(&extra);
            }
            out.push(v);
            evolve(&mut data, round);
        }
        out
    }

    fn restore_all(hds: &mut HiDeStore<MemoryContainerStore>, snapshots: &[Vec<u8>]) {
        for (i, snapshot) in snapshots.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 20),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, snapshot, "version {}", i + 1);
        }
    }

    #[test]
    fn segments_cover_stream_exactly_once() {
        let fps: Vec<Fingerprint> = (0..200).map(Fingerprint::synthetic).collect();
        let segs = segments_of(&fps);
        assert!(segs.len() > 1, "anchor mask should cut 200 chunks");
        let mut covered = 0;
        for seg in &segs {
            assert_eq!(seg.start, covered, "segments must be contiguous");
            covered = seg.end;
        }
        assert_eq!(covered, fps.len());
        // Deterministic: same stream, same cuts.
        assert_eq!(segs, segments_of(&fps));
    }

    #[test]
    fn revdedup_round_trips_and_dedups_identical_versions() {
        let mut hds = system(DedupMode::RevDedup);
        let data = noise(120_000, 32);
        let s1 = hds.backup(&data).unwrap();
        let s2 = hds.backup(&data).unwrap();
        assert!(s1.stored_bytes > 0);
        assert_eq!(s2.stored_bytes, 0, "identical version is all old segments");
        restore_all(&mut hds, &[data.clone(), data]);
    }

    #[test]
    fn revdedup_inline_is_coarser_than_exact() {
        let mut exact = system(DedupMode::Hybrid);
        let mut rev = system(DedupMode::RevDedup);
        for v in versions(6) {
            exact.backup(&v).unwrap();
            rev.backup(&v).unwrap();
        }
        // Segment-level dedup re-stores chunks near every edit; chunk-level
        // previous-version dedup does not.
        assert!(
            rev.run_stats().stored_bytes > exact.run_stats().stored_bytes,
            "revdedup {} vs hybrid {}",
            rev.run_stats().stored_bytes,
            exact.run_stats().stored_bytes
        );
    }

    #[test]
    fn out_of_line_pass_reclaims_duplicates_and_preserves_restores() {
        for mode in [DedupMode::RevDedup, DedupMode::Hybrid] {
            let mut hds = system(mode);
            let snapshots = flapping_versions(6);
            for v in &snapshots {
                hds.backup(v).unwrap();
            }
            let before = hds.archival().total_live_bytes();
            let report = hds.out_of_line_pass().unwrap();
            assert!(
                report.duplicate_chunks_removed > 0,
                "{mode}: flapping versions must leave duplicates"
            );
            assert_eq!(
                hds.archival().total_live_bytes(),
                before - report.bytes_reclaimed,
                "{mode}: reclaim accounting"
            );
            assert_eq!(
                hds.out_of_line_rewritten_bytes(),
                report.rewritten_bytes,
                "{mode}: rewrite accounting"
            );
            restore_all(&mut hds, &snapshots);
        }
    }

    #[test]
    fn out_of_line_pass_is_idempotent() {
        let mut hds = system(DedupMode::Hybrid);
        let snapshots = versions(5);
        for v in &snapshots {
            hds.backup(v).unwrap();
        }
        hds.out_of_line_pass().unwrap();
        let second = hds.out_of_line_pass().unwrap();
        assert_eq!(second.duplicate_chunks_removed, 0, "{second:?}");
        assert_eq!(second.containers_rewritten, 0, "{second:?}");
        restore_all(&mut hds, &snapshots);
    }

    #[test]
    fn hybrid_post_pass_matches_exact_dedup() {
        let mut hds = system(DedupMode::Hybrid);
        let snapshots = flapping_versions(6);
        let mut unique: std::collections::HashMap<Fingerprint, u64> =
            std::collections::HashMap::new();
        for v in &snapshots {
            hds.backup(v).unwrap();
        }
        hds.out_of_line_pass().unwrap();
        // Exact dedup lower bound: every distinct chunk exactly once.
        for recipe in hds.recipes().iter() {
            for e in recipe.entries() {
                unique.insert(e.fingerprint, e.size as u64);
            }
        }
        let exact_bytes: u64 = unique.values().sum();
        assert_eq!(
            hds.archival().total_live_bytes(),
            exact_bytes,
            "after the pass every distinct chunk is stored exactly once"
        );
    }

    #[test]
    fn newest_version_layout_untouched_by_pass() {
        let mut hds = system(DedupMode::RevDedup);
        let snapshots = versions(5);
        for v in &snapshots {
            hds.backup(v).unwrap();
        }
        let newest = *hds.versions().last().unwrap();
        let reads = |hds: &mut HiDeStore<MemoryContainerStore>| {
            hds.archival_mut().reset_stats();
            hds.restore(newest, &mut Faa::new(1 << 20), &mut std::io::sink())
                .unwrap();
            hds.archival().stats().container_reads
        };
        let before = reads(&mut hds);
        hds.out_of_line_pass().unwrap();
        let after = reads(&mut hds);
        assert!(
            after <= before,
            "reverse dedup must not hurt the newest version: {before} -> {after}"
        );
    }

    #[test]
    fn out_of_line_delete_preserves_survivors() {
        for mode in [DedupMode::RevDedup, DedupMode::Hybrid] {
            let mut hds = system(mode);
            let snapshots = versions(6);
            for v in &snapshots {
                hds.backup(v).unwrap();
            }
            hds.out_of_line_pass().unwrap();
            let report = hds.delete_expired(VersionId::new(3)).unwrap();
            assert_eq!(report.versions_removed, 3);
            for v in 4..=6u32 {
                let mut out = Vec::new();
                hds.restore(VersionId::new(v), &mut Faa::new(1 << 20), &mut out)
                    .unwrap();
                assert_eq!(&out, &snapshots[(v - 1) as usize], "{mode}: survivor V{v}");
            }
        }
    }

    #[test]
    fn inline_scheme_rejects_pass() {
        let mut hds = system(DedupMode::HiDeStore);
        hds.backup(&noise(50_000, 33)).unwrap();
        let err = hds.out_of_line_pass().unwrap_err();
        assert!(matches!(err, HiDeStoreError::Config(_)), "{err}");
    }

    #[test]
    fn scheme_backups_keep_pool_and_cache_empty() {
        for mode in [DedupMode::RevDedup, DedupMode::Hybrid] {
            let mut hds = system(mode);
            for v in versions(3) {
                hds.backup(&v).unwrap();
            }
            assert_eq!(hds.pool().container_count(), 0, "{mode}");
            for recipe in hds.recipes().iter() {
                for e in recipe.entries() {
                    assert!(e.cid.as_archival().is_some(), "{mode}: direct refs only");
                }
            }
        }
    }
}
