//! HiDeStore statistics: deduplication accounting plus the overhead
//! latencies of Figure 12 and the deletion report of §5.5.

use std::time::Duration;

use hidestore_storage::VersionId;

/// Statistics for one HiDeStore backup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HiDeStoreVersionStats {
    /// The version backed up.
    pub version: VersionId,
    /// Logical bytes of the stream.
    pub logical_bytes: u64,
    /// Bytes of new unique chunks written into active containers.
    pub stored_bytes: u64,
    /// Chunks in the stream.
    pub chunks: u64,
    /// New unique chunks.
    pub unique_chunks: u64,
    /// Cold chunks demoted to archival containers at version end.
    pub cold_chunks: u64,
    /// Bytes demoted.
    pub cold_bytes: u64,
    /// Archival containers sealed at this version end.
    pub archival_containers_sealed: u64,
    /// Sparse active containers merged during compaction.
    pub containers_merged: u64,
    /// Equivalent index-lookup requests spent prefetching the previous
    /// recipe into `T1` (Figure 9's unit; §5.2.2).
    pub lookup_requests: u64,
    /// Fingerprint-cache footprint after this version. This is *transient
    /// working memory* bounded by two versions' metadata (§4.1), not a
    /// persistent index table: HiDeStore's Figure 10 contribution is zero
    /// because the previous recipe doubles as its "index".
    pub fingerprint_cache_bytes: u64,
    /// Time spent updating the previous recipe(s) (Figure 12).
    pub recipe_update_time: Duration,
    /// Time spent demoting cold chunks and merging containers (Figure 12).
    pub chunk_move_time: Duration,
}

impl HiDeStoreVersionStats {
    /// Fraction of this version's bytes eliminated by deduplication.
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
    }

    /// Lookup requests per GB of logical data (Figure 9 metric).
    pub fn lookups_per_gb(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        self.lookup_requests as f64 / (self.logical_bytes as f64 / (1024.0 * 1024.0 * 1024.0))
    }

    /// Fingerprint-cache bytes per MB of logical data. HiDeStore's
    /// *persistent* index overhead (the paper's Figure 10 metric) is zero;
    /// this reports the bounded working-memory cost for completeness.
    pub fn cache_bytes_per_mb(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        self.fingerprint_cache_bytes as f64 / (self.logical_bytes as f64 / (1024.0 * 1024.0))
    }
}

/// Cumulative statistics across a HiDeStore run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HiDeStoreRunStats {
    /// Total logical bytes backed up.
    pub logical_bytes: u64,
    /// Total bytes physically written as unique chunks.
    pub stored_bytes: u64,
    /// Total chunks processed.
    pub chunks: u64,
    /// Versions backed up.
    pub versions: u32,
}

impl HiDeStoreRunStats {
    /// Deduplication ratio: eliminated bytes over total bytes (Figure 8).
    /// HiDeStore never rewrites duplicates, so this matches exact
    /// deduplication up to cold chunks that recur after leaving the cache.
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
    }

    /// Accumulates one version.
    pub fn absorb(&mut self, v: &HiDeStoreVersionStats) {
        self.logical_bytes += v.logical_bytes;
        self.stored_bytes += v.stored_bytes;
        self.chunks += v.chunks;
        self.versions += 1;
    }
}

/// Outcome of a repository integrity scrub ([`crate::HiDeStore::scrub`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Archival containers read and parsed.
    pub containers_checked: u64,
    /// Chunks whose content was re-hashed and compared to the fingerprint.
    pub chunks_checked: u64,
    /// Recipes whose chains resolved end to end.
    pub recipes_checked: u64,
    /// Chunks whose content no longer matches their fingerprint.
    pub corrupt_chunks: Vec<(u32, String)>,
}

impl ScrubReport {
    /// Whether the repository passed with no corruption.
    pub fn is_clean(&self) -> bool {
        self.corrupt_chunks.is_empty()
    }
}

/// Outcome of expiring old versions (§4.5 / §5.5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeletionReport {
    /// Versions whose recipes were removed.
    pub versions_removed: u32,
    /// Archival containers dropped wholesale by version tag.
    pub containers_dropped: u64,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
    /// Wall-clock time of the whole deletion.
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_stats_dedup_ratio() {
        let mut run = HiDeStoreRunStats::default();
        run.absorb(&HiDeStoreVersionStats {
            version: VersionId::new(1),
            logical_bytes: 1000,
            stored_bytes: 1000,
            chunks: 10,
            unique_chunks: 10,
            cold_chunks: 0,
            cold_bytes: 0,
            archival_containers_sealed: 0,
            containers_merged: 0,
            lookup_requests: 0,
            fingerprint_cache_bytes: 280,
            recipe_update_time: Duration::ZERO,
            chunk_move_time: Duration::ZERO,
        });
        run.absorb(&HiDeStoreVersionStats {
            version: VersionId::new(2),
            logical_bytes: 1000,
            stored_bytes: 0,
            chunks: 10,
            unique_chunks: 0,
            cold_chunks: 0,
            cold_bytes: 0,
            archival_containers_sealed: 0,
            containers_merged: 0,
            lookup_requests: 1,
            fingerprint_cache_bytes: 280,
            recipe_update_time: Duration::ZERO,
            chunk_move_time: Duration::ZERO,
        });
        assert!((run.dedup_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(run.versions, 2);
    }

    #[test]
    fn per_version_metrics_normalize() {
        let v = HiDeStoreVersionStats {
            version: VersionId::new(1),
            logical_bytes: 1 << 30,
            stored_bytes: 0,
            chunks: 0,
            unique_chunks: 0,
            cold_chunks: 0,
            cold_bytes: 0,
            archival_containers_sealed: 0,
            containers_merged: 0,
            lookup_requests: 250,
            fingerprint_cache_bytes: 2 << 20,
            recipe_update_time: Duration::ZERO,
            chunk_move_time: Duration::ZERO,
        };
        assert!((v.lookups_per_gb() - 250.0).abs() < 1e-9);
        assert!((v.cache_bytes_per_mb() - 2048.0).abs() < 1e-9);
    }
}
