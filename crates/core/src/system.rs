//! The HiDeStore system: backup, restore, flatten, delete.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::io::Write;
use std::time::Instant;

use hidestore_chunking::{chunk_spans, Chunker};
use hidestore_hash::Fingerprint;
use hidestore_restore::{
    restore_staged, RestoreCache, RestoreConcurrency, RestoreEntry, RestoreError, RestoreReport,
};
use hidestore_storage::{
    Cid, Container, ContainerId, ContainerStore, Recipe, RecipeEntry, RecipeStore, StorageError,
    VersionId,
};

use crate::active::ActivePool;
use crate::cache::{CacheEntry, Classification, FingerprintCache};
use crate::chain::{self, ResolveError};
use crate::composite::CompositeStore;
use crate::config::HiDeStoreConfig;
use crate::persist::{QuarantineEntry, QuarantinedArtifact};
use crate::scheme::SchemeState;
use crate::stats::{DeletionReport, HiDeStoreRunStats, HiDeStoreVersionStats, ScrubReport};

/// Chunks per batch handed between the staged pipeline's threads. Purely a
/// hand-off granularity — the spans and fingerprints produced are identical
/// at any value.
const STAGED_SEGMENT_CHUNKS: usize = 256;

/// Errors from HiDeStore operations.
#[derive(Debug)]
pub enum HiDeStoreError {
    /// The archival container store failed.
    Storage(StorageError),
    /// Restore assembly failed.
    Restore(RestoreError),
    /// Recipe-chain resolution failed (indicates corruption).
    Resolve(ResolveError),
    /// An operation referenced a version with no recipe.
    UnknownVersion(VersionId),
    /// `delete_expired` was asked to remove the newest version(s).
    CannotExpireNewest {
        /// The requested expiry bound.
        requested: VersionId,
        /// The newest retained version.
        newest: VersionId,
    },
    /// The repository's configuration file is missing, unreadable, or
    /// invalid.
    Config(String),
    /// A [`crate::RepositoryHandle`] is poisoned: a failed mutation could
    /// not be rolled back by reopening from disk, so neither the in-memory
    /// state nor a fresh open can be trusted. Every subsequent operation on
    /// the handle fails fast with this error.
    Poisoned,
    /// A mutation was refused because it would push the repository past a
    /// tenant quota. Raised by the pre-mutation check of
    /// [`crate::RepositoryHandle::write_checked`], so nothing was changed
    /// and nothing needs rolling back.
    QuotaExceeded {
        /// Which limit was hit (`"bytes"` or `"versions"`).
        what: &'static str,
        /// Current usage before the refused mutation.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The requested version depends on artifacts that degraded-mode
    /// recovery quarantined; versions without quarantined dependencies
    /// still restore normally.
    PartialRestore {
        /// The version that cannot be fully restored.
        version: VersionId,
        /// The quarantined artifacts the version depends on.
        quarantined: Vec<QuarantinedArtifact>,
    },
}

impl fmt::Display for HiDeStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HiDeStoreError::Storage(e) => write!(f, "storage error: {e}"),
            HiDeStoreError::Restore(e) => write!(f, "restore error: {e}"),
            HiDeStoreError::Resolve(e) => write!(f, "recipe resolution error: {e}"),
            HiDeStoreError::UnknownVersion(v) => write!(f, "no recipe for version {v}"),
            HiDeStoreError::CannotExpireNewest { requested, newest } => write!(
                f,
                "cannot expire up to {requested}: newest version {newest} must be retained"
            ),
            HiDeStoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            HiDeStoreError::Poisoned => write!(
                f,
                "repository handle is poisoned: a failed mutation could not be \
                 rolled back by reopening from disk"
            ),
            HiDeStoreError::QuotaExceeded { what, used, limit } => {
                write!(f, "quota exceeded: {used} of {limit} {what} already used")
            }
            HiDeStoreError::PartialRestore {
                version,
                quarantined,
            } => {
                write!(f, "cannot restore {version}: depends on quarantined ")?;
                for (i, artifact) in quarantined.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{artifact}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for HiDeStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HiDeStoreError::Storage(e) => Some(e),
            HiDeStoreError::Restore(e) => Some(e),
            HiDeStoreError::Resolve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for HiDeStoreError {
    fn from(e: StorageError) -> Self {
        HiDeStoreError::Storage(e)
    }
}

impl From<RestoreError> for HiDeStoreError {
    fn from(e: RestoreError) -> Self {
        HiDeStoreError::Restore(e)
    }
}

impl From<ResolveError> for HiDeStoreError {
    fn from(e: ResolveError) -> Self {
        HiDeStoreError::Resolve(e)
    }
}

/// The HiDeStore backup system (see crate docs for the design summary and an
/// end-to-end example).
pub struct HiDeStore<S> {
    config: HiDeStoreConfig,
    chunker: Box<dyn Chunker + Send + Sync>,
    cache: FingerprintCache,
    pool: ActivePool,
    archival: S,
    recipes: RecipeStore,
    next_version: u32,
    next_archival_id: u32,
    run_stats: HiDeStoreRunStats,
    version_stats: Vec<HiDeStoreVersionStats>,
    quarantined: Vec<QuarantineEntry>,
    scheme: SchemeState,
    out_of_line_rewritten_bytes: u64,
}

impl<S: ContainerStore> HiDeStore<S> {
    /// Creates a HiDeStore instance over an archival container store.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`HiDeStoreConfig::validate`]).
    pub fn new(config: HiDeStoreConfig, archival: S) -> Self {
        config.validate();
        let chunker = config.chunker.build(config.avg_chunk_size);
        HiDeStore {
            chunker,
            cache: FingerprintCache::new(config.history_depth),
            pool: ActivePool::new(config.container_capacity),
            archival,
            recipes: RecipeStore::new(),
            next_version: 1,
            next_archival_id: 1,
            run_stats: HiDeStoreRunStats::default(),
            version_stats: Vec::new(),
            quarantined: Vec::new(),
            scheme: SchemeState::default(),
            out_of_line_rewritten_bytes: 0,
            config,
        }
    }

    /// Backs up one version.
    ///
    /// This is the whole §4 pipeline: classify against the double-hash
    /// cache, stage unique chunks in active containers, then at version end
    /// demote the cold set to archival containers, merge sparse active
    /// containers, and update the previous recipe(s).
    ///
    /// # Errors
    ///
    /// Fails if the archival store rejects a write.
    pub fn backup(&mut self, data: &[u8]) -> Result<HiDeStoreVersionStats, HiDeStoreError> {
        // Chunking + fingerprinting. With `config.threads > 1` the staged
        // pipeline overlaps chunking with hashing on dedicated threads;
        // either front end yields the same spans and fingerprints, so the
        // repository is identical at every thread count.
        let threads = self.config.effective_threads();
        let spans;
        let fingerprints;
        if threads > 1 {
            (spans, fingerprints) = hidestore_dedup::staged_chunk_fingerprints(
                data,
                self.chunker.as_mut(),
                STAGED_SEGMENT_CHUNKS,
                threads,
                self.config.queue_depth,
            );
        } else {
            spans = chunk_spans(self.chunker.as_mut(), data);
            fingerprints = hidestore_hash::fingerprints_parallel(
                data,
                &spans,
                hidestore_hash::default_hash_threads(),
            );
        }
        let sizes: Vec<u32> = spans.iter().map(|s| s.len() as u32).collect();
        self.run_backup(&fingerprints, &sizes, |i| {
            std::borrow::Cow::Borrowed(&data[spans[i].clone()])
        })
    }

    /// Backs up one version given as a chunk *trace* — `(fingerprint,
    /// size)` pairs with no content. Chunk bodies are synthesized filler
    /// (see [`hidestore_storage::Chunk::synthetic`]), enabling counted
    /// experiments at the paper's version counts (100+) without generating,
    /// chunking, or hashing real data; content verification does not apply.
    ///
    /// # Errors
    ///
    /// Fails if the archival store rejects a write.
    pub fn backup_trace(
        &mut self,
        trace: &[(Fingerprint, u32)],
    ) -> Result<HiDeStoreVersionStats, HiDeStoreError> {
        let fingerprints: Vec<Fingerprint> = trace.iter().map(|&(fp, _)| fp).collect();
        let sizes: Vec<u32> = trace.iter().map(|&(_, size)| size).collect();
        self.run_backup(&fingerprints, &sizes, |i| {
            std::borrow::Cow::Owned(
                hidestore_storage::Chunk::synthetic(trace[i].0, trace[i].1)
                    .data()
                    .to_vec(),
            )
        })
    }

    /// Backs up one version from a streaming reader, chunking incrementally
    /// so the whole version never needs to fit in memory (only unique chunk
    /// contents are retained, inside the active containers).
    ///
    /// Produces exactly the same repository state and statistics as
    /// [`HiDeStore::backup`] on the concatenated stream.
    ///
    /// # Errors
    ///
    /// Fails on read errors or if the archival store rejects a write.
    pub fn backup_reader<R: std::io::Read>(
        &mut self,
        mut reader: R,
    ) -> Result<HiDeStoreVersionStats, HiDeStoreError> {
        use hidestore_chunking::StreamChunker;
        // Incremental chunking: collect (fingerprint, size) plus content for
        // the classification pass. Content of duplicate chunks is dropped
        // immediately; only unique chunks reach the pool.
        let chunker = self.config.chunker.build(self.config.avg_chunk_size);
        let mut stream = StreamChunker::new(chunker);
        let mut pending: Vec<(Fingerprint, u32, bytes::Bytes)> = Vec::new();
        let mut buf = vec![0u8; 256 * 1024];
        loop {
            let n = reader
                .read(&mut buf)
                .map_err(|e| HiDeStoreError::Storage(StorageError::Io(e)))?;
            if n == 0 {
                break;
            }
            stream.push(&buf[..n], |chunk| {
                pending.push((
                    Fingerprint::of(chunk),
                    chunk.len() as u32,
                    bytes::Bytes::copy_from_slice(chunk),
                ));
            });
        }
        stream.finish(|chunk| {
            pending.push((
                Fingerprint::of(chunk),
                chunk.len() as u32,
                bytes::Bytes::copy_from_slice(chunk),
            ));
        });
        let fingerprints: Vec<Fingerprint> = pending.iter().map(|&(fp, _, _)| fp).collect();
        let sizes: Vec<u32> = pending.iter().map(|&(_, size, _)| size).collect();
        self.run_backup(&fingerprints, &sizes, |i| {
            std::borrow::Cow::Borrowed(pending[i].2.as_ref())
        })
    }

    fn run_backup<'a>(
        &mut self,
        fingerprints: &[Fingerprint],
        sizes: &[u32],
        content: impl Fn(usize) -> std::borrow::Cow<'a, [u8]>,
    ) -> Result<HiDeStoreVersionStats, HiDeStoreError> {
        // The out-of-line schemes (RevDedup, hybrid) bypass the cache/pool
        // pipeline entirely and ingest straight into archival containers.
        if self.config.scheme.is_out_of_line() {
            return self.run_backup_out_of_line(fingerprints, sizes, &content);
        }
        let version = VersionId::new(self.next_version);
        self.next_version += 1;
        let logical_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();

        // §5.2.2: HiDeStore's only index traffic is prefetching the previous
        // recipe into T1, charged in lookup-request units.
        let lookup_requests = version
            .prev()
            .and_then(|p| self.recipes.get(p))
            .map(|r| (r.encoded_len() as u64).div_ceil(self.config.lookup_unit_bytes as u64))
            .unwrap_or(0);

        let mut recipe = Recipe::new(version);
        let mut stored_bytes = 0u64;
        let mut unique_chunks = 0u64;
        let mut current_fps: HashSet<Fingerprint> = HashSet::with_capacity(fingerprints.len());
        // Stream-order ranks guide the end-of-version compaction (§4.2).
        let mut stream_rank: HashMap<Fingerprint, u32> = HashMap::with_capacity(fingerprints.len());

        for (i, (&fp, &size)) in fingerprints.iter().zip(sizes).enumerate() {
            stream_rank.entry(fp).or_insert(i as u32);
            match self.cache.classify(fp) {
                Classification::Unique => {
                    let chunk = content(i);
                    let active_cid = self.pool.add(fp, &chunk);
                    self.cache
                        .insert_current(fp, CacheEntry { size, active_cid });
                    stored_bytes += size as u64;
                    unique_chunks += 1;
                }
                Classification::HotFromPrevious(_) | Classification::AlreadyCurrent(_) => {}
            }
            current_fps.insert(fp);
            recipe.push(RecipeEntry::new(fp, size, Cid::ACTIVE));
        }
        self.recipes.insert(recipe);

        // End of version: demote the cold set and compact the pool.
        let move_start = Instant::now();
        let cold = self.cache.advance_version();
        let (moved, sealed) = self.demote_cold(&cold, version)?;
        let cold_bytes: u64 = cold.values().map(|e| e.size as u64).sum();
        let (compaction, relocations) = self
            .pool
            .compact_with_order(self.config.compact_threshold, &stream_rank);
        self.cache.apply_relocations(&relocations);
        let chunk_move_time = move_start.elapsed();

        // Update the previous recipe(s) (§4.3).
        let recipe_start = Instant::now();
        chain::update_previous_recipes(
            &mut self.recipes,
            version,
            &moved,
            &current_fps,
            self.config.history_depth,
        );
        let recipe_update_time = recipe_start.elapsed();

        let stats = HiDeStoreVersionStats {
            version,
            logical_bytes,
            stored_bytes,
            chunks: fingerprints.len() as u64,
            unique_chunks,
            cold_chunks: cold.len() as u64,
            cold_bytes,
            archival_containers_sealed: sealed,
            containers_merged: compaction.containers_merged,
            lookup_requests,
            fingerprint_cache_bytes: self.cache.memory_bytes() as u64,
            recipe_update_time,
            chunk_move_time,
        };
        self.run_stats.absorb(&stats);
        self.version_stats.push(stats);
        Ok(stats)
    }

    /// Moves the cold chunks out of the active pool into fresh archival
    /// containers tagged with `version` (§4.2's filter).
    fn demote_cold(
        &mut self,
        cold: &HashMap<Fingerprint, CacheEntry>,
        version: VersionId,
    ) -> Result<(HashMap<Fingerprint, ContainerId>, u64), HiDeStoreError> {
        let mut moved = HashMap::with_capacity(cold.len());
        if cold.is_empty() {
            return Ok((moved, 0));
        }
        // Deterministic demotion order approximating the old physical
        // layout: by (active container, fingerprint).
        let mut ordered: Vec<(u32, Fingerprint)> = cold
            .keys()
            .map(|fp| (self.pool.locate(fp).unwrap_or(u32::MAX), *fp))
            .collect();
        ordered.sort_unstable();

        // Copy-then-remove: contents are *copied* into archival containers
        // and the copies fully persisted before anything leaves the pool.
        // If a store write fails mid-demotion, already-written containers
        // are unreferenced orphans (harmless; a later deletion sweeps their
        // tag) and every retained version still restores from the intact
        // pool.
        let mut sealed = 0u64;
        let mut open: Option<Container> = None;
        let mut pending: Vec<Fingerprint> = Vec::with_capacity(cold.len());
        for (_, fp) in ordered {
            let data = match self.pool.get(&fp) {
                Some(d) => bytes::Bytes::copy_from_slice(d),
                // A cold entry not in the pool would indicate cache/pool
                // divergence; skip defensively (debug builds assert).
                None => {
                    debug_assert!(false, "cold chunk {fp} missing from pool");
                    continue;
                }
            };
            pending.push(fp);
            loop {
                let container = match open.as_mut() {
                    Some(c) => c,
                    None => {
                        let id = ContainerId::new(self.next_archival_id);
                        self.next_archival_id += 1;
                        let mut c = Container::new(id, self.config.container_capacity);
                        c.set_version_tag(version.get());
                        open.insert(c)
                    }
                };
                if container.try_add(fp, &data) {
                    moved.insert(fp, container.id());
                    break;
                }
                if let Some(full) = open.take() {
                    self.archival.write(full)?;
                    sealed += 1;
                }
            }
        }
        if let Some(last) = open.take() {
            if !last.is_empty() {
                self.archival.write(last)?;
                sealed += 1;
            }
        }
        // Every archival copy is durable: now the originals can leave the
        // active pool.
        for fp in pending {
            self.pool.remove(&fp);
        }
        Ok((moved, sealed))
    }

    /// Restores `version` through any restore cache, resolving the recipe
    /// chain and serving hot chunks from the active containers (§4.4).
    ///
    /// # Errors
    ///
    /// Fails for unknown versions, broken chains (corruption), or storage
    /// errors. When the repository was opened in degraded mode and the
    /// version depends on quarantined artifacts, fails with
    /// [`HiDeStoreError::PartialRestore`] naming them — versions without
    /// quarantined dependencies are unaffected.
    pub fn restore(
        &mut self,
        version: VersionId,
        cache: &mut dyn RestoreCache,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, HiDeStoreError>
    where
        S: Send,
    {
        let conc = self.config.restore;
        self.restore_with(version, cache, out, &conc)
    }

    /// Like [`HiDeStore::restore`] but with explicit restore-engine
    /// concurrency instead of the configured default. Restored bytes,
    /// container reads, and cache hit/miss accounting are identical at every
    /// setting; only [`RestoreReport::stage`] differs.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`HiDeStore::restore`].
    pub fn restore_with(
        &mut self,
        version: VersionId,
        cache: &mut dyn RestoreCache,
        out: &mut dyn Write,
        conc: &RestoreConcurrency,
    ) -> Result<RestoreReport, HiDeStoreError>
    where
        S: Send,
    {
        let entries = self.resolve_restore_entries(version)?;
        let mut view = CompositeStore::new(&mut self.archival, &self.pool);
        Ok(restore_staged(cache, &entries, &mut view, out, conc)?)
    }

    /// Restores `version` to `path`, staging the output in `<path>.tmp` and
    /// renaming it into place only on success, so a failed restore — e.g. a
    /// fault in the prefetcher's container reads — never leaves a partial
    /// output file behind.
    ///
    /// # Errors
    ///
    /// The errors of [`HiDeStore::restore_with`], plus I/O errors creating,
    /// writing, or renaming the output file. On error the temporary file is
    /// removed.
    pub fn restore_to_path(
        &mut self,
        version: VersionId,
        cache: &mut dyn RestoreCache,
        path: &std::path::Path,
        conc: &RestoreConcurrency,
    ) -> Result<RestoreReport, HiDeStoreError>
    where
        S: Send,
    {
        let tmp = path.with_extension("tmp");
        let io_err = |e: std::io::Error| HiDeStoreError::Storage(StorageError::Io(e));
        let result = (|| {
            let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
            let report = self.restore_with(version, cache, &mut file, conc)?;
            file.sync_all().map_err(io_err)?;
            drop(file);
            std::fs::rename(&tmp, path).map_err(io_err)?;
            Ok(report)
        })();
        if result.is_err() {
            // Best-effort cleanup; the original error is what matters.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Resolves `version`'s recipe chain into its flat restore plan without
    /// restoring anything: one [`RestoreEntry`] per recipe entry, in stream
    /// order, each carrying the container that physically holds the chunk.
    ///
    /// Layered consumers (the tree subsystem's subtree-selective restore,
    /// audits) use the plan to map byte ranges of the version stream onto
    /// the exact containers they must read.
    ///
    /// # Errors
    ///
    /// Exactly the resolution errors of [`HiDeStore::restore`]: unknown
    /// versions, broken chains, quarantined dependencies.
    pub fn restore_plan(
        &mut self,
        version: VersionId,
    ) -> Result<Vec<RestoreEntry>, HiDeStoreError> {
        self.resolve_restore_entries(version)
    }

    /// Restores an arbitrary slice of plan entries (from
    /// [`HiDeStore::restore_plan`]) through a restore cache, writing the
    /// chunks to `out` in slice order. Container reads are counted exactly
    /// like a full restore, so partial restores are provably proportional
    /// to the data they touch.
    ///
    /// # Errors
    ///
    /// Storage errors reading the referenced containers.
    pub fn restore_entries(
        &mut self,
        entries: &[RestoreEntry],
        cache: &mut dyn RestoreCache,
        out: &mut dyn Write,
        conc: &RestoreConcurrency,
    ) -> Result<RestoreReport, HiDeStoreError>
    where
        S: Send,
    {
        let mut view = CompositeStore::new(&mut self.archival, &self.pool);
        Ok(restore_staged(cache, entries, &mut view, out, conc)?)
    }

    /// Resolves `version`'s recipe chain into a flat restore plan, checking
    /// quarantined dependencies first (degraded-mode repositories).
    fn resolve_restore_entries(
        &mut self,
        version: VersionId,
    ) -> Result<Vec<RestoreEntry>, HiDeStoreError> {
        if self.recipes.get(version).is_none() {
            // A quarantined recipe is a *known* version whose recipe was
            // pulled, not an unknown one.
            if self
                .quarantined
                .iter()
                .any(|e| matches!(e.artifact, QuarantinedArtifact::Recipe(v) if v == version))
            {
                return Err(HiDeStoreError::PartialRestore {
                    version,
                    quarantined: vec![QuarantinedArtifact::Recipe(version)],
                });
            }
            return Err(HiDeStoreError::UnknownVersion(version));
        }
        let deps = self.quarantined_dependencies(version);
        if !deps.is_empty() {
            return Err(HiDeStoreError::PartialRestore {
                version,
                quarantined: deps,
            });
        }
        let plan = match chain::resolve_plan(&self.recipes, &self.pool, version) {
            Ok(plan) => plan,
            // A chunk missing from the pool while active containers sit in
            // quarantine: the pool snapshot lost that chunk with them.
            Err(e @ ResolveError::NotInPool(_)) => {
                let lost: Vec<QuarantinedArtifact> = self
                    .quarantined
                    .iter()
                    .filter(|q| matches!(q.artifact, QuarantinedArtifact::ActiveContainer(_)))
                    .map(|q| q.artifact.clone())
                    .collect();
                if lost.is_empty() {
                    return Err(e.into());
                }
                return Err(HiDeStoreError::PartialRestore {
                    version,
                    quarantined: lost,
                });
            }
            Err(e) => return Err(e.into()),
        };
        Ok(plan
            .into_iter()
            .map(|(fp, size, cid)| RestoreEntry::new(fp, size, cid))
            .collect())
    }

    /// Walks `version`'s recipe chain and collects every quarantined
    /// artifact it (transitively) depends on: quarantined chain-target
    /// recipes and quarantined archival containers referenced by entries.
    fn quarantined_dependencies(&self, version: VersionId) -> Vec<QuarantinedArtifact> {
        if self.quarantined.is_empty() {
            return Vec::new();
        }
        let lost_recipes: HashSet<VersionId> = self
            .quarantined
            .iter()
            .filter_map(|e| match e.artifact {
                QuarantinedArtifact::Recipe(v) => Some(v),
                _ => None,
            })
            .collect();
        let lost_archival: HashSet<ContainerId> = self
            .quarantined
            .iter()
            .filter_map(|e| match e.artifact {
                QuarantinedArtifact::ArchivalContainer(id) => Some(id),
                _ => None,
            })
            .collect();
        let mut deps: BTreeSet<QuarantinedArtifact> = BTreeSet::new();
        let mut visited: HashSet<VersionId> = HashSet::new();
        let mut stack = vec![version];
        while let Some(v) = stack.pop() {
            if !visited.insert(v) {
                continue;
            }
            if lost_recipes.contains(&v) {
                deps.insert(QuarantinedArtifact::Recipe(v));
                continue;
            }
            let Some(recipe) = self.recipes.get(v) else {
                continue;
            };
            for entry in recipe.entries() {
                if let Some(cid) = entry.cid.as_archival() {
                    if lost_archival.contains(&cid) {
                        deps.insert(QuarantinedArtifact::ArchivalContainer(cid));
                    }
                } else if let Some(w) = entry.cid.as_chained() {
                    stack.push(w);
                }
            }
        }
        deps.into_iter().collect()
    }

    /// Runs Algorithm 1 offline, collapsing all recipe chains. Returns the
    /// number of entries rewritten and the elapsed time (Figure 12's
    /// recipe-update overhead at restore time).
    pub fn flatten_recipes(&mut self) -> (u64, std::time::Duration) {
        let start = Instant::now();
        let updated = chain::flatten_recipes(&mut self.recipes);
        (updated, start.elapsed())
    }

    /// Expires all versions up to and including `up_to` (§4.5): recipes are
    /// dropped and archival containers whose version tag shows they hold
    /// only expired chunks are removed wholesale — no chunk-liveness
    /// detection, no garbage collection.
    ///
    /// # Errors
    ///
    /// Fails if `up_to` would expire the newest retained version, or if the
    /// store rejects a removal. After removal the surviving recipes are
    /// verified to reference no dropped container (corruption check).
    pub fn delete_expired(&mut self, up_to: VersionId) -> Result<DeletionReport, HiDeStoreError> {
        let newest = self
            .recipes
            .latest_version()
            .ok_or(HiDeStoreError::UnknownVersion(up_to))?;
        if up_to >= newest {
            return Err(HiDeStoreError::CannotExpireNewest {
                requested: up_to,
                newest,
            });
        }
        // The out-of-line schemes deduplicate newer versions against older
        // containers inline, so tag-ranged drops would tear live data; they
        // expire by reference counting whole containers instead.
        if self.config.scheme.is_out_of_line() {
            return self.delete_expired_out_of_line(up_to);
        }
        let start = Instant::now();
        let mut report = DeletionReport::default();
        for v in self.recipes.versions() {
            if v <= up_to {
                self.recipes.remove(v);
                report.versions_removed += 1;
            }
        }
        // Containers tagged t hold chunks whose most recent version is
        // t - history_depth; they are expired iff t - depth <= up_to.
        let tag_bound = up_to.get() + self.config.history_depth as u32;
        let mut dropped: HashSet<ContainerId> = HashSet::new();
        for id in self.archival.ids() {
            let container = self.archival.read(id)?;
            if container.version_tag() != 0 && container.version_tag() <= tag_bound {
                report.bytes_reclaimed += container.live_bytes() as u64;
                self.archival.remove(id)?;
                dropped.insert(id);
                report.containers_dropped += 1;
            }
        }
        // Corruption check: no surviving recipe may reference a dropped
        // container.
        for recipe in self.recipes.iter() {
            for entry in recipe.entries() {
                if let Some(cid) = entry.cid.as_archival() {
                    if dropped.contains(&cid) {
                        return Err(HiDeStoreError::Resolve(ResolveError::BrokenChain {
                            fingerprint: entry.fingerprint,
                            version: recipe.version(),
                        }));
                    }
                }
            }
        }
        report.elapsed = start.elapsed();
        Ok(report)
    }

    /// Verifies repository integrity: every archival and active container's
    /// chunks are re-hashed against their fingerprints, and every retained
    /// recipe's chain resolves to a physical location.
    ///
    /// # Errors
    ///
    /// Fails if a container cannot be read or a recipe chain is broken;
    /// content corruption (hash mismatch) is *reported*, not an error, so a
    /// scrub can enumerate all damage in one pass.
    pub fn scrub(&mut self) -> Result<ScrubReport, HiDeStoreError> {
        let mut report = ScrubReport::default();
        for id in self.archival.ids() {
            let container = self.archival.read(id)?;
            report.containers_checked += 1;
            for (fp, data) in container.iter() {
                report.chunks_checked += 1;
                if Fingerprint::of(data) != fp {
                    report.corrupt_chunks.push((id.get(), fp.to_string()));
                }
            }
        }
        for (_, container) in self.pool.containers() {
            report.containers_checked += 1;
            for (fp, data) in container.iter() {
                report.chunks_checked += 1;
                if Fingerprint::of(data) != fp {
                    report
                        .corrupt_chunks
                        .push((container.id().get(), fp.to_string()));
                }
            }
        }
        for version in self.recipes.versions() {
            chain::resolve_plan(&self.recipes, &self.pool, version)?;
            report.recipes_checked += 1;
        }
        Ok(report)
    }

    /// Cumulative statistics.
    pub fn run_stats(&self) -> HiDeStoreRunStats {
        self.run_stats
    }

    /// Cumulative bytes of surviving chunks *copied* while rebuilding
    /// containers during [`HiDeStore::out_of_line_pass`] runs. Rewrite
    /// traffic, not new user data — reported separately so ingest
    /// accounting stays honest. Like [`HiDeStore::run_stats`], this is a
    /// per-instance counter, not persisted across reopens.
    pub fn out_of_line_rewritten_bytes(&self) -> u64 {
        self.out_of_line_rewritten_bytes
    }

    /// Per-version statistics in backup order.
    pub fn version_stats(&self) -> &[HiDeStoreVersionStats] {
        &self.version_stats
    }

    /// Retained versions, ascending.
    pub fn versions(&self) -> Vec<VersionId> {
        self.recipes.versions()
    }

    /// The recipe store.
    pub fn recipes(&self) -> &RecipeStore {
        &self.recipes
    }

    /// The active container pool.
    pub fn pool(&self) -> &ActivePool {
        &self.pool
    }

    /// The archival container store.
    pub fn archival(&self) -> &S {
        &self.archival
    }

    /// Mutable archival store access (e.g. to reset I/O statistics between
    /// experiment phases).
    pub fn archival_mut(&mut self) -> &mut S {
        &mut self.archival
    }

    /// The configuration in force.
    pub fn config(&self) -> &HiDeStoreConfig {
        &self.config
    }

    /// Splits the system into simultaneous borrows of the pieces an external
    /// integrity checker needs: the recipe store, the active pool, and the
    /// fingerprint cache read-only, plus the archival store mutably (reads
    /// update its I/O statistics). This is the entry point `hidestore-fsck`
    /// audits through.
    pub fn integrity_views(&mut self) -> IntegrityViews<'_, S> {
        IntegrityViews {
            recipes: &self.recipes,
            pool: &self.pool,
            cache: &self.cache,
            history_depth: self.config.history_depth,
            next_version: self.next_version,
            quarantined: &self.quarantined,
            archival: &mut self.archival,
        }
    }

    /// Artifacts quarantined by degraded-mode recovery when this instance
    /// was opened from disk (empty for in-memory systems and clean opens).
    pub fn quarantine(&self) -> &[QuarantineEntry] {
        &self.quarantined
    }

    /// Records what degraded-mode recovery quarantined (see `persist`).
    pub(crate) fn set_quarantine(&mut self, quarantined: Vec<QuarantineEntry>) {
        self.quarantined = quarantined;
    }

    /// Swaps in persisted state on repository reopen (see `persist`).
    pub(crate) fn restore_persistent_state(
        &mut self,
        next_version: u32,
        next_archival_id: u32,
        recipes: RecipeStore,
        pool_containers: Vec<Container>,
    ) -> Result<(), HiDeStoreError> {
        self.pool = ActivePool::from_containers(self.config.container_capacity, pool_containers)
            .map_err(|msg| HiDeStoreError::Storage(StorageError::Corrupt(msg)))?;
        self.cache = crate::persist::rebuild_cache(&recipes, &self.pool, self.config.history_depth);
        self.recipes = recipes;
        self.next_version = next_version.max(1);
        self.next_archival_id = next_archival_id.max(1);
        self.rebuild_scheme_state();
        Ok(())
    }

    pub(crate) fn recipes_mut_internal(&mut self) -> &mut RecipeStore {
        &mut self.recipes
    }

    /// Allocates a fresh archival container ID (maintenance passes).
    pub(crate) fn alloc_archival_id(&mut self) -> ContainerId {
        let id = ContainerId::new(self.next_archival_id);
        self.next_archival_id += 1;
        id
    }

    pub(crate) fn next_version_raw(&self) -> u32 {
        self.next_version
    }

    pub(crate) fn next_archival_raw(&self) -> u32 {
        self.next_archival_id
    }

    /// Allocates the next version number (out-of-line ingest path).
    pub(crate) fn alloc_version(&mut self) -> VersionId {
        let v = VersionId::new(self.next_version);
        self.next_version += 1;
        v
    }

    /// Absorbs one version's statistics into the running totals.
    pub(crate) fn record_version_stats(&mut self, stats: HiDeStoreVersionStats) {
        self.run_stats.absorb(&stats);
        self.version_stats.push(stats);
    }

    /// The out-of-line schemes' inline-dedup tables (see `scheme`).
    pub(crate) fn scheme_state(&self) -> &SchemeState {
        &self.scheme
    }

    /// Re-derives the scheme tables from the newest retained recipe — after
    /// every out-of-line backup, maintenance pass, and repository open.
    pub(crate) fn rebuild_scheme_state(&mut self) {
        self.scheme = SchemeState::rebuild(self.config.scheme, &self.recipes);
    }

    /// Accumulates rewrite traffic from an out-of-line pass.
    pub(crate) fn add_out_of_line_rewritten_bytes(&mut self, bytes: u64) {
        self.out_of_line_rewritten_bytes += bytes;
    }
}

/// Simultaneous borrow-split views of a [`HiDeStore`]'s state, produced by
/// [`HiDeStore::integrity_views`] so a checker can walk recipes, pool, cache
/// and archival store together without cloning any of them.
pub struct IntegrityViews<'a, S> {
    /// The recipe store (all retained versions).
    pub recipes: &'a RecipeStore,
    /// The active container pool.
    pub pool: &'a ActivePool,
    /// The double-hash fingerprint cache.
    pub cache: &'a FingerprintCache,
    /// The configured history depth (how many previous versions stay hot).
    pub history_depth: usize,
    /// The next version number to be assigned; every retained version and
    /// container tag must be below it.
    pub next_version: u32,
    /// Artifacts quarantined by degraded-mode recovery at open.
    pub quarantined: &'a [QuarantineEntry],
    /// The archival container store, mutable because reads are `&mut`.
    pub archival: &'a mut S,
}

impl<S: fmt::Debug> fmt::Debug for HiDeStore<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HiDeStore")
            .field("config", &self.config)
            .field("versions", &self.recipes.len())
            .field("active_containers", &self.pool.container_count())
            .field("archival", &self.archival)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_restore::{Alacc, ContainerLru, Faa};
    use hidestore_storage::MemoryContainerStore;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn system() -> HiDeStore<MemoryContainerStore> {
        HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        )
    }

    /// Evolves `data` like a software upgrade: overwrite a region, append a
    /// little.
    fn evolve(data: &mut Vec<u8>, round: u64) {
        let start = (round as usize * 17_000) % (data.len().saturating_sub(9_000).max(1));
        let patch = noise(8_000.min(data.len() - start), 7_000 + round);
        data[start..start + patch.len()].copy_from_slice(&patch);
        data.extend_from_slice(&noise(1000, 9_000 + round));
    }

    #[test]
    fn single_version_round_trip() {
        let mut hds = system();
        let data = noise(150_000, 1);
        let stats = hds.backup(&data).unwrap();
        assert_eq!(stats.logical_bytes, 150_000);
        assert!(stats.unique_chunks > 0);
        let mut out = Vec::new();
        hds.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn multi_version_round_trip_all_versions() {
        let mut hds = system();
        let mut data = noise(120_000, 2);
        let mut snapshots = Vec::new();
        for round in 0..6u64 {
            hds.backup(&data).unwrap();
            snapshots.push(data.clone());
            evolve(&mut data, round);
        }
        for (i, snapshot) in snapshots.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 20),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, snapshot, "version {}", i + 1);
        }
    }

    #[test]
    fn identical_versions_store_nothing_new() {
        let mut hds = system();
        let data = noise(100_000, 3);
        let s1 = hds.backup(&data).unwrap();
        let s2 = hds.backup(&data).unwrap();
        assert!(s1.stored_bytes > 0);
        assert_eq!(s2.stored_bytes, 0);
        assert_eq!(s2.cold_chunks, 0, "everything stays hot");
        assert!(hds.run_stats().dedup_ratio() > 0.49);
    }

    #[test]
    fn cold_chunks_demoted_to_tagged_archival_containers() {
        let mut hds = system();
        let a = noise(80_000, 4);
        let b = noise(80_000, 5); // completely different content
        hds.backup(&a).unwrap();
        hds.backup(&b).unwrap();
        let s2 = &hds.version_stats()[1];
        assert!(s2.cold_chunks > 0, "version 1's chunks must go cold");
        assert!(s2.archival_containers_sealed > 0);
        // Version tags are set to the demoting version (2).
        let ids = hds.archival.ids();
        assert!(!ids.is_empty());
        for id in ids {
            let c = hds.archival.read(id).unwrap();
            assert_eq!(c.version_tag(), 2);
        }
    }

    #[test]
    fn newest_version_restores_mostly_from_active_containers() {
        let mut hds = system();
        let mut data = noise(150_000, 6);
        for round in 0..5u64 {
            hds.backup(&data).unwrap();
            evolve(&mut data, round);
        }
        hds.backup(&data).unwrap();
        let latest = *hds.versions().last().unwrap();
        hds.archival_mut().reset_stats();
        let mut out = Vec::new();
        let report = hds
            .restore(latest, &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
        // The newest version's chunks are all hot, hence in the pool:
        // archival reads must be zero.
        assert_eq!(hds.archival().stats().container_reads, 0);
        assert!(report.container_reads > 0, "active containers still count");
    }

    #[test]
    fn restore_works_through_any_cache_scheme() {
        let mut hds = system();
        let mut data = noise(100_000, 7);
        for round in 0..4u64 {
            hds.backup(&data).unwrap();
            evolve(&mut data, round);
        }
        for v in 1..=4u32 {
            for cache in [
                &mut ContainerLru::new(8) as &mut dyn RestoreCache,
                &mut Faa::new(1 << 20),
                &mut Alacc::new(1 << 20, 1 << 20),
            ] {
                let mut out = Vec::new();
                hds.restore(VersionId::new(v), cache, &mut out).unwrap();
                assert!(!out.is_empty(), "V{v} via {}", cache.name());
            }
        }
    }

    #[test]
    fn flatten_then_restore_old_versions() {
        let mut hds = system();
        let mut data = noise(120_000, 8);
        let mut snapshots = Vec::new();
        for round in 0..5u64 {
            hds.backup(&data).unwrap();
            snapshots.push(data.clone());
            evolve(&mut data, round);
        }
        let (updated, _) = hds.flatten_recipes();
        assert!(updated > 0, "chains should have existed");
        for (i, snapshot) in snapshots.iter().enumerate() {
            let mut out = Vec::new();
            hds.restore(
                VersionId::new(i as u32 + 1),
                &mut Faa::new(1 << 20),
                &mut out,
            )
            .unwrap();
            assert_eq!(&out, snapshot, "after flatten, version {}", i + 1);
        }
        // Post-flatten invariant: chains are at most one hop, and the hop
        // target's entry for that chunk is never itself chained.
        for recipe in hds.recipes().iter() {
            for entry in recipe.entries() {
                if let Some(w) = entry.cid.as_chained() {
                    let target = hds.recipes().get(w).expect("chain target retained");
                    let target_entry = target
                        .entries()
                        .iter()
                        .find(|e| e.fingerprint == entry.fingerprint)
                        .expect("chain target contains the chunk");
                    assert!(
                        target_entry.cid.as_chained().is_none(),
                        "flatten left a multi-hop chain"
                    );
                }
            }
        }
    }

    #[test]
    fn delete_expired_drops_containers_and_preserves_survivors() {
        let mut hds = system();
        let mut data = noise(120_000, 9);
        let mut snapshots = Vec::new();
        for round in 0..6u64 {
            hds.backup(&data).unwrap();
            snapshots.push(data.clone());
            evolve(&mut data, round);
        }
        let containers_before = hds.archival().ids().len();
        let report = hds.delete_expired(VersionId::new(3)).unwrap();
        assert_eq!(report.versions_removed, 3);
        assert!(
            report.containers_dropped > 0,
            "had {containers_before} containers"
        );
        for v in 4..=6u32 {
            let mut out = Vec::new();
            hds.restore(VersionId::new(v), &mut Faa::new(1 << 20), &mut out)
                .unwrap();
            assert_eq!(&out, &snapshots[(v - 1) as usize], "survivor V{v}");
        }
        assert_eq!(hds.versions().len(), 3);
    }

    #[test]
    fn delete_newest_rejected() {
        let mut hds = system();
        hds.backup(&noise(50_000, 10)).unwrap();
        let err = hds.delete_expired(VersionId::new(1)).unwrap_err();
        assert!(matches!(err, HiDeStoreError::CannotExpireNewest { .. }));
    }

    #[test]
    fn dedup_ratio_matches_exact_on_upgrade_streams() {
        // HiDeStore's claim: no dedup-ratio loss on versioned workloads.
        let mut hds = system();
        let mut data = noise(150_000, 11);
        for round in 0..8u64 {
            hds.backup(&data).unwrap();
            evolve(&mut data, round);
        }
        // Upper bound: total unique content across versions. Each evolve
        // changes ~9KB of 150KB; exact dedup stores roughly
        // 150KB + 8 * ~12KB (chunk boundaries amplify). HiDeStore must be in
        // the same regime, far above naive storage.
        let ratio = hds.run_stats().dedup_ratio();
        assert!(ratio > 0.70, "dedup ratio {ratio}");
    }

    #[test]
    fn lookup_requests_bounded_by_previous_recipe() {
        let mut hds = system();
        let data = noise(100_000, 12);
        hds.backup(&data).unwrap();
        let s2 = hds.backup(&data).unwrap();
        let prev_len = hds.recipes().get(VersionId::new(1)).unwrap().encoded_len();
        assert_eq!(
            s2.lookup_requests,
            (prev_len as u64).div_ceil(4096),
            "lookups are exactly the prefetch cost"
        );
    }

    #[test]
    fn depth_two_handles_skipping_chunks() {
        let cfg = HiDeStoreConfig::small_for_tests().with_history_depth(2);
        let mut hds = HiDeStore::new(cfg, MemoryContainerStore::new());
        let common = noise(60_000, 13);
        let extra = noise(30_000, 14);
        // V1 = common+extra, V2 = common only, V3 = common+extra again
        // (the macos pattern of Figure 3d).
        let mut v1 = common.clone();
        v1.extend_from_slice(&extra);
        hds.backup(&v1).unwrap();
        hds.backup(&common).unwrap();
        let s3 = hds.backup(&v1).unwrap();
        // With depth 2 the extra chunks were still cached: nothing re-stored.
        assert_eq!(
            s3.stored_bytes, 0,
            "depth-2 cache must rescue skipped chunks"
        );
        let mut out = Vec::new();
        hds.restore(VersionId::new(3), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, v1);
    }

    #[test]
    fn version_stats_overheads_recorded() {
        let mut hds = system();
        let a = noise(100_000, 15);
        let b = noise(100_000, 16);
        hds.backup(&a).unwrap();
        let s2 = hds.backup(&b).unwrap();
        // Times are measured; at minimum they are present (may be ~zero on
        // fast machines, but cold demotion happened so moves were real).
        assert!(s2.cold_chunks > 0);
        assert!(s2.chunk_move_time.as_nanos() > 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use hidestore_restore::Faa;
    use hidestore_storage::MemoryContainerStore;

    fn trace(ids: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        ids.map(|i| (Fingerprint::synthetic(i), 2048)).collect()
    }

    fn system() -> HiDeStore<MemoryContainerStore> {
        HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        )
    }

    #[test]
    fn trace_backup_full_lifecycle() {
        let mut hds = system();
        // Three versions with 10% churn each.
        hds.backup_trace(&trace(0..1000)).unwrap();
        let mut v2 = trace(100..1000);
        v2.extend(trace(10_000..10_100));
        hds.backup_trace(&v2).unwrap();
        let mut v3 = v2.clone();
        v3.truncate(900);
        v3.extend(trace(20_000..20_100));
        let s3 = hds.backup_trace(&v3).unwrap();
        assert!(
            s3.stored_bytes <= 100 * 2048,
            "only the churned chunks stored"
        );

        // Every version restores (synthetic filler, correct sizes).
        for v in 1..=3u32 {
            let mut out = Vec::new();
            let report = hds
                .restore(VersionId::new(v), &mut Faa::new(1 << 18), &mut out)
                .unwrap();
            assert_eq!(report.bytes_restored, out.len() as u64);
        }
        // Cold demotion happened for the churned chunks.
        assert!(hds.version_stats()[1].cold_chunks > 0);
        // Deletion still works.
        hds.delete_expired(VersionId::new(1)).unwrap();
        assert_eq!(hds.versions().len(), 2);
    }

    #[test]
    fn trace_dedup_ratio_matches_identity_overlap() {
        let mut hds = system();
        let v = trace(0..2000);
        hds.backup_trace(&v).unwrap();
        hds.backup_trace(&v).unwrap();
        assert!((hds.run_stats().dedup_ratio() - 0.5).abs() < 1e-9);
    }
}

#[cfg(test)]
mod reader_tests {
    use super::*;
    use hidestore_restore::Faa;
    use hidestore_storage::MemoryContainerStore;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    /// A reader that hands out data in awkward sizes.
    struct DribbleReader<'a> {
        data: &'a [u8],
        pos: usize,
        step: usize,
    }

    impl std::io::Read for DribbleReader<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.step.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            self.step = self.step % 7000 + 13; // vary read sizes
            Ok(n)
        }
    }

    #[test]
    fn reader_backup_equals_slice_backup() {
        let data = noise(300_000, 21);
        let mut by_slice = HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        );
        let mut by_reader = HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        );
        let a = by_slice.backup(&data).unwrap();
        let b = by_reader
            .backup_reader(DribbleReader {
                data: &data,
                pos: 0,
                step: 997,
            })
            .unwrap();
        assert_eq!(a.chunks, b.chunks);
        assert_eq!(a.stored_bytes, b.stored_bytes);
        assert_eq!(a.logical_bytes, b.logical_bytes);
        // Identical recipes chunk for chunk.
        let ra = by_slice.recipes().get(VersionId::new(1)).unwrap();
        let rb = by_reader.recipes().get(VersionId::new(1)).unwrap();
        assert_eq!(ra.entries(), rb.entries());
    }

    #[test]
    fn reader_backup_restores_byte_exact() {
        let data = noise(200_000, 22);
        let mut hds = HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        );
        hds.backup_reader(&data[..]).unwrap();
        let mut out = Vec::new();
        hds.restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn reader_backup_deduplicates_against_slice_backup() {
        let data = noise(150_000, 23);
        let mut hds = HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        );
        hds.backup(&data).unwrap();
        let s2 = hds.backup_reader(&data[..]).unwrap();
        assert_eq!(s2.stored_bytes, 0, "reader path must hit the same cache");
    }

    #[test]
    fn empty_reader_is_valid() {
        let mut hds = HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        );
        let stats = hds.backup_reader(std::io::empty()).unwrap();
        assert_eq!(stats.chunks, 0);
    }
}
