//! Fragmentation analysis: quantifying §2.3's chunk-fragmentation problem.
//!
//! The paper motivates HiDeStore with the observation that deduplication
//! scatters each stream's chunks over ever more containers. This module
//! measures that directly from recipes: per version, the number of distinct
//! containers referenced, the **Chunk Fragmentation Level** (CFL — the
//! related-work metric of Nam et al.: optimal container count divided by
//! actual), and the container-contribution histogram that explains why
//! container caches stop working (each cached container holds fewer and
//! fewer useful chunks).

use std::collections::HashMap;

use hidestore_storage::{ContainerId, Recipe};

/// Fragmentation metrics of one backup stream's recipe.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentationReport {
    /// Logical bytes of the stream.
    pub logical_bytes: u64,
    /// Distinct containers the recipe references.
    pub containers_referenced: usize,
    /// The minimum number of containers that could hold the stream
    /// (`ceil(logical_bytes / container_capacity)`).
    pub optimal_containers: usize,
    /// Chunk Fragmentation Level: `optimal / actual`, capped at 1.0.
    /// 1.0 = perfectly clustered; small values = heavily fragmented.
    pub cfl: f64,
    /// Mean bytes each referenced container contributes to the stream —
    /// the "useful bytes per container read" a cache can hope for.
    pub mean_bytes_per_container: f64,
    /// The Gini-style skew of container contributions in `[0, 1)`:
    /// 0 = every container contributes equally, →1 = a few containers carry
    /// almost everything while many contribute a sliver (the fragmentation
    /// tail that thrashes caches).
    pub contribution_skew: f64,
}

/// Computes fragmentation metrics for `recipe` given the container capacity
/// in force. Entries must be resolved to archival containers (run
/// Algorithm 1 first for HiDeStore recipes); `ACTIVE`/chained entries are
/// grouped under their sign as pseudo-containers.
///
/// # Examples
///
/// ```
/// use hidestore_dedup::analysis::analyze_recipe;
/// use hidestore_storage::{Cid, ContainerId, Recipe, RecipeEntry, VersionId};
/// use hidestore_hash::Fingerprint;
///
/// let mut r = Recipe::new(VersionId::new(1));
/// for i in 0..8u64 {
///     r.push(RecipeEntry::new(
///         Fingerprint::synthetic(i),
///         1024,
///         Cid::archival(ContainerId::new(1 + (i % 2) as u32)),
///     ));
/// }
/// let report = analyze_recipe(&r, 8 * 1024);
/// assert_eq!(report.containers_referenced, 2);
/// assert!((report.cfl - 0.5).abs() < 1e-9); // 1 optimal vs 2 actual
/// ```
pub fn analyze_recipe(recipe: &Recipe, container_capacity: usize) -> FragmentationReport {
    let mut contribution: HashMap<i64, u64> = HashMap::new();
    for entry in recipe.entries() {
        let key = match entry.cid.as_archival() {
            Some(c) => c.get() as i64,
            None => entry.cid.raw() as i64 - i64::from(u32::MAX), // pseudo-container
        };
        *contribution.entry(key).or_default() += entry.size as u64;
    }
    let logical_bytes = recipe.total_bytes();
    let containers_referenced = contribution.len();
    let optimal_containers = ((logical_bytes as usize).div_ceil(container_capacity.max(1))).max(1);
    let cfl = if containers_referenced == 0 {
        1.0
    } else {
        (optimal_containers as f64 / containers_referenced as f64).min(1.0)
    };
    let mean_bytes_per_container = if containers_referenced == 0 {
        0.0
    } else {
        logical_bytes as f64 / containers_referenced as f64
    };
    FragmentationReport {
        logical_bytes,
        containers_referenced,
        optimal_containers,
        cfl,
        mean_bytes_per_container,
        contribution_skew: gini(contribution.values().copied()),
    }
}

/// Gini coefficient of a set of non-negative contributions.
fn gini(values: impl Iterator<Item = u64>) -> f64 {
    let mut v: Vec<u64> = values.collect();
    if v.len() <= 1 {
        return 0.0;
    }
    v.sort_unstable();
    let n = v.len() as f64;
    let total: u64 = v.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    ((2.0 * weighted) / (n * total as f64) - (n + 1.0) / n).max(0.0)
}

/// Computes fragmentation metrics for a fully *resolved* restore plan —
/// `(size, container)` pairs where every chunk has its physical container
/// (e.g. the output of HiDeStore's chain resolution, where hot chunks map
/// to active-pool containers). Use this instead of [`analyze_recipe`] when
/// recipes contain `ACTIVE` entries, which a recipe-only analysis cannot
/// attribute to physical containers.
pub fn analyze_plan(
    entries: impl IntoIterator<Item = (u32, ContainerId)>,
    container_capacity: usize,
) -> FragmentationReport {
    let mut contribution: HashMap<ContainerId, u64> = HashMap::new();
    let mut logical_bytes = 0u64;
    for (size, container) in entries {
        logical_bytes += size as u64;
        *contribution.entry(container).or_default() += size as u64;
    }
    let containers_referenced = contribution.len();
    let optimal_containers = ((logical_bytes as usize).div_ceil(container_capacity.max(1))).max(1);
    let cfl = if containers_referenced == 0 {
        1.0
    } else {
        (optimal_containers as f64 / containers_referenced as f64).min(1.0)
    };
    let mean_bytes_per_container = if containers_referenced == 0 {
        0.0
    } else {
        logical_bytes as f64 / containers_referenced as f64
    };
    FragmentationReport {
        logical_bytes,
        containers_referenced,
        optimal_containers,
        cfl,
        mean_bytes_per_container,
        contribution_skew: gini(contribution.values().copied()),
    }
}

/// Per-version fragmentation trend across an entire backup run: analyze
/// every retained recipe in version order.
pub fn fragmentation_trend(
    recipes: impl IntoIterator<Item = impl std::borrow::Borrow<Recipe>>,
    container_capacity: usize,
) -> Vec<(u32, FragmentationReport)> {
    recipes
        .into_iter()
        .map(|r| {
            let r = r.borrow();
            (r.version().get(), analyze_recipe(r, container_capacity))
        })
        .collect()
}

/// Container IDs ranked by how little they contribute to the recipe — the
/// victims a rewriting policy or re-clustering pass should target first.
pub fn sparse_references(recipe: &Recipe, max: usize) -> Vec<(ContainerId, u64)> {
    let mut contribution: HashMap<ContainerId, u64> = HashMap::new();
    for entry in recipe.entries() {
        if let Some(c) = entry.cid.as_archival() {
            *contribution.entry(c).or_default() += entry.size as u64;
        }
    }
    let mut ranked: Vec<(ContainerId, u64)> = contribution.into_iter().collect();
    ranked.sort_by_key(|&(c, bytes)| (bytes, c));
    ranked.truncate(max);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_hash::Fingerprint;
    use hidestore_storage::{Cid, RecipeEntry, VersionId};

    fn recipe_over(containers: &[u32], chunk_size: u32) -> Recipe {
        let mut r = Recipe::new(VersionId::new(1));
        for (i, &c) in containers.iter().enumerate() {
            r.push(RecipeEntry::new(
                Fingerprint::synthetic(i as u64),
                chunk_size,
                Cid::archival(ContainerId::new(c)),
            ));
        }
        r
    }

    #[test]
    fn perfectly_clustered_stream_has_cfl_one() {
        // 8 chunks of 1 KiB in one 8 KiB container.
        let r = recipe_over(&[1; 8], 1024);
        let report = analyze_recipe(&r, 8 * 1024);
        assert_eq!(report.containers_referenced, 1);
        assert!((report.cfl - 1.0).abs() < 1e-9);
        assert_eq!(report.contribution_skew, 0.0);
    }

    #[test]
    fn scattered_stream_has_low_cfl() {
        // 8 chunks in 8 different containers where 1 would suffice.
        let r = recipe_over(&[1, 2, 3, 4, 5, 6, 7, 8], 1024);
        let report = analyze_recipe(&r, 8 * 1024);
        assert_eq!(report.containers_referenced, 8);
        assert!((report.cfl - 0.125).abs() < 1e-9);
        assert!((report.mean_bytes_per_container - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn skew_detects_long_tails() {
        // One container carries 9 chunks, nine containers carry 1 each.
        let mut layout = vec![1u32; 9];
        layout.extend(2..=10);
        let r = recipe_over(&layout, 1024);
        let skewed = analyze_recipe(&r, 1 << 20).contribution_skew;
        let uniform =
            analyze_recipe(&recipe_over(&[1, 2, 3, 4, 5, 6], 1024), 1 << 20).contribution_skew;
        assert!(
            skewed > uniform + 0.2,
            "skewed {skewed:.3} vs uniform {uniform:.3}"
        );
    }

    #[test]
    fn sparse_references_rank_ascending() {
        let mut layout = vec![1u32; 5];
        layout.push(2);
        layout.extend([3, 3]);
        let r = recipe_over(&layout, 1024);
        let ranked = sparse_references(&r, 10);
        assert_eq!(ranked[0].0, ContainerId::new(2)); // 1 chunk
        assert_eq!(ranked[1].0, ContainerId::new(3)); // 2 chunks
        assert_eq!(ranked[2].0, ContainerId::new(1)); // 5 chunks
    }

    #[test]
    fn analyze_plan_counts_physical_containers() {
        let plan = vec![
            (1024u32, ContainerId::new(1)),
            (1024, ContainerId::new(1)),
            (1024, ContainerId::new(7)),
        ];
        let report = analyze_plan(plan, 4096);
        assert_eq!(report.containers_referenced, 2);
        assert_eq!(report.logical_bytes, 3072);
    }

    #[test]
    fn empty_recipe_is_safe() {
        let r = Recipe::new(VersionId::new(1));
        let report = analyze_recipe(&r, 4096);
        assert_eq!(report.containers_referenced, 0);
        assert!((report.cfl - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trend_covers_all_recipes() {
        let recipes = vec![recipe_over(&[1, 2], 512), {
            let mut r = Recipe::new(VersionId::new(2));
            r.push(RecipeEntry::new(
                Fingerprint::synthetic(0),
                512,
                Cid::archival(ContainerId::new(1)),
            ));
            r
        }];
        let trend = fragmentation_trend(&recipes, 4096);
        assert_eq!(trend.len(), 2);
        assert_eq!(trend[0].0, 1);
        assert_eq!(trend[1].0, 2);
    }
}
