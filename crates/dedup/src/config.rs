//! Pipeline configuration.

use hidestore_chunking::ChunkerKind;

/// Configuration of a [`crate::BackupPipeline`], mirroring the knobs of
/// Destor's config file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Chunking algorithm (the paper uses TTTD, §5.1).
    pub chunker: ChunkerKind,
    /// Target average chunk size in bytes (4–8 KiB typical, §2.1).
    pub avg_chunk_size: usize,
    /// Container capacity in bytes (4 MiB in the paper).
    pub container_capacity: usize,
    /// Number of chunks per segment handed to the index and rewriter.
    pub segment_chunks: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: 8 * 1024,
            container_capacity: 4 * 1024 * 1024,
            segment_chunks: 1024,
        }
    }
}

impl PipelineConfig {
    /// A scaled-down configuration for fast unit tests: small chunks, small
    /// containers, small segments. Behaviourally identical, just denser in
    /// events per byte.
    pub fn small_for_tests() -> Self {
        PipelineConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            segment_chunks: 32,
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or the container cannot hold even one
    /// maximum-size chunk.
    pub fn validate(&self) {
        assert!(self.avg_chunk_size >= 64, "average chunk size too small");
        assert!(
            self.segment_chunks > 0,
            "segment must hold at least one chunk"
        );
        let max_chunk = self.chunker.build(self.avg_chunk_size).max_size();
        assert!(
            self.container_capacity >= max_chunk,
            "container capacity {} cannot hold a maximum-size chunk ({max_chunk})",
            self.container_capacity
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.container_capacity, 4 * 1024 * 1024);
        assert_eq!(c.chunker, ChunkerKind::Tttd);
        c.validate();
    }

    #[test]
    fn small_config_is_valid() {
        PipelineConfig::small_for_tests().validate();
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn container_smaller_than_chunk_rejected() {
        let c = PipelineConfig {
            container_capacity: 512,
            avg_chunk_size: 4096,
            ..PipelineConfig::default()
        };
        c.validate();
    }
}
