//! Pipeline configuration.

use hidestore_chunking::ChunkerKind;

/// Concurrency knobs for the backup pipeline's staged front end.
///
/// With `workers <= 1` the pipeline runs fully serially on the calling
/// thread (today's behaviour, and the default). With more workers the
/// chunker gets a dedicated thread and fingerprinting fans out to a worker
/// pool; the commit stage stays on the calling thread either way, so the
/// produced repository is identical at every setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrencyConfig {
    /// Fingerprint worker threads. `0` means auto-detect from the machine
    /// (see [`hidestore_hash::default_hash_threads`]); `1` selects the
    /// serial pipeline.
    pub workers: usize,
    /// Bounded depth of each inter-stage queue (segments in flight).
    pub queue_depth: usize,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        ConcurrencyConfig {
            workers: 1,
            queue_depth: 4,
        }
    }
}

impl ConcurrencyConfig {
    /// A serial configuration (the default).
    pub fn serial() -> Self {
        ConcurrencyConfig::default()
    }

    /// A configuration with `workers` fingerprint threads (`0` = auto).
    pub fn threads(workers: usize) -> Self {
        ConcurrencyConfig {
            workers,
            ..ConcurrencyConfig::default()
        }
    }

    /// Returns `self` with the given inter-stage queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn with_queue_depth(self, queue_depth: usize) -> Self {
        assert!(queue_depth >= 1, "queue depth must be at least 1");
        ConcurrencyConfig {
            queue_depth,
            ..self
        }
    }

    /// The concrete worker count after resolving `0` = auto.
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            hidestore_hash::default_hash_threads()
        } else {
            self.workers
        }
    }

    /// Whether the staged concurrent pipeline is selected.
    pub fn is_staged(&self) -> bool {
        self.effective_workers() > 1
    }
}

/// Configuration of a [`crate::BackupPipeline`], mirroring the knobs of
/// Destor's config file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Chunking algorithm (the paper uses TTTD, §5.1).
    pub chunker: ChunkerKind,
    /// Target average chunk size in bytes (4–8 KiB typical, §2.1).
    pub avg_chunk_size: usize,
    /// Container capacity in bytes (4 MiB in the paper).
    pub container_capacity: usize,
    /// Number of chunks per segment handed to the index and rewriter.
    pub segment_chunks: usize,
    /// Threading of the chunk/fingerprint front end.
    pub concurrency: ConcurrencyConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: 8 * 1024,
            container_capacity: 4 * 1024 * 1024,
            segment_chunks: 1024,
            concurrency: ConcurrencyConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// A scaled-down configuration for fast unit tests: small chunks, small
    /// containers, small segments. Behaviourally identical, just denser in
    /// events per byte.
    pub fn small_for_tests() -> Self {
        PipelineConfig {
            chunker: ChunkerKind::Tttd,
            avg_chunk_size: 1024,
            container_capacity: 32 * 1024,
            segment_chunks: 32,
            concurrency: ConcurrencyConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or the container cannot hold even one
    /// maximum-size chunk.
    pub fn validate(&self) {
        assert!(self.avg_chunk_size >= 64, "average chunk size too small");
        assert!(
            self.segment_chunks > 0,
            "segment must hold at least one chunk"
        );
        assert!(
            self.concurrency.queue_depth >= 1,
            "queue depth must be at least 1"
        );
        let max_chunk = self.chunker.build(self.avg_chunk_size).max_size();
        assert!(
            self.container_capacity >= max_chunk,
            "container capacity {} cannot hold a maximum-size chunk ({max_chunk})",
            self.container_capacity
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.container_capacity, 4 * 1024 * 1024);
        assert_eq!(c.chunker, ChunkerKind::Tttd);
        c.validate();
    }

    #[test]
    fn small_config_is_valid() {
        PipelineConfig::small_for_tests().validate();
    }

    #[test]
    fn default_concurrency_is_serial() {
        let c = ConcurrencyConfig::default();
        assert!(!c.is_staged());
        assert_eq!(c.effective_workers(), 1);
    }

    #[test]
    fn auto_workers_resolve_to_machine_default() {
        let c = ConcurrencyConfig::threads(0);
        assert_eq!(
            c.effective_workers(),
            hidestore_hash::default_hash_threads()
        );
    }

    #[test]
    fn multi_worker_config_is_staged() {
        assert!(ConcurrencyConfig::threads(4).is_staged());
        assert!(!ConcurrencyConfig::threads(1).is_staged());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_rejected() {
        let _ = ConcurrencyConfig::serial().with_queue_depth(0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn container_smaller_than_chunk_rejected() {
        let c = PipelineConfig {
            container_capacity: 512,
            avg_chunk_size: 4096,
            ..PipelineConfig::default()
        };
        c.validate();
    }
}
