//! Destor-style text configuration.
//!
//! Destor drives its pipeline from a small key/value config file
//! (`destor.config`): which chunking algorithm, which index, which rewriting
//! scheme, container size, and so on. This module provides the same
//! operator-facing surface so experiments can be described as files instead
//! of code.
//!
//! ```text
//! # comment lines start with '#'
//! chunker   = tttd          # fixed | rabin | tttd | fastcdc | ae
//! chunk     = 8192          # average chunk size, bytes
//! container = 4194304       # container capacity, bytes
//! segment   = 1024          # chunks per segment
//! index     = ddfs          # ddfs | sparse | silo | extreme-binning | revdedup
//! rewrite   = capping       # none | cbr | cfl | capping | fbw | seg-align
//! cap       = 20            # capping level (capping/fbw only)
//! ```

use std::fmt;
use std::str::FromStr;

use hidestore_chunking::ChunkerKind;
use hidestore_index::{FingerprintIndex, IndexKind};
use hidestore_rewriting::{Capping, Cbr, CflRewrite, Fbw, NoRewrite, RewritePolicy, SegAlign};

use crate::config::PipelineConfig;
use crate::pipeline::BackupPipeline;
use hidestore_storage::MemoryContainerStore;

/// A parsed Destor-style configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DestorConfig {
    /// Pipeline-level knobs.
    pub pipeline: PipelineConfig,
    /// Index scheme.
    pub index: IndexKind,
    /// Rewriting scheme.
    pub rewrite: RewriteKind,
    /// Capping level (used by `capping` and `fbw`).
    pub cap: usize,
}

/// Selectable rewriting schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteKind {
    /// No rewriting.
    None,
    /// Context-based rewriting.
    Cbr,
    /// CFL-driven selective rewrite.
    Cfl,
    /// Capping.
    Capping,
    /// Sliding look-back window.
    Fbw,
    /// RevDedup segment-aligned rewriting: mixed segments written whole.
    SegAlign,
}

impl Default for DestorConfig {
    fn default() -> Self {
        DestorConfig {
            pipeline: PipelineConfig::default(),
            index: IndexKind::Ddfs,
            rewrite: RewriteKind::None,
            cap: 20,
        }
    }
}

/// Error from parsing a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for DestorConfig {
    type Err = ParseConfigError;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let mut config = DestorConfig::default();
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let err = |message: String| ParseConfigError { line, message };
            // Strip comments and whitespace.
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let (key, value) = content
                .split_once('=')
                .ok_or_else(|| err(format!("expected `key = value`, got {content:?}")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "chunker" => {
                    config.pipeline.chunker = match value {
                        "fixed" => ChunkerKind::Fixed,
                        "rabin" => ChunkerKind::Rabin,
                        "tttd" => ChunkerKind::Tttd,
                        "fastcdc" => ChunkerKind::FastCdc,
                        "ae" => ChunkerKind::Ae,
                        other => return Err(err(format!("unknown chunker {other:?}"))),
                    }
                }
                "chunk" => {
                    config.pipeline.avg_chunk_size = value
                        .parse()
                        .map_err(|e| err(format!("bad chunk size: {e}")))?
                }
                "container" => {
                    config.pipeline.container_capacity = value
                        .parse()
                        .map_err(|e| err(format!("bad container size: {e}")))?
                }
                "segment" => {
                    config.pipeline.segment_chunks = value
                        .parse()
                        .map_err(|e| err(format!("bad segment size: {e}")))?
                }
                "index" => {
                    config.index = match value {
                        "ddfs" => IndexKind::Ddfs,
                        "sparse" => IndexKind::Sparse,
                        "silo" => IndexKind::Silo,
                        "extreme-binning" => IndexKind::ExtremeBinning,
                        "revdedup" => IndexKind::RevDedup,
                        other => return Err(err(format!("unknown index {other:?}"))),
                    }
                }
                "rewrite" => {
                    config.rewrite = match value {
                        "none" => RewriteKind::None,
                        "cbr" => RewriteKind::Cbr,
                        "cfl" => RewriteKind::Cfl,
                        "capping" => RewriteKind::Capping,
                        "fbw" => RewriteKind::Fbw,
                        "seg-align" => RewriteKind::SegAlign,
                        other => return Err(err(format!("unknown rewrite scheme {other:?}"))),
                    }
                }
                "cap" => config.cap = value.parse().map_err(|e| err(format!("bad cap: {e}")))?,
                other => return Err(err(format!("unknown key {other:?}"))),
            }
        }
        if config.cap == 0 {
            return Err(ParseConfigError {
                line: 0,
                message: "cap must be >= 1".into(),
            });
        }
        Ok(config)
    }
}

impl DestorConfig {
    /// Builds the rewriting policy this configuration names.
    pub fn build_rewriter(&self) -> Box<dyn RewritePolicy + Send> {
        let container = self.pipeline.container_capacity as u64;
        match self.rewrite {
            RewriteKind::None => Box::new(NoRewrite::new()),
            RewriteKind::Cbr => Box::new(Cbr::default()),
            RewriteKind::Cfl => Box::new(CflRewrite::new(0.6, container)),
            RewriteKind::Capping => Box::new(Capping::new(self.cap)),
            RewriteKind::Fbw => Box::new(Fbw::new(8 * container, 0.05, container)),
            RewriteKind::SegAlign => Box::new(SegAlign::new()),
        }
    }

    /// Builds a complete in-memory pipeline from this configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use hidestore_dedup::destor_config::DestorConfig;
    ///
    /// let config: DestorConfig = "\n\
    ///     chunker = tttd\n\
    ///     chunk = 1024\n\
    ///     container = 65536\n\
    ///     index = silo\n\
    ///     rewrite = capping\n\
    ///     cap = 4\n"
    ///     .parse()?;
    /// let mut pipeline = config.build_pipeline();
    /// pipeline.backup(&vec![7u8; 100_000])?;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn build_pipeline(
        &self,
    ) -> BackupPipeline<
        Box<dyn FingerprintIndex + Send>,
        Box<dyn RewritePolicy + Send>,
        MemoryContainerStore,
    > {
        BackupPipeline::new(
            self.pipeline,
            self.index.build(),
            self.build_rewriter(),
            MemoryContainerStore::new(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_restore::Faa;
    use hidestore_storage::VersionId;

    #[test]
    fn parses_full_config() {
        let config: DestorConfig = "\
            # an experiment\n\
            chunker   = fastcdc\n\
            chunk     = 4096\n\
            container = 1048576   # 1 MiB\n\
            segment   = 256\n\
            index     = sparse\n\
            rewrite   = fbw\n\
            cap       = 12\n"
            .parse()
            .unwrap();
        assert_eq!(config.pipeline.chunker, ChunkerKind::FastCdc);
        assert_eq!(config.pipeline.avg_chunk_size, 4096);
        assert_eq!(config.pipeline.container_capacity, 1 << 20);
        assert_eq!(config.pipeline.segment_chunks, 256);
        assert_eq!(config.index, IndexKind::Sparse);
        assert_eq!(config.rewrite, RewriteKind::Fbw);
        assert_eq!(config.cap, 12);
    }

    #[test]
    fn defaults_when_empty() {
        let config: DestorConfig = "".parse().unwrap();
        assert_eq!(config, DestorConfig::default());
    }

    #[test]
    fn rejects_unknown_keys_and_values() {
        assert!("bogus = 1".parse::<DestorConfig>().is_err());
        assert!("chunker = zpaq".parse::<DestorConfig>().is_err());
        assert!("index = btree".parse::<DestorConfig>().is_err());
        assert!("chunk = banana".parse::<DestorConfig>().is_err());
        assert!("just words".parse::<DestorConfig>().is_err());
        let err = "chunker = zpaq".parse::<DestorConfig>().unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn built_pipeline_round_trips() {
        let config: DestorConfig = "\
            chunker = tttd\n\
            chunk = 1024\n\
            container = 32768\n\
            segment = 32\n\
            index = ddfs\n\
            rewrite = capping\n\
            cap = 4\n"
            .parse()
            .unwrap();
        let mut p = config.build_pipeline();
        let data: Vec<u8> = (0..200_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 17) as u8)
            .collect();
        p.backup(&data).unwrap();
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn every_rewrite_kind_builds() {
        for (name, kind) in [
            ("none", RewriteKind::None),
            ("cbr", RewriteKind::Cbr),
            ("cfl", RewriteKind::Cfl),
            ("capping", RewriteKind::Capping),
            ("fbw", RewriteKind::Fbw),
            ("seg-align", RewriteKind::SegAlign),
        ] {
            let config: DestorConfig = format!("rewrite = {name}").parse().unwrap();
            assert_eq!(config.rewrite, kind);
            let _ = config.build_rewriter();
        }
    }
}
