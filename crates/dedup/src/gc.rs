//! Traditional expired-version deletion: chunk liveness detection plus
//! mark-sweep garbage collection.
//!
//! The paper (§4.5, §5.5) contrasts HiDeStore's free deletion with what
//! conventional systems must do: a deleted version's chunks may be shared
//! with surviving versions, so the system must **mark** every chunk
//! referenced by a surviving recipe, then **sweep** containers, dropping
//! dead chunks and copying the survivors of sparse containers into fresh
//! ones (updating every affected recipe). This module implements that
//! baseline so the deletion experiment has its comparator.

use std::collections::{HashMap, HashSet};

use hidestore_hash::Fingerprint;
use hidestore_storage::{
    Cid, Container, ContainerId, ContainerStore, RecipeStore, StorageError, VersionId,
};

/// Outcome of a mark-sweep collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Containers examined during the sweep.
    pub containers_scanned: u64,
    /// Containers dropped entirely (no live chunks).
    pub containers_dropped: u64,
    /// Containers rewritten to evict dead chunks.
    pub containers_compacted: u64,
    /// Chunks reclaimed.
    pub chunks_reclaimed: u64,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
    /// Recipe entries whose container reference was updated.
    pub recipe_entries_updated: u64,
}

/// Deletes `expired` versions from `recipes` and garbage-collects `store`.
///
/// The mark phase walks every surviving recipe (cost proportional to total
/// retained metadata — this is the expense the paper's §5.5 highlights). The
/// sweep phase drops fully-dead containers and compacts containers whose
/// live fraction fell below `compact_threshold` by merging their survivors
/// into fresh containers, rewriting affected recipe entries.
///
/// # Errors
///
/// Fails if the container store rejects an operation mid-sweep; containers
/// already processed stay processed.
pub fn mark_sweep(
    expired: &[VersionId],
    recipes: &mut RecipeStore,
    store: &mut dyn ContainerStore,
    compact_threshold: f64,
    next_container_id: &mut u32,
) -> Result<GcReport, StorageError> {
    let mut report = GcReport::default();

    for &v in expired {
        recipes.remove(v);
    }

    // Mark: every fingerprint referenced by a surviving recipe is live.
    let mut live: HashSet<Fingerprint> = HashSet::new();
    for recipe in recipes.iter() {
        for entry in recipe.entries() {
            live.insert(entry.fingerprint);
        }
    }

    // Sweep: scan every container.
    let mut relocations: HashMap<Fingerprint, ContainerId> = HashMap::new();
    let mut merge_target: Option<Container> = None;
    for id in store.ids() {
        report.containers_scanned += 1;
        let container = store.read(id)?;
        let dead: Vec<Fingerprint> = container
            .fingerprints()
            .filter(|fp| !live.contains(fp))
            .collect();
        if dead.is_empty() {
            continue;
        }
        if dead.len() == container.chunk_count() {
            // Entirely dead: drop it.
            report.containers_dropped += 1;
            report.chunks_reclaimed += dead.len() as u64;
            report.bytes_reclaimed += container.live_bytes() as u64;
            store.remove(id)?;
            continue;
        }
        let mut modified = (*container).clone();
        for fp in &dead {
            report.chunks_reclaimed += 1;
            modified.remove(fp);
        }
        report.bytes_reclaimed += (modified.used_bytes() - modified.live_bytes()) as u64;
        if modified.utilization() < compact_threshold {
            // Sparse: migrate live chunks into the merge target.
            report.containers_compacted += 1;
            for (fp, data) in modified.drain_chunks() {
                loop {
                    let target = match merge_target.as_mut() {
                        Some(t) => t,
                        None => {
                            let new_id = ContainerId::new(*next_container_id);
                            *next_container_id += 1;
                            merge_target.insert(Container::new(new_id, container.capacity()))
                        }
                    };
                    if target.try_add(fp, &data) {
                        relocations.insert(fp, target.id());
                        break;
                    }
                    if let Some(full) = merge_target.take() {
                        store.write(full)?;
                    }
                }
            }
            store.remove(id)?;
        } else {
            modified.compact_in_place();
            store.replace(modified)?;
        }
    }
    if let Some(target) = merge_target.take() {
        if !target.is_empty() {
            store.write(target)?;
        }
    }

    // Fix surviving recipes that referenced migrated chunks.
    if !relocations.is_empty() {
        for version in recipes.versions() {
            let Some(recipe) = recipes.get_mut(version) else {
                continue;
            };
            for entry in recipe.entries_mut() {
                if let Some(&new_cid) = relocations.get(&entry.fingerprint) {
                    if entry.cid != Cid::archival(new_cid) {
                        entry.cid = Cid::archival(new_cid);
                        report.recipe_entries_updated += 1;
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackupPipeline, PipelineConfig};
    use hidestore_index::DdfsIndex;
    use hidestore_restore::Faa;
    use hidestore_rewriting::NoRewrite;
    use hidestore_storage::MemoryContainerStore;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn build_three_versions() -> (
        BackupPipeline<DdfsIndex, NoRewrite, MemoryContainerStore>,
        Vec<Vec<u8>>,
    ) {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        let mut datasets = Vec::new();
        let mut data = noise(120_000, 11);
        for round in 0..3u64 {
            p.backup(&data).unwrap();
            datasets.push(data.clone());
            let start = (round as usize * 30_000) % 80_000;
            let patch = noise(10_000, 500 + round);
            data[start..start + 10_000].copy_from_slice(&patch);
        }
        (p, datasets)
    }

    #[test]
    fn deleting_oldest_keeps_survivors_restorable() {
        let (mut p, datasets) = build_three_versions();
        let mut next_id = 10_000;
        let mut recipes = std::mem::take(p.recipes_mut());
        let report = mark_sweep(
            &[VersionId::new(1)],
            &mut recipes,
            p.store_mut(),
            0.4,
            &mut next_id,
        )
        .unwrap();
        *p.recipes_mut() = recipes;
        assert!(report.containers_scanned > 0);
        for v in 2..=3u32 {
            let mut out = Vec::new();
            p.restore(VersionId::new(v), &mut Faa::new(1 << 20), &mut out)
                .unwrap();
            assert_eq!(out, datasets[(v - 1) as usize], "version {v}");
        }
    }

    #[test]
    fn exclusive_chunks_reclaimed() {
        let (mut p, _) = build_three_versions();
        let stored_before: usize = p.store().ids().len();
        let mut next_id = 10_000;
        let mut recipes = std::mem::take(p.recipes_mut());
        let report = mark_sweep(
            &[VersionId::new(1)],
            &mut recipes,
            p.store_mut(),
            0.4,
            &mut next_id,
        )
        .unwrap();
        *p.recipes_mut() = recipes;
        assert!(report.chunks_reclaimed > 0, "v1-exclusive chunks must die");
        let _ = stored_before;
    }

    #[test]
    fn deleting_all_versions_empties_store() {
        let (mut p, _) = build_three_versions();
        let mut next_id = 10_000;
        let mut recipes = std::mem::take(p.recipes_mut());
        let versions: Vec<VersionId> = recipes.versions();
        let report = mark_sweep(&versions, &mut recipes, p.store_mut(), 0.4, &mut next_id).unwrap();
        assert_eq!(p.store().ids().len(), 0);
        assert!(report.containers_dropped > 0);
    }

    #[test]
    fn gc_with_no_expired_versions_reclaims_nothing() {
        let (mut p, _) = build_three_versions();
        let mut next_id = 10_000;
        let mut recipes = std::mem::take(p.recipes_mut());
        let report = mark_sweep(&[], &mut recipes, p.store_mut(), 0.4, &mut next_id).unwrap();
        *p.recipes_mut() = recipes;
        assert_eq!(report.chunks_reclaimed, 0);
        assert_eq!(report.containers_dropped, 0);
    }
}
