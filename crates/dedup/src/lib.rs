#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Destor-style deduplication platform.
//!
//! The HiDeStore paper prototypes on **Destor** [1, 14], a research platform
//! structuring backup as a pipeline — chunking → fingerprinting → indexing →
//! rewriting → container storing → recipe writing — with pluggable
//! implementations of each phase. This crate is that platform: the
//! [`BackupPipeline`] composes any [`FingerprintIndex`] (DDFS, Sparse, SiLo)
//! with any [`RewritePolicy`] (none, CBR, CFL, Capping, FBW) over any
//! [`ContainerStore`], and restores through any
//! [`hidestore_restore::RestoreCache`]. Every baseline in the paper's
//! evaluation (§5) runs through this pipeline; HiDeStore itself modifies the
//! pipeline and lives in `hidestore-core`.
//!
//! Also here: [`gc`] — the traditional mark-sweep garbage collection that
//! baseline systems need when deleting expired versions (§5.5), implemented
//! so the paper's "deletion is almost free in HiDeStore" comparison has its
//! counterpart.
//!
//! # Examples
//!
//! ```
//! use hidestore_dedup::{BackupPipeline, PipelineConfig};
//! use hidestore_index::DdfsIndex;
//! use hidestore_rewriting::NoRewrite;
//! use hidestore_restore::Faa;
//! use hidestore_storage::{MemoryContainerStore, VersionId};
//!
//! let mut pipeline = BackupPipeline::new(
//!     PipelineConfig::small_for_tests(),
//!     DdfsIndex::new(),
//!     NoRewrite::new(),
//!     MemoryContainerStore::new(),
//! );
//! let data = vec![42u8; 100_000];
//! let stats = pipeline.backup(&data)?;
//! assert_eq!(stats.logical_bytes, 100_000);
//!
//! let mut out = Vec::new();
//! pipeline.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)?;
//! assert_eq!(out, data);
//! # Ok::<(), hidestore_dedup::PipelineError>(())
//! ```

pub mod analysis;
mod config;
pub mod destor_config;
pub mod gc;
mod pipeline;
mod stats;

pub use config::{ConcurrencyConfig, PipelineConfig};
pub use pipeline::{staged_chunk_fingerprints, BackupPipeline, PipelineError};
pub use stats::{BackupRunStats, PipelineStageStats, StageCounters, VersionStats};

// Re-exported for convenience so downstream code can name phase
// implementations through one crate, as Destor's config file does.
pub use hidestore_index::FingerprintIndex;
pub use hidestore_restore::RestoreCache;
pub use hidestore_rewriting::RewritePolicy;
pub use hidestore_storage::ContainerStore;
