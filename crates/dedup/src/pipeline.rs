//! The backup and restore pipeline.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;

use hidestore_chunking::{chunk_spans, Chunker};
use hidestore_hash::Fingerprint;
use hidestore_index::FingerprintIndex;
use hidestore_restore::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};
use hidestore_rewriting::{RewritePolicy, SegmentChunk};
use hidestore_storage::{
    Cid, Container, ContainerId, ContainerStore, Recipe, RecipeEntry, RecipeStore, StorageError,
    VersionId,
};

use crate::config::PipelineConfig;
use crate::stats::{BackupRunStats, VersionStats};

/// Errors from backup or restore runs.
#[derive(Debug)]
pub enum PipelineError {
    /// The container store failed.
    Storage(StorageError),
    /// A restore failed.
    Restore(RestoreError),
    /// A restore was requested for an unknown version.
    UnknownVersion(VersionId),
    /// A recipe entry was not fully resolved to an archival container —
    /// baseline recipes never chain, so this indicates corruption.
    UnresolvedRecipeEntry {
        /// The version whose recipe held the bad entry.
        version: VersionId,
        /// The chunk whose location was not archival.
        fingerprint: Fingerprint,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Storage(e) => write!(f, "storage error: {e}"),
            PipelineError::Restore(e) => write!(f, "restore error: {e}"),
            PipelineError::UnknownVersion(v) => write!(f, "no recipe for version {v}"),
            PipelineError::UnresolvedRecipeEntry {
                version,
                fingerprint,
            } => write!(
                f,
                "recipe for {version} holds a non-archival location for chunk {fingerprint}"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Storage(e) => Some(e),
            PipelineError::Restore(e) => Some(e),
            PipelineError::UnknownVersion(_) | PipelineError::UnresolvedRecipeEntry { .. } => None,
        }
    }
}

impl From<StorageError> for PipelineError {
    fn from(e: StorageError) -> Self {
        PipelineError::Storage(e)
    }
}

impl From<RestoreError> for PipelineError {
    fn from(e: RestoreError) -> Self {
        PipelineError::Restore(e)
    }
}

/// The Destor-style backup pipeline: chunk → fingerprint → index → rewrite →
/// store → recipe, over pluggable phase implementations.
///
/// See the crate docs for an end-to-end example.
pub struct BackupPipeline<I, R, S> {
    config: PipelineConfig,
    chunker: Box<dyn Chunker + Send>,
    index: I,
    rewriter: R,
    store: S,
    recipes: RecipeStore,
    next_version: u32,
    next_container: u32,
    open_container: Option<Container>,
    run_stats: BackupRunStats,
    version_stats: Vec<VersionStats>,
    lookups_at_version_start: u64,
}

impl<I: FingerprintIndex, R: RewritePolicy, S: ContainerStore> BackupPipeline<I, R, S> {
    /// Builds a pipeline from phase implementations.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`PipelineConfig::validate`]).
    pub fn new(config: PipelineConfig, index: I, rewriter: R, store: S) -> Self {
        config.validate();
        let chunker = config.chunker.build(config.avg_chunk_size);
        BackupPipeline {
            config,
            chunker,
            index,
            rewriter,
            store,
            recipes: RecipeStore::new(),
            next_version: 1,
            next_container: 1,
            open_container: None,
            run_stats: BackupRunStats::default(),
            version_stats: Vec::new(),
            lookups_at_version_start: 0,
        }
    }

    /// Backs up one version (the full stream content).
    ///
    /// # Errors
    ///
    /// Fails if the container store rejects a write.
    pub fn backup(&mut self, data: &[u8]) -> Result<VersionStats, PipelineError> {
        // Phase 1+2: chunking and fingerprinting (hashing parallelized, as
        // in Destor's pipelined implementation).
        let spans = chunk_spans(self.chunker.as_mut(), data);
        let fingerprints: Vec<Fingerprint> = hidestore_hash::fingerprints_parallel(
            data,
            &spans,
            hidestore_hash::default_hash_threads(),
        );
        let sizes: Vec<u32> = spans.iter().map(|s| s.len() as u32).collect();
        self.run_backup(&fingerprints, &sizes, |i| {
            std::borrow::Cow::Borrowed(&data[spans[i].clone()])
        })
    }

    /// Backs up one version given as a chunk *trace* — `(fingerprint,
    /// size)` pairs with no content. Chunk bodies are synthesized filler
    /// (see [`hidestore_storage::Chunk::synthetic`]), so trace repositories
    /// support every counted experiment (dedup ratio, lookups, container
    /// reads) at far larger logical scales, but not content verification.
    ///
    /// # Errors
    ///
    /// Fails if the container store rejects a write.
    pub fn backup_trace(
        &mut self,
        trace: &[(Fingerprint, u32)],
    ) -> Result<VersionStats, PipelineError> {
        let fingerprints: Vec<Fingerprint> = trace.iter().map(|&(fp, _)| fp).collect();
        let sizes: Vec<u32> = trace.iter().map(|&(_, size)| size).collect();
        self.run_backup(&fingerprints, &sizes, |i| {
            std::borrow::Cow::Owned(
                hidestore_storage::Chunk::synthetic(trace[i].0, trace[i].1)
                    .data()
                    .to_vec(),
            )
        })
    }

    fn run_backup<'a>(
        &mut self,
        fingerprints: &[Fingerprint],
        sizes: &[u32],
        content: impl Fn(usize) -> std::borrow::Cow<'a, [u8]>,
    ) -> Result<VersionStats, PipelineError> {
        let version = VersionId::new(self.next_version);
        self.next_version += 1;
        self.index.begin_version(version);
        self.rewriter.begin_version(version);
        self.lookups_at_version_start = self.index.disk_lookups();
        let rewritten_before = self.rewriter.rewritten_bytes();
        let logical_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();

        let mut recipe = Recipe::new(version);
        let mut stored_this_version: HashMap<Fingerprint, ContainerId> = HashMap::new();
        let mut stored_bytes = 0u64;
        let mut stored_chunks = 0u64;

        // Phases 3-6, segment by segment.
        let seg_len = self.config.segment_chunks;
        for seg_start in (0..fingerprints.len()).step_by(seg_len) {
            let seg_end = (seg_start + seg_len).min(fingerprints.len());
            let seg_range = seg_start..seg_end;

            // Phase 3: index lookup.
            let lookup_input: Vec<(Fingerprint, u32)> = seg_range
                .clone()
                .map(|i| (fingerprints[i], sizes[i]))
                .collect();
            let decisions = self.index.process_segment(&lookup_input);

            // Intra-version duplicates are resolved by the pipeline itself
            // (Destor's "rewrite buffer" behaviour): they always reference
            // the copy stored moments ago and are never rewritten.
            let mut rewrite_input = Vec::with_capacity(lookup_input.len());
            let mut intra: Vec<Option<ContainerId>> = Vec::with_capacity(lookup_input.len());
            for (offset, i) in seg_range.clone().enumerate() {
                let fp = fingerprints[i];
                if let Some(&cid) = stored_this_version.get(&fp) {
                    intra.push(Some(cid));
                    rewrite_input.push(SegmentChunk::new(fp, sizes[i], None));
                } else {
                    intra.push(None);
                    rewrite_input.push(SegmentChunk::new(fp, sizes[i], decisions[offset]));
                }
            }

            // Phase 4: rewriting decision.
            let rewrites = self.rewriter.process_segment(&rewrite_input);

            // Phase 5: store chunks and build the recipe.
            for (offset, i) in seg_range.clone().enumerate() {
                let fp = fingerprints[i];
                let size = sizes[i];
                let final_cid = if let Some(cid) = intra[offset] {
                    cid
                } else {
                    match (rewrite_input[offset].existing, rewrites[offset]) {
                        (Some(cid), false) => cid, // reference the old copy
                        _ => {
                            // Unique, or duplicate elected for rewriting.
                            let cid = self.append_chunk(fp, &content(i))?;
                            stored_bytes += size as u64;
                            stored_chunks += 1;
                            stored_this_version.insert(fp, cid);
                            cid
                        }
                    }
                };
                self.index.record_chunk(fp, size, final_cid);
                recipe.push(RecipeEntry::new(fp, size, Cid::archival(final_cid)));
            }
        }

        // Seal the version's open container so restores can read it.
        self.seal_open_container()?;
        self.index.end_version();
        self.rewriter.end_version();

        let stats = VersionStats {
            version,
            logical_bytes,
            stored_bytes,
            rewritten_bytes: self.rewriter.rewritten_bytes() - rewritten_before,
            chunks: fingerprints.len() as u64,
            stored_chunks,
            disk_lookups: self.index.disk_lookups() - self.lookups_at_version_start,
            index_table_bytes: self.index.index_table_bytes() as u64,
        };
        self.recipes.insert(recipe);
        self.run_stats.absorb(&stats);
        self.version_stats.push(stats);
        Ok(stats)
    }

    fn append_chunk(&mut self, fp: Fingerprint, data: &[u8]) -> Result<ContainerId, PipelineError> {
        loop {
            let container = match self.open_container.as_mut() {
                Some(c) => c,
                None => {
                    let id = ContainerId::new(self.next_container);
                    self.next_container += 1;
                    self.open_container
                        .insert(Container::new(id, self.config.container_capacity))
                }
            };
            if container.contains(&fp) {
                return Ok(container.id());
            }
            if container.try_add(fp, data) {
                return Ok(container.id());
            }
            // Full: seal and retry with a fresh container.
            if let Some(sealed) = self.open_container.take() {
                self.store.write(sealed)?;
            }
        }
    }

    fn seal_open_container(&mut self) -> Result<(), PipelineError> {
        if let Some(c) = self.open_container.take() {
            if !c.is_empty() {
                self.store.write(c)?;
            }
        }
        Ok(())
    }

    /// Restores `version` through the given restore cache, writing the
    /// stream to `out` and reporting the counted reads / speed factor.
    ///
    /// # Errors
    ///
    /// Fails for unknown versions or storage/assembly errors.
    pub fn restore(
        &mut self,
        version: VersionId,
        cache: &mut dyn RestoreCache,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, PipelineError> {
        let recipe = self
            .recipes
            .get(version)
            .ok_or(PipelineError::UnknownVersion(version))?;
        let plan: Vec<RestoreEntry> = recipe
            .entries()
            .iter()
            .map(|e| {
                let cid = e
                    .cid
                    .as_archival()
                    .ok_or(PipelineError::UnresolvedRecipeEntry {
                        version,
                        fingerprint: e.fingerprint,
                    })?;
                Ok(RestoreEntry::new(e.fingerprint, e.size, cid))
            })
            .collect::<Result<_, PipelineError>>()?;
        Ok(cache.restore(&plan, &mut self.store, out)?)
    }

    /// Cumulative statistics across the whole run.
    pub fn run_stats(&self) -> BackupRunStats {
        self.run_stats
    }

    /// Per-version statistics, in backup order.
    pub fn version_stats(&self) -> &[VersionStats] {
        &self.version_stats
    }

    /// The recipe store (for GC and inspection).
    pub fn recipes(&self) -> &RecipeStore {
        &self.recipes
    }

    /// Mutable recipe store access (used by deletion/GC).
    pub fn recipes_mut(&mut self) -> &mut RecipeStore {
        &mut self.recipes
    }

    /// The container store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable container store access.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// The index phase implementation.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The rewriting phase implementation.
    pub fn rewriter(&self) -> &R {
        &self.rewriter
    }

    /// Versions currently retained.
    pub fn versions(&self) -> Vec<VersionId> {
        self.recipes.versions()
    }
}

impl<I: fmt::Debug, R: fmt::Debug, S: fmt::Debug> fmt::Debug for BackupPipeline<I, R, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackupPipeline")
            .field("config", &self.config)
            .field("index", &self.index)
            .field("rewriter", &self.rewriter)
            .field("store", &self.store)
            .field("versions", &self.recipes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_index::DdfsIndex;
    use hidestore_restore::Faa;
    use hidestore_rewriting::{Capping, NoRewrite};
    use hidestore_storage::MemoryContainerStore;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn ddfs_pipeline() -> BackupPipeline<DdfsIndex, NoRewrite, MemoryContainerStore> {
        BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        )
    }

    #[test]
    fn backup_restore_round_trip() {
        let mut p = ddfs_pipeline();
        let data = noise(200_000, 1);
        p.backup(&data).unwrap();
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn second_identical_version_stores_nothing() {
        let mut p = ddfs_pipeline();
        let data = noise(150_000, 2);
        let s1 = p.backup(&data).unwrap();
        let s2 = p.backup(&data).unwrap();
        assert!(s1.stored_bytes > 0);
        assert_eq!(s2.stored_bytes, 0);
        assert!((s2.dedup_ratio() - 1.0).abs() < 1e-9);
        // Both versions restore correctly.
        for v in 1..=2 {
            let mut out = Vec::new();
            p.restore(VersionId::new(v), &mut Faa::new(1 << 20), &mut out)
                .unwrap();
            assert_eq!(out, data, "version {v}");
        }
    }

    #[test]
    fn modified_version_stores_only_changes_approximately() {
        let mut p = ddfs_pipeline();
        let mut data = noise(200_000, 3);
        p.backup(&data).unwrap();
        // Modify 5% in the middle.
        let patch = noise(10_000, 99);
        data[100_000..110_000].copy_from_slice(&patch);
        let s2 = p.backup(&data).unwrap();
        assert!(
            s2.stored_bytes < 40_000,
            "stored {} bytes for a 10k change",
            s2.stored_bytes
        );
        let mut out = Vec::new();
        p.restore(VersionId::new(2), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn intra_version_duplicates_stored_once() {
        let mut p = ddfs_pipeline();
        let block = noise(50_000, 4);
        let mut data = block.clone();
        data.extend_from_slice(&block);
        data.extend_from_slice(&block);
        let s = p.backup(&data).unwrap();
        assert!(
            s.stored_bytes < block.len() as u64 + 10_000,
            "stored {} for thrice-repeated block of {}",
            s.stored_bytes,
            block.len()
        );
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn capping_rewrites_and_still_restores() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            Capping::new(2),
            MemoryContainerStore::new(),
        );
        // Build fragmentation: several versions with partial changes.
        let mut data = noise(150_000, 5);
        for round in 0..5u64 {
            p.backup(&data).unwrap();
            let start = (round as usize * 20_000) % 120_000;
            let patch = noise(8_000, 1000 + round);
            data[start..start + 8_000].copy_from_slice(&patch);
        }
        let last = p.backup(&data).unwrap();
        let _ = last;
        assert!(
            p.rewriter().rewritten_bytes() > 0,
            "capping should have rewritten on a fragmented stream"
        );
        let mut out = Vec::new();
        let latest = *p.versions().last().unwrap();
        p.restore(latest, &mut Faa::new(1 << 20), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn version_stats_accumulate() {
        let mut p = ddfs_pipeline();
        let data = noise(100_000, 7);
        p.backup(&data).unwrap();
        p.backup(&data).unwrap();
        assert_eq!(p.version_stats().len(), 2);
        assert_eq!(p.run_stats().versions, 2);
        assert_eq!(p.run_stats().logical_bytes, 200_000);
        assert!(p.run_stats().dedup_ratio() > 0.45);
    }

    #[test]
    fn restore_unknown_version_errors() {
        let mut p = ddfs_pipeline();
        let err = p
            .restore(VersionId::new(5), &mut Faa::new(1024), &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnknownVersion(_)));
    }

    #[test]
    fn containers_sealed_at_version_end() {
        let mut p = ddfs_pipeline();
        p.backup(&noise(100_000, 8)).unwrap();
        // All stored bytes must be readable: no chunk trapped in an unsealed
        // open container.
        let ids = p.store().ids();
        assert!(!ids.is_empty());
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
    }

    #[test]
    fn empty_backup_is_valid() {
        let mut p = ddfs_pipeline();
        let s = p.backup(&[]).unwrap();
        assert_eq!(s.chunks, 0);
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1024), &mut out)
            .unwrap();
        assert!(out.is_empty());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use hidestore_index::DdfsIndex;
    use hidestore_restore::Faa;
    use hidestore_rewriting::NoRewrite;
    use hidestore_storage::MemoryContainerStore;

    fn trace(ids: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        ids.map(|i| (Fingerprint::synthetic(i), 2048)).collect()
    }

    #[test]
    fn trace_backup_deduplicates_by_identity() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        let v = trace(0..500);
        let s1 = p.backup_trace(&v).unwrap();
        let s2 = p.backup_trace(&v).unwrap();
        assert_eq!(s1.stored_chunks, 500);
        assert_eq!(s2.stored_chunks, 0);
        assert_eq!(s2.logical_bytes, 500 * 2048);
    }

    #[test]
    fn trace_backup_restores_synthetic_content() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        p.backup_trace(&trace(0..100)).unwrap();
        let mut out = Vec::new();
        let report = p
            .restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(report.bytes_restored, 100 * 2048);
        assert_eq!(out.len(), 100 * 2048);
    }

    #[test]
    fn trace_and_content_modes_coexist() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        p.backup_trace(&trace(0..100)).unwrap();
        let data = vec![9u8; 50_000];
        p.backup(&data).unwrap();
        let mut out = Vec::new();
        p.restore(VersionId::new(2), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }
}
