//! The commit stage: index lookup, rewrite decision, container fill, recipe.
//!
//! Dedup decisions are order-dependent — whether a chunk is a duplicate
//! depends on every chunk committed before it, and which container it lands
//! in depends on how full the open container is. The commit stage therefore
//! always runs on exactly one thread, processing segments in stream order.
//! Both the serial pipeline and the staged concurrent pipeline drive this
//! same [`CommitState`], which is what guarantees the two produce
//! byte-identical containers, recipes and counters.

use std::borrow::Cow;
use std::collections::HashMap;

use hidestore_hash::Fingerprint;
use hidestore_index::FingerprintIndex;
use hidestore_rewriting::{RewritePolicy, SegmentChunk};
use hidestore_storage::{
    Cid, ContainerBuilder, ContainerId, ContainerStore, Recipe, RecipeEntry, VersionId,
};

use super::PipelineError;

/// Mutable state of one version's commit stage, borrowing the pipeline's
/// phase implementations. Created at version start, consumed by
/// [`CommitState::finish`] at version end.
pub(super) struct CommitState<'a, I, R, S> {
    index: &'a mut I,
    rewriter: &'a mut R,
    store: &'a mut S,
    builder: &'a mut ContainerBuilder,
    recipe: Recipe,
    stored_this_version: HashMap<Fingerprint, ContainerId>,
    stored_bytes: u64,
    stored_chunks: u64,
}

/// What a finished commit stage hands back to the pipeline.
pub(super) struct CommitOutcome {
    pub recipe: Recipe,
    pub stored_bytes: u64,
    pub stored_chunks: u64,
}

impl<'a, I: FingerprintIndex, R: RewritePolicy, S: ContainerStore> CommitState<'a, I, R, S> {
    pub fn new(
        index: &'a mut I,
        rewriter: &'a mut R,
        store: &'a mut S,
        builder: &'a mut ContainerBuilder,
        version: VersionId,
    ) -> Self {
        CommitState {
            index,
            rewriter,
            store,
            builder,
            recipe: Recipe::new(version),
            stored_this_version: HashMap::new(),
            stored_bytes: 0,
            stored_chunks: 0,
        }
    }

    /// Commits one segment: phases 3 (index lookup), 4 (rewrite decision)
    /// and 5 (store + recipe). `content(i)` yields the body of the segment's
    /// `i`-th chunk and is only called for chunks that are actually stored.
    pub fn commit_segment<'d>(
        &mut self,
        fingerprints: &[Fingerprint],
        sizes: &[u32],
        mut content: impl FnMut(usize) -> Cow<'d, [u8]>,
    ) -> Result<(), PipelineError> {
        // Phase 3: index lookup.
        let lookup_input: Vec<(Fingerprint, u32)> = fingerprints
            .iter()
            .copied()
            .zip(sizes.iter().copied())
            .collect();
        let decisions = self.index.process_segment(&lookup_input);

        // Intra-version duplicates are resolved by the pipeline itself
        // (Destor's "rewrite buffer" behaviour): they always reference the
        // copy stored moments ago and are never rewritten.
        let mut rewrite_input = Vec::with_capacity(lookup_input.len());
        let mut intra: Vec<Option<ContainerId>> = Vec::with_capacity(lookup_input.len());
        for (offset, &fp) in fingerprints.iter().enumerate() {
            if let Some(&cid) = self.stored_this_version.get(&fp) {
                intra.push(Some(cid));
                rewrite_input.push(SegmentChunk::new(fp, sizes[offset], None));
            } else {
                intra.push(None);
                rewrite_input.push(SegmentChunk::new(fp, sizes[offset], decisions[offset]));
            }
        }

        // Phase 4: rewriting decision.
        let rewrites = self.rewriter.process_segment(&rewrite_input);

        // Phase 5: store chunks and build the recipe.
        for (offset, &fp) in fingerprints.iter().enumerate() {
            let size = sizes[offset];
            let final_cid = if let Some(cid) = intra[offset] {
                cid
            } else {
                match (rewrite_input[offset].existing, rewrites[offset]) {
                    (Some(cid), false) => cid, // reference the old copy
                    _ => {
                        // Unique, or duplicate elected for rewriting.
                        let (cid, sealed) = self.builder.append(fp, &content(offset));
                        if let Some(full) = sealed {
                            self.store.write(full)?;
                        }
                        self.stored_bytes += size as u64;
                        self.stored_chunks += 1;
                        self.stored_this_version.insert(fp, cid);
                        cid
                    }
                }
            };
            self.index.record_chunk(fp, size, final_cid);
            self.recipe
                .push(RecipeEntry::new(fp, size, Cid::archival(final_cid)));
        }
        Ok(())
    }

    /// Seals the version's open container so restores can read it, and
    /// returns the recipe and stored-byte accounting.
    pub fn finish(self) -> Result<CommitOutcome, PipelineError> {
        if let Some(open) = self.builder.take_open() {
            if !open.is_empty() {
                self.store.write(open)?;
            }
        }
        Ok(CommitOutcome {
            recipe: self.recipe,
            stored_bytes: self.stored_bytes,
            stored_chunks: self.stored_chunks,
        })
    }
}
