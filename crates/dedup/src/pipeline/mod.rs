//! The backup and restore pipeline, in serial and staged-concurrent form.
//!
//! The module is split by stage: [`commit`] holds the single-threaded commit
//! stage both forms share and [`staged`] the multi-threaded chunk/fingerprint
//! front end; the bounded inter-stage channel is the shared
//! [`hidestore_sync::BoundedQueue`]. See `DESIGN.md` §8 for the determinism
//! argument.

mod commit;
mod staged;

pub use staged::staged_chunk_fingerprints;

use std::fmt;
use std::io::Write;

use hidestore_chunking::{chunk_spans, Chunker};
use hidestore_hash::Fingerprint;
use hidestore_index::FingerprintIndex;
use hidestore_restore::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};
use hidestore_rewriting::RewritePolicy;
use hidestore_storage::{ContainerBuilder, ContainerStore, RecipeStore, StorageError, VersionId};

use crate::config::PipelineConfig;
use crate::stats::{BackupRunStats, PipelineStageStats, VersionStats};
use commit::CommitState;
use staged::StagedOptions;

/// Errors from backup or restore runs.
#[derive(Debug)]
pub enum PipelineError {
    /// The container store failed.
    Storage(StorageError),
    /// A restore failed.
    Restore(RestoreError),
    /// A restore was requested for an unknown version.
    UnknownVersion(VersionId),
    /// A recipe entry was not fully resolved to an archival container —
    /// baseline recipes never chain, so this indicates corruption.
    UnresolvedRecipeEntry {
        /// The version whose recipe held the bad entry.
        version: VersionId,
        /// The chunk whose location was not archival.
        fingerprint: Fingerprint,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Storage(e) => write!(f, "storage error: {e}"),
            PipelineError::Restore(e) => write!(f, "restore error: {e}"),
            PipelineError::UnknownVersion(v) => write!(f, "no recipe for version {v}"),
            PipelineError::UnresolvedRecipeEntry {
                version,
                fingerprint,
            } => write!(
                f,
                "recipe for {version} holds a non-archival location for chunk {fingerprint}"
            ),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Storage(e) => Some(e),
            PipelineError::Restore(e) => Some(e),
            PipelineError::UnknownVersion(_) | PipelineError::UnresolvedRecipeEntry { .. } => None,
        }
    }
}

impl From<StorageError> for PipelineError {
    fn from(e: StorageError) -> Self {
        PipelineError::Storage(e)
    }
}

impl From<RestoreError> for PipelineError {
    fn from(e: RestoreError) -> Self {
        PipelineError::Restore(e)
    }
}

/// The Destor-style backup pipeline: chunk → fingerprint → index → rewrite →
/// store → recipe, over pluggable phase implementations.
///
/// With [`crate::ConcurrencyConfig`] workers > 1 the chunking and
/// fingerprinting phases run on their own threads (Destor's pipelined
/// layout) while indexing, rewriting and container filling stay on the
/// calling thread in stream order — so the repository produced is
/// byte-identical to a serial run at any thread count.
///
/// See the crate docs for an end-to-end example.
pub struct BackupPipeline<I, R, S> {
    config: PipelineConfig,
    chunker: Box<dyn Chunker + Send + Sync>,
    index: I,
    rewriter: R,
    store: S,
    builder: ContainerBuilder,
    recipes: RecipeStore,
    next_version: u32,
    run_stats: BackupRunStats,
    version_stats: Vec<VersionStats>,
    lookups_at_version_start: u64,
}

impl<I: FingerprintIndex, R: RewritePolicy, S: ContainerStore> BackupPipeline<I, R, S> {
    /// Builds a pipeline from phase implementations.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`PipelineConfig::validate`]).
    pub fn new(config: PipelineConfig, index: I, rewriter: R, store: S) -> Self {
        config.validate();
        let chunker = config.chunker.build(config.avg_chunk_size);
        BackupPipeline {
            chunker,
            index,
            rewriter,
            store,
            builder: ContainerBuilder::new(1, config.container_capacity),
            recipes: RecipeStore::new(),
            next_version: 1,
            run_stats: BackupRunStats::default(),
            version_stats: Vec::new(),
            lookups_at_version_start: 0,
            config,
        }
    }

    /// Backs up one version (the full stream content).
    ///
    /// Runs the serial pipeline or the staged concurrent one according to
    /// [`PipelineConfig::concurrency`]; both produce identical repositories.
    ///
    /// # Errors
    ///
    /// Fails if the container store rejects a write.
    pub fn backup(&mut self, data: &[u8]) -> Result<VersionStats, PipelineError> {
        if self.config.concurrency.is_staged() {
            return self.backup_staged(data);
        }
        // Phase 1+2: chunking and fingerprinting (hashing parallelized, as
        // in Destor's pipelined implementation).
        let spans = chunk_spans(self.chunker.as_mut(), data);
        let fingerprints: Vec<Fingerprint> = hidestore_hash::fingerprints_parallel(
            data,
            &spans,
            hidestore_hash::default_hash_threads(),
        );
        let sizes: Vec<u32> = spans.iter().map(|s| s.len() as u32).collect();
        self.run_backup(&fingerprints, &sizes, |i| {
            std::borrow::Cow::Borrowed(&data[spans[i].clone()])
        })
    }

    /// Backs up one version through the staged concurrent pipeline: a
    /// chunker thread and a fingerprint worker pool feed the (serial) commit
    /// stage through bounded queues, overlapping CPU-bound hashing with
    /// index lookups and container filling.
    fn backup_staged(&mut self, data: &[u8]) -> Result<VersionStats, PipelineError> {
        let version = self.begin_version();
        let rewritten_before = self.rewriter.rewritten_bytes();

        let opts = StagedOptions {
            segment_chunks: self.config.segment_chunks,
            workers: self.config.concurrency.effective_workers(),
            queue_depth: self.config.concurrency.queue_depth,
        };
        let mut stage_stats = PipelineStageStats::default();
        let mut logical_bytes = 0u64;
        let mut chunks = 0u64;
        let mut commit = CommitState::new(
            &mut self.index,
            &mut self.rewriter,
            &mut self.store,
            &mut self.builder,
            version,
        );
        staged::run_staged(
            data,
            self.chunker.as_mut(),
            &opts,
            &mut stage_stats,
            |batch| {
                let sizes: Vec<u32> = batch.spans.iter().map(|s| s.len() as u32).collect();
                chunks += sizes.len() as u64;
                logical_bytes += sizes.iter().map(|&s| s as u64).sum::<u64>();
                commit.commit_segment(&batch.fingerprints, &sizes, |i| {
                    std::borrow::Cow::Borrowed(&data[batch.spans[i].clone()])
                })
            },
        )?;
        let outcome = commit.finish()?;
        stage_stats.commit.items += chunks;
        stage_stats.commit.bytes += logical_bytes;
        self.run_stats.stages.merge(&stage_stats);
        self.finish_version(version, outcome, logical_bytes, chunks, rewritten_before)
    }

    /// Backs up one version given as a chunk *trace* — `(fingerprint,
    /// size)` pairs with no content. Chunk bodies are synthesized filler
    /// (see [`hidestore_storage::Chunk::synthetic`]), so trace repositories
    /// support every counted experiment (dedup ratio, lookups, container
    /// reads) at far larger logical scales, but not content verification.
    ///
    /// # Errors
    ///
    /// Fails if the container store rejects a write.
    pub fn backup_trace(
        &mut self,
        trace: &[(Fingerprint, u32)],
    ) -> Result<VersionStats, PipelineError> {
        let fingerprints: Vec<Fingerprint> = trace.iter().map(|&(fp, _)| fp).collect();
        let sizes: Vec<u32> = trace.iter().map(|&(_, size)| size).collect();
        self.run_backup(&fingerprints, &sizes, |i| {
            std::borrow::Cow::Owned(
                hidestore_storage::Chunk::synthetic(trace[i].0, trace[i].1)
                    .data()
                    .to_vec(),
            )
        })
    }

    /// Allocates the next version and opens it in the index and rewriter.
    fn begin_version(&mut self) -> VersionId {
        let version = VersionId::new(self.next_version);
        self.next_version += 1;
        self.index.begin_version(version);
        self.rewriter.begin_version(version);
        self.lookups_at_version_start = self.index.disk_lookups();
        version
    }

    /// Closes the version in the index and rewriter and records its stats.
    fn finish_version(
        &mut self,
        version: VersionId,
        outcome: commit::CommitOutcome,
        logical_bytes: u64,
        chunks: u64,
        rewritten_before: u64,
    ) -> Result<VersionStats, PipelineError> {
        self.index.end_version();
        self.rewriter.end_version();
        let stats = VersionStats {
            version,
            logical_bytes,
            stored_bytes: outcome.stored_bytes,
            rewritten_bytes: self.rewriter.rewritten_bytes() - rewritten_before,
            chunks,
            stored_chunks: outcome.stored_chunks,
            disk_lookups: self.index.disk_lookups() - self.lookups_at_version_start,
            index_table_bytes: self.index.index_table_bytes() as u64,
        };
        self.recipes.insert(outcome.recipe);
        self.run_stats.absorb(&stats);
        self.version_stats.push(stats);
        Ok(stats)
    }

    fn run_backup<'a>(
        &mut self,
        fingerprints: &[Fingerprint],
        sizes: &[u32],
        content: impl Fn(usize) -> std::borrow::Cow<'a, [u8]>,
    ) -> Result<VersionStats, PipelineError> {
        let version = self.begin_version();
        let rewritten_before = self.rewriter.rewritten_bytes();
        let logical_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();

        // Phases 3-6, segment by segment, on this thread.
        let seg_len = self.config.segment_chunks;
        let mut commit = CommitState::new(
            &mut self.index,
            &mut self.rewriter,
            &mut self.store,
            &mut self.builder,
            version,
        );
        for seg_start in (0..fingerprints.len()).step_by(seg_len) {
            let seg_end = (seg_start + seg_len).min(fingerprints.len());
            commit.commit_segment(
                &fingerprints[seg_start..seg_end],
                &sizes[seg_start..seg_end],
                |local| content(seg_start + local),
            )?;
        }
        let outcome = commit.finish()?;
        self.finish_version(
            version,
            outcome,
            logical_bytes,
            fingerprints.len() as u64,
            rewritten_before,
        )
    }

    /// Restores `version` through the given restore cache, writing the
    /// stream to `out` and reporting the counted reads / speed factor.
    ///
    /// # Errors
    ///
    /// Fails for unknown versions or storage/assembly errors.
    pub fn restore(
        &mut self,
        version: VersionId,
        cache: &mut dyn RestoreCache,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, PipelineError> {
        let recipe = self
            .recipes
            .get(version)
            .ok_or(PipelineError::UnknownVersion(version))?;
        let plan: Vec<RestoreEntry> = recipe
            .entries()
            .iter()
            .map(|e| {
                let cid = e
                    .cid
                    .as_archival()
                    .ok_or(PipelineError::UnresolvedRecipeEntry {
                        version,
                        fingerprint: e.fingerprint,
                    })?;
                Ok(RestoreEntry::new(e.fingerprint, e.size, cid))
            })
            .collect::<Result<_, PipelineError>>()?;
        Ok(cache.restore(&plan, &mut self.store, out)?)
    }

    /// Cumulative statistics across the whole run.
    pub fn run_stats(&self) -> BackupRunStats {
        self.run_stats
    }

    /// Per-version statistics, in backup order.
    pub fn version_stats(&self) -> &[VersionStats] {
        &self.version_stats
    }

    /// The recipe store (for GC and inspection).
    pub fn recipes(&self) -> &RecipeStore {
        &self.recipes
    }

    /// Mutable recipe store access (used by deletion/GC).
    pub fn recipes_mut(&mut self) -> &mut RecipeStore {
        &mut self.recipes
    }

    /// The container store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable container store access.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// The index phase implementation.
    pub fn index(&self) -> &I {
        &self.index
    }

    /// The rewriting phase implementation.
    pub fn rewriter(&self) -> &R {
        &self.rewriter
    }

    /// Versions currently retained.
    pub fn versions(&self) -> Vec<VersionId> {
        self.recipes.versions()
    }
}

impl<I: fmt::Debug, R: fmt::Debug, S: fmt::Debug> fmt::Debug for BackupPipeline<I, R, S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackupPipeline")
            .field("config", &self.config)
            .field("index", &self.index)
            .field("rewriter", &self.rewriter)
            .field("store", &self.store)
            .field("versions", &self.recipes.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConcurrencyConfig;
    use hidestore_index::DdfsIndex;
    use hidestore_restore::Faa;
    use hidestore_rewriting::{Capping, NoRewrite};
    use hidestore_storage::MemoryContainerStore;

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn ddfs_pipeline() -> BackupPipeline<DdfsIndex, NoRewrite, MemoryContainerStore> {
        BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        )
    }

    #[test]
    fn backup_restore_round_trip() {
        let mut p = ddfs_pipeline();
        let data = noise(200_000, 1);
        p.backup(&data).unwrap();
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn second_identical_version_stores_nothing() {
        let mut p = ddfs_pipeline();
        let data = noise(150_000, 2);
        let s1 = p.backup(&data).unwrap();
        let s2 = p.backup(&data).unwrap();
        assert!(s1.stored_bytes > 0);
        assert_eq!(s2.stored_bytes, 0);
        assert!((s2.dedup_ratio() - 1.0).abs() < 1e-9);
        // Both versions restore correctly.
        for v in 1..=2 {
            let mut out = Vec::new();
            p.restore(VersionId::new(v), &mut Faa::new(1 << 20), &mut out)
                .unwrap();
            assert_eq!(out, data, "version {v}");
        }
    }

    #[test]
    fn modified_version_stores_only_changes_approximately() {
        let mut p = ddfs_pipeline();
        let mut data = noise(200_000, 3);
        p.backup(&data).unwrap();
        // Modify 5% in the middle.
        let patch = noise(10_000, 99);
        data[100_000..110_000].copy_from_slice(&patch);
        let s2 = p.backup(&data).unwrap();
        assert!(
            s2.stored_bytes < 40_000,
            "stored {} bytes for a 10k change",
            s2.stored_bytes
        );
        let mut out = Vec::new();
        p.restore(VersionId::new(2), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn intra_version_duplicates_stored_once() {
        let mut p = ddfs_pipeline();
        let block = noise(50_000, 4);
        let mut data = block.clone();
        data.extend_from_slice(&block);
        data.extend_from_slice(&block);
        let s = p.backup(&data).unwrap();
        assert!(
            s.stored_bytes < block.len() as u64 + 10_000,
            "stored {} for thrice-repeated block of {}",
            s.stored_bytes,
            block.len()
        );
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn capping_rewrites_and_still_restores() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            Capping::new(2),
            MemoryContainerStore::new(),
        );
        // Build fragmentation: several versions with partial changes.
        let mut data = noise(150_000, 5);
        for round in 0..5u64 {
            p.backup(&data).unwrap();
            let start = (round as usize * 20_000) % 120_000;
            let patch = noise(8_000, 1000 + round);
            data[start..start + 8_000].copy_from_slice(&patch);
        }
        let last = p.backup(&data).unwrap();
        let _ = last;
        assert!(
            p.rewriter().rewritten_bytes() > 0,
            "capping should have rewritten on a fragmented stream"
        );
        let mut out = Vec::new();
        let latest = *p.versions().last().unwrap();
        p.restore(latest, &mut Faa::new(1 << 20), &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn version_stats_accumulate() {
        let mut p = ddfs_pipeline();
        let data = noise(100_000, 7);
        p.backup(&data).unwrap();
        p.backup(&data).unwrap();
        assert_eq!(p.version_stats().len(), 2);
        assert_eq!(p.run_stats().versions, 2);
        assert_eq!(p.run_stats().logical_bytes, 200_000);
        assert!(p.run_stats().dedup_ratio() > 0.45);
    }

    #[test]
    fn restore_unknown_version_errors() {
        let mut p = ddfs_pipeline();
        let err = p
            .restore(VersionId::new(5), &mut Faa::new(1024), &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, PipelineError::UnknownVersion(_)));
    }

    #[test]
    fn containers_sealed_at_version_end() {
        let mut p = ddfs_pipeline();
        p.backup(&noise(100_000, 8)).unwrap();
        // All stored bytes must be readable: no chunk trapped in an unsealed
        // open container.
        let ids = p.store().ids();
        assert!(!ids.is_empty());
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
    }

    #[test]
    fn empty_backup_is_valid() {
        let mut p = ddfs_pipeline();
        let s = p.backup(&[]).unwrap();
        assert_eq!(s.chunks, 0);
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1024), &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    // ----- staged concurrent pipeline -----

    fn staged_pipeline(
        workers: usize,
        depth: usize,
    ) -> BackupPipeline<DdfsIndex, NoRewrite, MemoryContainerStore> {
        BackupPipeline::new(
            PipelineConfig {
                concurrency: ConcurrencyConfig::threads(workers).with_queue_depth(depth),
                ..PipelineConfig::small_for_tests()
            },
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        )
    }

    #[test]
    fn staged_backup_round_trips() {
        let mut p = staged_pipeline(4, 2);
        let data = noise(250_000, 11);
        p.backup(&data).unwrap();
        let mut out = Vec::new();
        p.restore(VersionId::new(1), &mut Faa::new(1 << 20), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn staged_empty_backup_is_valid() {
        let mut p = staged_pipeline(4, 1);
        let s = p.backup(&[]).unwrap();
        assert_eq!(s.chunks, 0);
    }

    #[test]
    fn staged_matches_serial_repository() {
        let mut data = noise(180_000, 12);
        let mut serial = ddfs_pipeline();
        let mut parallel = staged_pipeline(4, 2);
        for round in 0..3u64 {
            let s1 = serial.backup(&data).unwrap();
            let s2 = parallel.backup(&data).unwrap();
            assert_eq!(s1, s2, "round {round}: version stats must be identical");
            let patch = noise(9_000, 500 + round);
            let at = (round as usize * 31_000) % 150_000;
            data[at..at + patch.len()].copy_from_slice(&patch);
        }
        assert_eq!(serial.store().ids(), parallel.store().ids());
        for id in serial.store().ids() {
            let a = serial.store_mut().read(id).unwrap().encode();
            let b = parallel.store_mut().read(id).unwrap().encode();
            assert_eq!(a, b, "container {id} bytes differ");
        }
        for v in serial.versions() {
            assert_eq!(
                serial.recipes().get(v).unwrap().entries(),
                parallel.recipes().get(v).unwrap().entries(),
                "recipe {v} differs"
            );
        }
    }

    #[test]
    fn staged_records_stage_counters() {
        let mut p = staged_pipeline(2, 1);
        let data = noise(200_000, 13);
        p.backup(&data).unwrap();
        let stages = p.run_stats().stages;
        assert_eq!(stages.chunk.bytes, data.len() as u64);
        assert_eq!(stages.hash.bytes, data.len() as u64);
        assert_eq!(stages.commit.bytes, data.len() as u64);
        assert_eq!(stages.chunk.items, stages.commit.items);
        // With a depth-1 queue some stage must have felt backpressure.
        assert!(
            stages.chunk.blocked_full
                + stages.hash.blocked_full
                + stages.hash.blocked_empty
                + stages.commit.blocked_empty
                > 0,
            "depth-1 queues cannot run without a single wait: {stages:?}"
        );
    }

    #[test]
    fn serial_pipeline_reports_no_stage_activity() {
        let mut p = ddfs_pipeline();
        p.backup(&noise(100_000, 14)).unwrap();
        assert_eq!(p.run_stats().stages, PipelineStageStats::default());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use hidestore_index::DdfsIndex;
    use hidestore_restore::Faa;
    use hidestore_rewriting::NoRewrite;
    use hidestore_storage::MemoryContainerStore;

    fn trace(ids: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        ids.map(|i| (Fingerprint::synthetic(i), 2048)).collect()
    }

    #[test]
    fn trace_backup_deduplicates_by_identity() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        let v = trace(0..500);
        let s1 = p.backup_trace(&v).unwrap();
        let s2 = p.backup_trace(&v).unwrap();
        assert_eq!(s1.stored_chunks, 500);
        assert_eq!(s2.stored_chunks, 0);
        assert_eq!(s2.logical_bytes, 500 * 2048);
    }

    #[test]
    fn trace_backup_restores_synthetic_content() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        p.backup_trace(&trace(0..100)).unwrap();
        let mut out = Vec::new();
        let report = p
            .restore(VersionId::new(1), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(report.bytes_restored, 100 * 2048);
        assert_eq!(out.len(), 100 * 2048);
    }

    #[test]
    fn trace_and_content_modes_coexist() {
        let mut p = BackupPipeline::new(
            PipelineConfig::small_for_tests(),
            DdfsIndex::new(),
            NoRewrite::new(),
            MemoryContainerStore::new(),
        );
        p.backup_trace(&trace(0..100)).unwrap();
        let data = vec![9u8; 50_000];
        p.backup(&data).unwrap();
        let mut out = Vec::new();
        p.restore(VersionId::new(2), &mut Faa::new(1 << 18), &mut out)
            .unwrap();
        assert_eq!(out, data);
    }
}
