//! The staged, multi-threaded front half of the backup pipeline.
//!
//! Destor runs each backup phase on its own thread connected by bounded
//! queues; this module reproduces that shape for the phases that may run
//! concurrently without changing any dedup decision:
//!
//! ```text
//!  chunker thread ──q1──► fingerprint workers (×N) ──q2──► commit (caller)
//!  (sequential:           (embarrassingly parallel        (sequential:
//!   boundaries depend      per segment)                    index + rewrite +
//!   on the stream)                                         container fill)
//! ```
//!
//! Chunking is sequential by nature — content-defined boundaries depend on
//! everything before them — so it gets one dedicated thread that slices the
//! stream into segments of `segment_chunks` spans. Fingerprinting is pure per
//! chunk, so a worker pool hashes whole segments in parallel. The commit
//! stage runs on the calling thread and consumes segments **in stream
//! order** (a reorder buffer keyed by segment sequence number restores the
//! order the workers scrambled), which is what makes the concurrent pipeline
//! bit-identical to the serial one: every index lookup, rewrite decision and
//! container append happens in exactly the order the serial loop would have
//! produced.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use hidestore_chunking::Chunker;
use hidestore_hash::Fingerprint;

use crate::stats::PipelineStageStats;
use hidestore_sync::{BoundedQueue, ProducerGuard};

/// One segment of the stream after chunking and fingerprinting: `spans[i]`
/// of the backed-up data has fingerprint `fingerprints[i]`.
pub(crate) struct SegmentBatch {
    /// Sequence number in stream order (0, 1, 2, …).
    pub seq: usize,
    /// Chunk spans, contiguous in the stream.
    pub spans: Vec<Range<usize>>,
    /// Fingerprint of each span, same order.
    pub fingerprints: Vec<Fingerprint>,
}

struct RawBatch {
    seq: usize,
    spans: Vec<Range<usize>>,
}

/// Tuning for one staged run.
pub(crate) struct StagedOptions {
    /// Chunks per segment (the index/rewrite segment size).
    pub segment_chunks: usize,
    /// Fingerprint worker threads.
    pub workers: usize,
    /// Bounded depth of each inter-stage queue.
    pub queue_depth: usize,
}

/// Runs the staged front end over `data`, invoking `consume` once per
/// segment **in stream order** on the calling thread. Stage and queue
/// counters are accumulated into `stats`. If `consume` fails, upstream
/// stages are cancelled and the error is returned.
pub(crate) fn run_staged<E>(
    data: &[u8],
    chunker: &mut (dyn Chunker + Send),
    opts: &StagedOptions,
    stats: &mut PipelineStageStats,
    mut consume: impl FnMut(&SegmentBatch) -> Result<(), E>,
) -> Result<(), E> {
    let workers = opts.workers.max(1);
    let segment_chunks = opts.segment_chunks.max(1);
    let q_raw: BoundedQueue<RawBatch> = BoundedQueue::new(opts.queue_depth.max(1), 1);
    let q_hashed: BoundedQueue<SegmentBatch> = BoundedQueue::new(opts.queue_depth.max(1), workers);
    let chunked = (AtomicU64::new(0), AtomicU64::new(0));
    let hashed = (AtomicU64::new(0), AtomicU64::new(0));

    let result = std::thread::scope(|scope| {
        // Stage 1: chunking, one thread, sequential.
        {
            let (q_raw, chunked) = (&q_raw, &chunked);
            scope.spawn(move || {
                let _done = ProducerGuard(q_raw);
                chunker.reset();
                let mut pos = 0usize;
                let mut seq = 0usize;
                let mut spans: Vec<Range<usize>> = Vec::with_capacity(segment_chunks);
                while pos < data.len() {
                    let len = chunker.next_chunk_len(&data[pos..]);
                    assert!(
                        len >= 1 && pos + len <= data.len(),
                        "chunker returned invalid length {len}"
                    );
                    spans.push(pos..pos + len);
                    chunked.0.fetch_add(1, Ordering::Relaxed);
                    chunked.1.fetch_add(len as u64, Ordering::Relaxed);
                    pos += len;
                    if spans.len() == segment_chunks {
                        let batch = RawBatch {
                            seq,
                            spans: std::mem::replace(
                                &mut spans,
                                Vec::with_capacity(segment_chunks),
                            ),
                        };
                        seq += 1;
                        if q_raw.push(batch).is_err() {
                            return; // cancelled downstream
                        }
                    }
                }
                if !spans.is_empty() {
                    let _ = q_raw.push(RawBatch { seq, spans });
                }
            });
        }

        // Stage 2: fingerprinting worker pool.
        for _ in 0..workers {
            let (q_raw, q_hashed, hashed) = (&q_raw, &q_hashed, &hashed);
            scope.spawn(move || {
                let _done = ProducerGuard(q_hashed);
                while let Some(batch) = q_raw.pop() {
                    let fingerprints: Vec<Fingerprint> = batch
                        .spans
                        .iter()
                        .map(|s| Fingerprint::of(&data[s.clone()]))
                        .collect();
                    hashed
                        .0
                        .fetch_add(batch.spans.len() as u64, Ordering::Relaxed);
                    hashed.1.fetch_add(
                        batch.spans.iter().map(|s| s.len() as u64).sum::<u64>(),
                        Ordering::Relaxed,
                    );
                    let out = SegmentBatch {
                        seq: batch.seq,
                        spans: batch.spans,
                        fingerprints,
                    };
                    if q_hashed.push(out).is_err() {
                        return; // cancelled downstream
                    }
                }
            });
        }

        // Stage 3: in-order consumption on the calling thread. Workers
        // finish segments out of order; the reorder buffer holds at most
        // ~(workers + queue_depth) segments.
        let mut pending: BTreeMap<usize, SegmentBatch> = BTreeMap::new();
        let mut next_seq = 0usize;
        while let Some(batch) = q_hashed.pop() {
            pending.insert(batch.seq, batch);
            while let Some(batch) = pending.remove(&next_seq) {
                if let Err(e) = consume(&batch) {
                    q_raw.cancel();
                    q_hashed.cancel();
                    return Err(e);
                }
                next_seq += 1;
            }
        }
        debug_assert!(pending.is_empty(), "reorder buffer fully drained");
        Ok(())
    });

    let (chunk_blocked_full, hash_blocked_empty) = q_raw.blocked_counts();
    let (hash_blocked_full, commit_blocked_empty) = q_hashed.blocked_counts();
    stats.chunk.items += chunked.0.load(Ordering::Relaxed);
    stats.chunk.bytes += chunked.1.load(Ordering::Relaxed);
    stats.chunk.blocked_full += chunk_blocked_full;
    stats.hash.items += hashed.0.load(Ordering::Relaxed);
    stats.hash.bytes += hashed.1.load(Ordering::Relaxed);
    stats.hash.blocked_full += hash_blocked_full;
    stats.hash.blocked_empty += hash_blocked_empty;
    stats.commit.blocked_empty += commit_blocked_empty;
    result
}

/// Chunks and fingerprints `data` with the staged pipeline, returning the
/// spans and fingerprints in stream order — the concurrent equivalent of
/// `chunk_spans` + `fingerprints_parallel`, overlapping chunking with
/// hashing. Produces exactly the spans and fingerprints the sequential pair
/// would.
///
/// This is the front end `hidestore-core` wires into `HiDeStore::backup`
/// when configured with more than one thread.
///
/// # Examples
///
/// ```
/// use hidestore_chunking::{chunk_spans, TttdChunker};
/// use hidestore_dedup::staged_chunk_fingerprints;
///
/// let data = vec![42u8; 64 * 1024];
/// let (spans, fps) = staged_chunk_fingerprints(&data, &mut TttdChunker::new(1024), 32, 4, 4);
/// assert_eq!(spans, chunk_spans(&mut TttdChunker::new(1024), &data));
/// assert_eq!(spans.len(), fps.len());
/// ```
pub fn staged_chunk_fingerprints(
    data: &[u8],
    chunker: &mut (dyn Chunker + Send),
    segment_chunks: usize,
    workers: usize,
    queue_depth: usize,
) -> (Vec<Range<usize>>, Vec<Fingerprint>) {
    let opts = StagedOptions {
        segment_chunks,
        workers,
        queue_depth,
    };
    let mut stats = PipelineStageStats::default();
    let mut spans = Vec::new();
    let mut fingerprints = Vec::new();
    let result: Result<(), std::convert::Infallible> =
        run_staged(data, chunker, &opts, &mut stats, |batch| {
            spans.extend(batch.spans.iter().cloned());
            fingerprints.extend(batch.fingerprints.iter().copied());
            Ok(())
        });
    match result {
        Ok(()) => (spans, fingerprints),
        Err(never) => match never {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_chunking::{chunk_spans, FixedChunker, TttdChunker};

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn reference(data: &[u8], chunk: usize) -> (Vec<Range<usize>>, Vec<Fingerprint>) {
        let spans = chunk_spans(&mut TttdChunker::new(chunk), data);
        let fps = spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
        (spans, fps)
    }

    #[test]
    fn matches_sequential_front_end() {
        let data = noise(300_000, 1);
        let (want_spans, want_fps) = reference(&data, 1024);
        for workers in [1, 2, 4, 8] {
            for depth in [1, 2, 4] {
                let (spans, fps) = staged_chunk_fingerprints(
                    &data,
                    &mut TttdChunker::new(1024),
                    16,
                    workers,
                    depth,
                );
                assert_eq!(spans, want_spans, "workers={workers} depth={depth}");
                assert_eq!(fps, want_fps, "workers={workers} depth={depth}");
            }
        }
    }

    #[test]
    fn empty_input_produces_nothing() {
        let (spans, fps) = staged_chunk_fingerprints(&[], &mut TttdChunker::new(1024), 16, 4, 2);
        assert!(spans.is_empty());
        assert!(fps.is_empty());
    }

    #[test]
    fn partial_tail_segment_preserved() {
        // 10 fixed chunks with a segment size of 4: segments of 4, 4, 2.
        let data = vec![7u8; 1000];
        let (spans, fps) = staged_chunk_fingerprints(&data, &mut FixedChunker::new(100), 4, 3, 1);
        assert_eq!(spans.len(), 10);
        assert_eq!(fps.len(), 10);
        assert_eq!(spans.last(), Some(&(900..1000)));
    }

    #[test]
    fn consume_error_cancels_cleanly() {
        let data = noise(200_000, 2);
        let opts = StagedOptions {
            segment_chunks: 8,
            workers: 4,
            queue_depth: 1,
        };
        let mut stats = PipelineStageStats::default();
        let mut seen = 0usize;
        let result = run_staged(
            &data,
            &mut TttdChunker::new(1024),
            &opts,
            &mut stats,
            |_batch| {
                seen += 1;
                if seen == 3 {
                    Err("boom")
                } else {
                    Ok(())
                }
            },
        );
        assert_eq!(result, Err("boom"));
        assert_eq!(seen, 3, "no segment after the error is consumed");
    }

    #[test]
    fn counters_record_work() {
        let data = noise(100_000, 3);
        let mut stats = PipelineStageStats::default();
        let opts = StagedOptions {
            segment_chunks: 16,
            workers: 2,
            queue_depth: 2,
        };
        let result: Result<(), std::convert::Infallible> = run_staged(
            &data,
            &mut TttdChunker::new(1024),
            &opts,
            &mut stats,
            |_| Ok(()),
        );
        assert!(result.is_ok());
        assert_eq!(stats.chunk.bytes, data.len() as u64);
        assert_eq!(stats.hash.bytes, data.len() as u64);
        assert_eq!(stats.chunk.items, stats.hash.items);
        assert!(stats.chunk.items > 0);
    }
}
