//! Per-version and per-run statistics: the quantities behind the paper's
//! Figures 8–11.

use hidestore_storage::VersionId;

/// Statistics for one backed-up version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionStats {
    /// The backup version these stats describe.
    pub version: VersionId,
    /// Logical bytes of the backup stream.
    pub logical_bytes: u64,
    /// Bytes physically stored for this version (unique + rewritten chunks).
    pub stored_bytes: u64,
    /// Of `stored_bytes`, bytes that were duplicates rewritten for locality.
    pub rewritten_bytes: u64,
    /// Total chunks in the stream.
    pub chunks: u64,
    /// Chunks stored (unique + rewritten).
    pub stored_chunks: u64,
    /// On-disk index lookups attributable to this version (Figure 9).
    pub disk_lookups: u64,
    /// Index table size after this version, in bytes (Figure 10).
    pub index_table_bytes: u64,
}

impl VersionStats {
    /// Lookup requests per GB of logical data — the paper's Figure 9 metric.
    pub fn lookups_per_gb(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        self.disk_lookups as f64 / (self.logical_bytes as f64 / (1024.0 * 1024.0 * 1024.0))
    }

    /// Index bytes per MB of logical data — the paper's Figure 10 metric.
    pub fn index_bytes_per_mb(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        self.index_table_bytes as f64 / (self.logical_bytes as f64 / (1024.0 * 1024.0))
    }

    /// Fraction of this version's bytes that were eliminated.
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
    }
}

/// Throughput and backpressure counters for one pipeline stage.
///
/// The `blocked_*` counts record how many times a thread of this stage had
/// to wait on an inter-stage queue — `blocked_full` waiting to hand work
/// downstream, `blocked_empty` waiting for work from upstream. They show
/// *where* the staged pipeline is bottlenecked, but depend on scheduling
/// and are therefore not deterministic across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Work items (chunks or segments) processed by the stage.
    pub items: u64,
    /// Payload bytes processed by the stage.
    pub bytes: u64,
    /// Times the stage waited on a full downstream queue.
    pub blocked_full: u64,
    /// Times the stage waited on an empty upstream queue.
    pub blocked_empty: u64,
}

impl StageCounters {
    /// Accumulates another run's counters.
    pub fn merge(&mut self, other: &StageCounters) {
        self.items += other.items;
        self.bytes += other.bytes;
        self.blocked_full += other.blocked_full;
        self.blocked_empty += other.blocked_empty;
    }
}

/// Per-stage counters of the staged concurrent pipeline. All zeros when the
/// serial pipeline ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStageStats {
    /// The chunking stage (one thread; items are chunks).
    pub chunk: StageCounters,
    /// The fingerprinting worker pool (items are chunks).
    pub hash: StageCounters,
    /// The commit stage on the calling thread (items are chunks).
    pub commit: StageCounters,
}

impl PipelineStageStats {
    /// Accumulates another run's stage stats.
    pub fn merge(&mut self, other: &PipelineStageStats) {
        self.chunk.merge(&other.chunk);
        self.hash.merge(&other.hash);
        self.commit.merge(&other.commit);
    }
}

/// Cumulative statistics across all versions backed up by a pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackupRunStats {
    /// Total logical bytes across versions.
    pub logical_bytes: u64,
    /// Total physically stored bytes.
    pub stored_bytes: u64,
    /// Total rewritten (duplicate) bytes among the stored bytes.
    pub rewritten_bytes: u64,
    /// Total chunks processed.
    pub chunks: u64,
    /// Versions backed up.
    pub versions: u32,
    /// Stage activity of the concurrent pipeline (zeros under serial runs).
    /// Blocked counts are scheduling-dependent; exclude them when comparing
    /// runs for determinism.
    pub stages: PipelineStageStats,
}

impl BackupRunStats {
    /// The paper's deduplication ratio (Figure 8): eliminated bytes divided
    /// by total bytes. Higher is better; exact dedup gives the maximum.
    pub fn dedup_ratio(&self) -> f64 {
        if self.logical_bytes == 0 {
            return 0.0;
        }
        1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
    }

    /// Accumulates one version's stats.
    pub fn absorb(&mut self, v: &VersionStats) {
        self.logical_bytes += v.logical_bytes;
        self.stored_bytes += v.stored_bytes;
        self.rewritten_bytes += v.rewritten_bytes;
        self.chunks += v.chunks;
        self.versions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VersionStats {
        VersionStats {
            version: VersionId::new(1),
            logical_bytes: 1 << 30,
            stored_bytes: 1 << 28,
            rewritten_bytes: 1 << 20,
            chunks: 1000,
            stored_chunks: 250,
            disk_lookups: 500,
            index_table_bytes: 1 << 20,
        }
    }

    #[test]
    fn lookups_per_gb_normalizes() {
        assert!((sample().lookups_per_gb() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn index_bytes_per_mb_normalizes() {
        assert!((sample().index_bytes_per_mb() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn dedup_ratio_is_eliminated_fraction() {
        assert!((sample().dedup_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn run_stats_absorb() {
        let mut run = BackupRunStats::default();
        run.absorb(&sample());
        run.absorb(&sample());
        assert_eq!(run.versions, 2);
        assert_eq!(run.logical_bytes, 2 << 30);
        assert!((run.dedup_ratio() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn stage_counters_merge_adds() {
        let mut a = PipelineStageStats::default();
        a.chunk.items = 3;
        a.hash.bytes = 100;
        a.commit.blocked_empty = 2;
        let mut b = PipelineStageStats::default();
        b.chunk.items = 4;
        b.hash.bytes = 50;
        b.commit.blocked_empty = 1;
        a.merge(&b);
        assert_eq!(a.chunk.items, 7);
        assert_eq!(a.hash.bytes, 150);
        assert_eq!(a.commit.blocked_empty, 3);
    }

    #[test]
    fn zero_byte_version_is_safe() {
        let z = VersionStats {
            logical_bytes: 0,
            stored_bytes: 0,
            ..sample()
        };
        assert_eq!(z.lookups_per_gb(), 0.0);
        assert_eq!(z.dedup_ratio(), 0.0);
    }
}
