//! The fault-injecting [`Vfs`]: deterministic operation counting, one armed
//! fault, and crash semantics (everything after the fault fails too).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::vfs::{RealVfs, Vfs};

/// What kind of filesystem operation a failpoint site performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Whole-file read ([`Vfs::read`]).
    Read,
    /// Whole-file create + write ([`Vfs::write`]).
    Write,
    /// File-content fsync ([`Vfs::sync_file`]).
    SyncFile,
    /// Atomic rename ([`Vfs::rename`]).
    Rename,
    /// Directory-entry fsync ([`Vfs::sync_dir`]).
    SyncDir,
    /// File unlink ([`Vfs::remove_file`]).
    RemoveFile,
    /// Recursive directory creation ([`Vfs::create_dir_all`]).
    CreateDirAll,
    /// Directory listing ([`Vfs::read_dir`]).
    ReadDir,
    /// Recursive directory removal ([`Vfs::remove_dir_all`]).
    RemoveDirAll,
    /// Entry stat without following symlinks ([`Vfs::symlink_metadata`]).
    SymlinkMetadata,
    /// Symlink target read ([`Vfs::read_link`]).
    ReadLink,
    /// Symlink creation ([`Vfs::symlink`]).
    Symlink,
    /// Permission-bit update ([`Vfs::set_mode`]).
    SetMode,
    /// Mtime update ([`Vfs::set_mtime`]).
    SetMtime,
}

/// One numbered operation observed by a [`FaultVfs`].
///
/// A counting run collects these; the harness then replays the workload once
/// per record with that site armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Zero-based site index (the value [`FaultVfs::armed`] takes).
    pub index: u64,
    /// The operation performed at this site.
    pub kind: OpKind,
    /// Primary path of the operation (destination path for renames).
    pub path: PathBuf,
    /// Payload length for [`OpKind::Write`] sites, `0` otherwise. Torn-write
    /// variants pick a truncation point below this.
    pub len: usize,
}

/// How an armed failpoint site fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation performs no I/O and returns an injected error.
    Error,
    /// Only for [`Vfs::write`] sites: persist the first `k` bytes of the
    /// payload (a torn write), then fail. For non-write operations this
    /// behaves like [`FaultKind::Error`].
    Torn(usize),
}

#[derive(Debug)]
struct PlanState {
    /// Next site index to assign.
    ops: u64,
    /// Site to fail at, if any.
    armed: Option<(u64, FaultKind)>,
    /// Set once the armed fault has fired: the simulated process is dead and
    /// every later operation fails without touching the disk.
    crashed: bool,
    /// Every op observed so far (counting runs read this back).
    trace: Vec<OpRecord>,
}

/// A [`Vfs`] wrapping the real filesystem with deterministic fault injection.
///
/// Clones share one plan: a store holding several clones still counts a
/// single global operation sequence and dies as a single process when the
/// armed fault fires.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    real: RealVfs,
    plan: Arc<Mutex<PlanState>>,
}

impl FaultVfs {
    /// A vfs that never fails but numbers and records every operation —
    /// used to enumerate the failpoint sites of a workload.
    #[must_use]
    pub fn counting() -> Self {
        Self::with_plan(None)
    }

    /// A vfs whose `site`-th operation (zero-based) fails with `kind`,
    /// after which the instance is [`crashed`](Self::crashed).
    #[must_use]
    pub fn armed(site: u64, kind: FaultKind) -> Self {
        Self::with_plan(Some((site, kind)))
    }

    fn with_plan(armed: Option<(u64, FaultKind)>) -> Self {
        Self {
            real: RealVfs,
            plan: Arc::new(Mutex::new(PlanState {
                ops: 0,
                armed,
                crashed: false,
                trace: Vec::new(),
            })),
        }
    }

    /// Number of operations observed so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.plan.lock().ops
    }

    /// Whether the armed fault has fired. Once true, every subsequent
    /// operation fails without performing any I/O — the simulated process
    /// is dead.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.plan.lock().crashed
    }

    /// The numbered operations observed so far (counting-run output).
    #[must_use]
    pub fn trace(&self) -> Vec<OpRecord> {
        self.plan.lock().trace.clone()
    }

    fn injected_error(site: u64, kind: OpKind) -> io::Error {
        io::Error::other(format!(
            "injected fault at failpoint site {site} ({kind:?})"
        ))
    }

    fn crashed_error() -> io::Error {
        io::Error::other("process crashed at an earlier failpoint site")
    }

    /// Numbers one operation. Returns what the op must do: `Ok(None)` run
    /// normally, `Ok(Some(k))` tear the write at byte `k` then fail,
    /// `Err(_)` fail immediately (crashed, or armed with a plain error).
    fn step(&self, kind: OpKind, path: &Path, len: usize) -> io::Result<Option<usize>> {
        let mut plan = self.plan.lock();
        if plan.crashed {
            return Err(Self::crashed_error());
        }
        let index = plan.ops;
        plan.ops += 1;
        plan.trace.push(OpRecord {
            index,
            kind,
            path: path.to_path_buf(),
            len,
        });
        match plan.armed {
            Some((site, fault)) if site == index => {
                plan.crashed = true;
                match fault {
                    FaultKind::Torn(k) if kind == OpKind::Write => Ok(Some(k)),
                    _ => Err(Self::injected_error(site, kind)),
                }
            }
            _ => Ok(None),
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.step(OpKind::Read, path, 0)?;
        self.real.read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        match self.step(OpKind::Write, path, data.len())? {
            None => self.real.write(path, data),
            Some(k) => {
                // Torn write: persist a prefix, then report failure. The
                // prefix length is clamped so every site admits a torn
                // variant regardless of payload size.
                let k = k.min(data.len());
                self.real.write(path, &data[..k])?;
                Err(Self::injected_error(
                    self.ops().saturating_sub(1),
                    OpKind::Write,
                ))
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.step(OpKind::SyncFile, path, 0)?;
        self.real.sync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.step(OpKind::Rename, to, 0)?;
        self.real.rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.step(OpKind::SyncDir, path, 0)?;
        self.real.sync_dir(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.step(OpKind::RemoveFile, path, 0)?;
        self.real.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.step(OpKind::CreateDirAll, path, 0)?;
        self.real.create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.step(OpKind::ReadDir, path, 0)?;
        self.real.read_dir(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        self.step(OpKind::RemoveDirAll, path, 0)?;
        self.real.remove_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        // Not a failpoint site: existence checks perform no durable I/O and
        // a crashed process cannot observe anything anyway.
        self.real.exists(path)
    }

    fn symlink_metadata(&self, path: &Path) -> io::Result<crate::vfs::VfsMetadata> {
        self.step(OpKind::SymlinkMetadata, path, 0)?;
        self.real.symlink_metadata(path)
    }

    fn read_link(&self, path: &Path) -> io::Result<PathBuf> {
        self.step(OpKind::ReadLink, path, 0)?;
        self.real.read_link(path)
    }

    fn symlink(&self, target: &Path, link: &Path) -> io::Result<()> {
        self.step(OpKind::Symlink, link, 0)?;
        self.real.symlink(target, link)
    }

    fn set_mode(&self, path: &Path, mode: u32) -> io::Result<()> {
        self.step(OpKind::SetMode, path, 0)?;
        self.real.set_mode(path, mode)
    }

    fn set_mtime(&self, path: &Path, secs: i64, nanos: u32) -> io::Result<()> {
        self.step(OpKind::SetMtime, path, 0)?;
        self.real.set_mtime(path, secs, nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fp-fault-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn counting_records_sites_in_order() {
        let dir = scratch("count");
        let v = FaultVfs::counting();
        v.write(&dir.join("a"), b"one").unwrap();
        v.sync_file(&dir.join("a")).unwrap();
        v.rename(&dir.join("a"), &dir.join("b")).unwrap();
        let trace = v.trace();
        assert_eq!(v.ops(), 3);
        assert_eq!(
            trace.iter().map(|r| (r.index, r.kind)).collect::<Vec<_>>(),
            vec![
                (0, OpKind::Write),
                (1, OpKind::SyncFile),
                (2, OpKind::Rename)
            ]
        );
        assert_eq!(trace[0].len, 3);
        assert!(!v.crashed());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn armed_error_fails_site_and_crashes_rest() {
        let dir = scratch("armed");
        let v = FaultVfs::armed(1, FaultKind::Error);
        v.write(&dir.join("a"), b"one").unwrap();
        assert!(v.write(&dir.join("b"), b"two").is_err());
        assert!(v.crashed());
        // Nothing after the crash reaches the disk.
        assert!(v.write(&dir.join("c"), b"three").is_err());
        assert!(v.read(&dir.join("a")).is_err());
        assert!(!dir.join("b").exists());
        assert!(!dir.join("c").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_prefix() {
        let dir = scratch("torn");
        let v = FaultVfs::armed(0, FaultKind::Torn(2));
        assert!(v.write(&dir.join("a"), b"hello").is_err());
        assert_eq!(fs::read(dir.join("a")).unwrap(), b"he");
        assert!(v.crashed());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_on_non_write_acts_like_error() {
        let dir = scratch("torn-sync");
        let v = FaultVfs::armed(0, FaultKind::Torn(2));
        assert!(v.sync_dir(&dir).is_err());
        assert!(v.crashed());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn clones_share_one_process() {
        let dir = scratch("clone");
        let v = FaultVfs::armed(1, FaultKind::Error);
        let w = v.clone();
        v.write(&dir.join("a"), b"x").unwrap();
        assert!(w.write(&dir.join("b"), b"y").is_err());
        assert!(v.crashed() && w.crashed());
        fs::remove_dir_all(&dir).unwrap();
    }
}
