#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deterministic filesystem fault injection for crash-consistency testing.
//!
//! Backup repositories must survive a crash at *any* point of a save: the
//! paper's restart story (§4.1) assumes the appliance reopens with a
//! consistent repository. To prove that, every filesystem operation the
//! persistence layer performs goes through the [`Vfs`] io-shim trait, so the
//! production path and the fault-injected path are **the same code** — the
//! only difference is which `Vfs` implementation is plugged in:
//!
//! * [`RealVfs`] — a zero-sized passthrough to `std::fs`. Stores are generic
//!   over `V: Vfs` with `RealVfs` as the default, so the production build
//!   monomorphizes to direct `std::fs` calls: when injection is not in use
//!   the layer compiles to no-ops (no dynamic dispatch, no counters, no
//!   branches).
//! * [`FaultVfs`] — wraps the real filesystem with a deterministic operation
//!   counter. Every call is a numbered *failpoint site*; one site can be
//!   armed to fail (plain I/O error, or a torn write that persists only a
//!   prefix), and once a fault fires the instance enters a **crashed** state
//!   where every subsequent operation fails too — modelling process death,
//!   so nothing "after the crash" can leak to disk.
//!
//! A crash-matrix harness first runs a workload against a counting
//! [`FaultVfs`] to enumerate the sites (see [`FaultVfs::trace`]), then
//! replays the workload once per site with that site armed, reopens the
//! repository with [`RealVfs`], and asserts the recovery invariants.
//!
//! # Examples
//!
//! ```
//! use hidestore_failpoint::{FaultKind, FaultVfs, Vfs};
//!
//! let dir = std::env::temp_dir().join(format!("fp-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // Count the sites of a tiny workload.
//! let counting = FaultVfs::counting();
//! counting.create_dir_all(&dir)?;
//! counting.write(&dir.join("a"), b"hello")?;
//! assert_eq!(counting.ops(), 2);
//!
//! // Replay with site 1 (the write) armed: the write fails and the
//! // instance is crashed afterwards.
//! let faulty = FaultVfs::armed(1, FaultKind::Error);
//! faulty.create_dir_all(&dir)?;
//! assert!(faulty.write(&dir.join("a"), b"hello").is_err());
//! assert!(faulty.crashed());
//! assert!(faulty.read(&dir.join("a")).is_err(), "dead processes do no I/O");
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), std::io::Error>(())
//! ```

mod fault;
mod vfs;

pub use fault::{FaultKind, FaultVfs, OpKind, OpRecord};
pub use vfs::{mtime_to_system, system_to_mtime, RealVfs, Vfs, VfsEntryKind, VfsMetadata};
