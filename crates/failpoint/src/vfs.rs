//! The filesystem io-shim trait and its zero-cost production implementation.

use std::fmt;
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// What kind of directory entry a [`Vfs::symlink_metadata`] call found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VfsEntryKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
    /// A symbolic link (never followed by the shim).
    Symlink,
    /// Anything else: fifo, socket, device node. The tree layer skips
    /// these explicitly rather than guessing at semantics.
    Other,
}

/// The per-entry metadata surfaced by [`Vfs::symlink_metadata`]: exactly the
/// fields a tree backup records and a tree restore reapplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VfsMetadata {
    /// The entry kind (the symlink itself, never its target).
    pub kind: VfsEntryKind,
    /// Byte length (files; 0 for other kinds).
    pub len: u64,
    /// Unix permission bits (the low 12 bits of `st_mode`). On platforms
    /// without Unix permissions this degrades to `0o644`/`0o444` from the
    /// readonly flag.
    pub mode: u32,
    /// Modification time: whole seconds since the Unix epoch (may be
    /// negative for pre-epoch timestamps).
    pub mtime_secs: i64,
    /// Modification time: subsecond nanoseconds.
    pub mtime_nanos: u32,
}

impl VfsMetadata {
    /// The metadata's mtime as a [`SystemTime`].
    #[must_use]
    pub fn mtime(&self) -> SystemTime {
        mtime_to_system(self.mtime_secs, self.mtime_nanos)
    }
}

/// Converts a `(secs, nanos)` mtime pair back into a [`SystemTime`].
#[must_use]
pub fn mtime_to_system(secs: i64, nanos: u32) -> SystemTime {
    if secs >= 0 {
        UNIX_EPOCH + Duration::new(secs as u64, nanos)
    } else {
        // Pre-epoch: -1s +300ns means 700ns before the epoch.
        let before = Duration::new(secs.unsigned_abs(), 0);
        UNIX_EPOCH - before + Duration::new(0, nanos)
    }
}

/// Splits a [`SystemTime`] into the `(secs, nanos)` pair the shim records.
#[must_use]
pub fn system_to_mtime(time: SystemTime) -> (i64, u32) {
    match time.duration_since(UNIX_EPOCH) {
        Ok(d) => (d.as_secs() as i64, d.subsec_nanos()),
        Err(e) => {
            let d = e.duration();
            // Pre-epoch: round toward the epoch so nanos stays in range.
            if d.subsec_nanos() == 0 {
                (-(d.as_secs() as i64), 0)
            } else {
                (-(d.as_secs() as i64) - 1, 1_000_000_000 - d.subsec_nanos())
            }
        }
    }
}

/// The filesystem surface the persistence layer is written against.
///
/// Every operation a store performs on disk goes through one of these
/// methods, so a fault-injecting implementation observes (and can fail)
/// exactly the operations the production code performs — no parallel code
/// path to drift out of sync.
///
/// Implementations are cheap handles: stores clone them freely, and clones
/// of a fault-injecting instance share one operation counter (one simulated
/// process, one crash).
pub trait Vfs: Clone + Send + fmt::Debug {
    /// Reads the entire file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating if present) the file at `path` and writes `data`
    /// fully. Durability requires a following [`Vfs::sync_file`].
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error; an injected *torn*
    /// write persists only a prefix of `data` before failing.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Forces the file contents at `path` to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`. Durability of the new directory
    /// entry requires a following [`Vfs::sync_dir`] on the parent.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Forces the directory entries of `path` to stable storage, making
    /// renames and unlinks inside it durable.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error (including
    /// `NotFound`, which idempotent callers tolerate explicitly).
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates `path` and all missing parents.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries of the directory at `path`, sorted by name so
    /// every traversal is deterministic.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Removes the directory at `path` and everything beneath it.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists. Never fails (and is not a failpoint site: a
    /// crashed process cannot observe anything, so injection is moot).
    fn exists(&self, path: &Path) -> bool;

    /// Stats `path` *without* following symlinks, returning the entry kind,
    /// length, permission bits, and mtime.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn symlink_metadata(&self, path: &Path) -> io::Result<VfsMetadata>;

    /// Reads the target a symlink at `path` points to.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn read_link(&self, path: &Path) -> io::Result<PathBuf>;

    /// Creates a symlink at `link` pointing to `target` (which need not
    /// exist — dangling links are preserved verbatim).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error; `Unsupported` on
    /// platforms without symlinks.
    fn symlink(&self, target: &Path, link: &Path) -> io::Result<()>;

    /// Sets the Unix permission bits of `path` (follows symlinks — callers
    /// must not use this on symlink entries).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn set_mode(&self, path: &Path, mode: u32) -> io::Result<()>;

    /// Sets the modification time of `path` (follows symlinks — callers
    /// must not use this on symlink entries).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn set_mtime(&self, path: &Path, secs: i64, nanos: u32) -> io::Result<()>;
}

/// The production [`Vfs`]: a zero-sized passthrough to `std::fs`.
///
/// Stores default their `Vfs` parameter to `RealVfs`, so production builds
/// monomorphize every shim call into the direct `std::fs` call — the
/// injection layer costs nothing when injection is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::File::create(path)?.write_all(data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync: open the directory and sync its entry list. On
        // platforms where directories cannot be opened this degrades to a
        // no-op rather than failing the save.
        match fs::File::open(path) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        Ok(entries)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn symlink_metadata(&self, path: &Path) -> io::Result<VfsMetadata> {
        let meta = fs::symlink_metadata(path)?;
        let ft = meta.file_type();
        let kind = if ft.is_symlink() {
            VfsEntryKind::Symlink
        } else if ft.is_dir() {
            VfsEntryKind::Dir
        } else if ft.is_file() {
            VfsEntryKind::File
        } else {
            VfsEntryKind::Other
        };
        let (mtime_secs, mtime_nanos) = match meta.modified() {
            Ok(t) => system_to_mtime(t),
            // Platforms without mtimes: a fixed epoch timestamp keeps the
            // round trip deterministic rather than failing the walk.
            Err(_) => (0, 0),
        };
        Ok(VfsMetadata {
            kind,
            len: meta.len(),
            mode: real_mode(&meta),
            mtime_secs,
            mtime_nanos,
        })
    }

    fn read_link(&self, path: &Path) -> io::Result<PathBuf> {
        fs::read_link(path)
    }

    #[cfg(unix)]
    fn symlink(&self, target: &Path, link: &Path) -> io::Result<()> {
        std::os::unix::fs::symlink(target, link)
    }

    #[cfg(not(unix))]
    fn symlink(&self, _target: &Path, _link: &Path) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "symlinks are not supported on this platform",
        ))
    }

    fn set_mode(&self, path: &Path, mode: u32) -> io::Result<()> {
        fs::set_permissions(path, real_permissions(path, mode)?)
    }

    fn set_mtime(&self, path: &Path, secs: i64, nanos: u32) -> io::Result<()> {
        // Read-only open suffices: futimens works on any open descriptor,
        // and directories cannot be opened for writing at all.
        fs::File::open(path)?.set_modified(mtime_to_system(secs, nanos))
    }
}

/// Unix permission bits of a metadata record (readonly-flag fallback
/// elsewhere).
#[cfg(unix)]
fn real_mode(meta: &fs::Metadata) -> u32 {
    use std::os::unix::fs::PermissionsExt;
    meta.permissions().mode() & 0o7777
}

#[cfg(not(unix))]
fn real_mode(meta: &fs::Metadata) -> u32 {
    if meta.permissions().readonly() {
        0o444
    } else {
        0o644
    }
}

/// Builds the platform permission set for `mode`.
#[cfg(unix)]
fn real_permissions(_path: &Path, mode: u32) -> io::Result<fs::Permissions> {
    use std::os::unix::fs::PermissionsExt;
    Ok(fs::Permissions::from_mode(mode))
}

#[cfg(not(unix))]
fn real_permissions(path: &Path, mode: u32) -> io::Result<fs::Permissions> {
    let mut perms = fs::metadata(path)?.permissions();
    perms.set_readonly(mode & 0o200 == 0);
    Ok(perms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fp-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn real_vfs_round_trip() {
        let dir = scratch("roundtrip");
        let v = RealVfs;
        v.create_dir_all(&dir).unwrap();
        let file = dir.join("x.bin");
        v.write(&file, b"abc").unwrap();
        v.sync_file(&file).unwrap();
        assert_eq!(v.read(&file).unwrap(), b"abc");
        let moved = dir.join("y.bin");
        v.rename(&file, &moved).unwrap();
        v.sync_dir(&dir).unwrap();
        assert!(v.exists(&moved) && !v.exists(&file));
        assert_eq!(v.read_dir(&dir).unwrap(), vec![moved.clone()]);
        v.remove_file(&moved).unwrap();
        v.remove_dir_all(&dir).unwrap();
        assert!(!v.exists(&dir));
    }

    #[test]
    fn read_dir_is_sorted() {
        let dir = scratch("sorted");
        let v = RealVfs;
        v.create_dir_all(&dir).unwrap();
        for name in ["c", "a", "b"] {
            v.write(&dir.join(name), b"").unwrap();
        }
        let names: Vec<_> = v
            .read_dir(&dir)
            .unwrap()
            .into_iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn real_vfs_is_zero_sized() {
        assert_eq!(std::mem::size_of::<RealVfs>(), 0);
    }

    #[test]
    fn metadata_symlink_and_times_round_trip() {
        let dir = scratch("meta");
        let v = RealVfs;
        v.create_dir_all(&dir).unwrap();
        let file = dir.join("f");
        v.write(&file, b"hello").unwrap();
        let meta = v.symlink_metadata(&file).unwrap();
        assert_eq!(meta.kind, VfsEntryKind::File);
        assert_eq!(meta.len, 5);

        v.set_mode(&file, 0o640).unwrap();
        v.set_mtime(&file, 1_234_567, 500_000_000).unwrap();
        let meta = v.symlink_metadata(&file).unwrap();
        #[cfg(unix)]
        assert_eq!(meta.mode, 0o640);
        assert_eq!(
            (meta.mtime_secs, meta.mtime_nanos),
            (1_234_567, 500_000_000)
        );

        let sub = dir.join("sub");
        v.create_dir_all(&sub).unwrap();
        assert_eq!(v.symlink_metadata(&sub).unwrap().kind, VfsEntryKind::Dir);

        #[cfg(unix)]
        {
            let link = dir.join("l");
            v.symlink(Path::new("f"), &link).unwrap();
            let meta = v.symlink_metadata(&link).unwrap();
            assert_eq!(meta.kind, VfsEntryKind::Symlink);
            assert_eq!(v.read_link(&link).unwrap(), PathBuf::from("f"));
            // Dangling targets are preserved verbatim.
            let dangling = dir.join("d");
            v.symlink(Path::new("no-such-entry"), &dangling).unwrap();
            assert_eq!(
                v.read_link(&dangling).unwrap(),
                PathBuf::from("no-such-entry")
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mtime_conversions_invert_including_pre_epoch() {
        for (secs, nanos) in [
            (0, 0),
            (1_700_000_000, 999_999_999),
            (-1, 300),
            (-86_400, 0),
        ] {
            let t = mtime_to_system(secs, nanos);
            assert_eq!(system_to_mtime(t), (secs, nanos), "for {secs}s {nanos}ns");
        }
    }
}
