//! The filesystem io-shim trait and its zero-cost production implementation.

use std::fmt;
use std::fs;
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// The filesystem surface the persistence layer is written against.
///
/// Every operation a store performs on disk goes through one of these
/// methods, so a fault-injecting implementation observes (and can fail)
/// exactly the operations the production code performs — no parallel code
/// path to drift out of sync.
///
/// Implementations are cheap handles: stores clone them freely, and clones
/// of a fault-injecting instance share one operation counter (one simulated
/// process, one crash).
pub trait Vfs: Clone + Send + fmt::Debug {
    /// Reads the entire file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating if present) the file at `path` and writes `data`
    /// fully. Durability requires a following [`Vfs::sync_file`].
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error; an injected *torn*
    /// write persists only a prefix of `data` before failing.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Forces the file contents at `path` to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn sync_file(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to`. Durability of the new directory
    /// entry requires a following [`Vfs::sync_dir`] on the parent.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Forces the directory entries of `path` to stable storage, making
    /// renames and unlinks inside it durable.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error (including
    /// `NotFound`, which idempotent callers tolerate explicitly).
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates `path` and all missing parents.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists the entries of the directory at `path`, sorted by name so
    /// every traversal is deterministic.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Removes the directory at `path` and everything beneath it.
    ///
    /// # Errors
    ///
    /// Propagates (or injects) the underlying I/O error.
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Whether `path` exists. Never fails (and is not a failpoint site: a
    /// crashed process cannot observe anything, so injection is moot).
    fn exists(&self, path: &Path) -> bool;
}

/// The production [`Vfs`]: a zero-sized passthrough to `std::fs`.
///
/// Stores default their `Vfs` parameter to `RealVfs`, so production builds
/// monomorphize every shim call into the direct `std::fs` call — the
/// injection layer costs nothing when injection is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::File::create(path)?.write_all(data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync: open the directory and sync its entry list. On
        // platforms where directories cannot be opened this degrades to a
        // no-op rather than failing the save.
        match fs::File::open(path) {
            Ok(d) => d.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut entries: Vec<PathBuf> = fs::read_dir(path)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        Ok(entries)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::remove_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fp-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn real_vfs_round_trip() {
        let dir = scratch("roundtrip");
        let v = RealVfs;
        v.create_dir_all(&dir).unwrap();
        let file = dir.join("x.bin");
        v.write(&file, b"abc").unwrap();
        v.sync_file(&file).unwrap();
        assert_eq!(v.read(&file).unwrap(), b"abc");
        let moved = dir.join("y.bin");
        v.rename(&file, &moved).unwrap();
        v.sync_dir(&dir).unwrap();
        assert!(v.exists(&moved) && !v.exists(&file));
        assert_eq!(v.read_dir(&dir).unwrap(), vec![moved.clone()]);
        v.remove_file(&moved).unwrap();
        v.remove_dir_all(&dir).unwrap();
        assert!(!v.exists(&dir));
    }

    #[test]
    fn read_dir_is_sorted() {
        let dir = scratch("sorted");
        let v = RealVfs;
        v.create_dir_all(&dir).unwrap();
        for name in ["c", "a", "b"] {
            v.write(&dir.join(name), b"").unwrap();
        }
        let names: Vec<_> = v
            .read_dir(&dir)
            .unwrap()
            .into_iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a", "b", "c"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn real_vfs_is_zero_sized() {
        assert_eq!(std::mem::size_of::<RealVfs>(), 0);
    }
}
