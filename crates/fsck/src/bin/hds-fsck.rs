//! `hds-fsck` — offline invariant checker for an on-disk HiDeStore
//! repository directory (as written by `HiDeStore::save_repository`).
//!
//! Usage: `hds-fsck <repo-dir> [--tenants] [--no-content] [--json]`
//!
//! Besides the cross-layer invariants, crash-recovery state is reported as
//! warnings: an interrupted save transaction pending in `staging/` (scanned
//! *before* the repository is opened, since opening resolves it by rolling
//! the transaction forward or back) and artifacts held in `quarantine/` by
//! degraded-mode recovery.
//!
//! With `--tenants` the argument is a multi-tenant root (as served by
//! `hds-served --tenants`): every repository under `<root>/tenants/<id>/`
//! is audited independently, directory entries that are not valid tenant
//! ids are reported as foreign, and the exit code aggregates across all
//! tenants.
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error.

use std::process::ExitCode;

use hidestore_core::{
    repository_recovery_state, HiDeStore, HiDeStoreConfig, PendingJournal, RepositoryMeta,
};
use hidestore_fsck::{AuditOptions, AuditReport, Finding, FindingKind, Severity, SystemAuditor};
use hidestore_proto::TenantId;
use hidestore_tenant::TENANTS_SUBDIR;

struct Args {
    dir: String,
    verify_content: bool,
    json: bool,
    tenants: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut verify_content = true;
    let mut json = false;
    let mut tenants = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-content" => verify_content = false,
            "--json" => json = true,
            "--tenants" => tenants = true,
            "-h" | "--help" => {
                return Err(
                    "usage: hds-fsck <repo-dir> [--tenants] [--no-content] [--json]\n\
                     \n\
                     Checks every cross-layer invariant of a HiDeStore repository and\n\
                     reports violations as typed findings. Crash-recovery state is\n\
                     reported as warnings: an interrupted save transaction pending in\n\
                     staging/ (inspected before the open resolves it) and artifacts\n\
                     held in quarantine/ by degraded-mode recovery.\n\
                     \n\
                     --tenants     audit a multi-tenant root: every repository under\n\
                     \x20             <repo-dir>/tenants/<id>/ is checked independently\n\
                     \x20             and the exit code aggregates across tenants\n\
                     --no-content  skip payload re-hashing (for trace-driven repos)\n\
                     --json        machine-readable report"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other => {
                if dir.replace(other.to_string()).is_some() {
                    return Err("expected exactly one repository directory".into());
                }
            }
        }
    }
    let dir = dir.ok_or("usage: hds-fsck <repo-dir> [--tenants] [--no-content] [--json]")?;
    Ok(Args {
        dir,
        verify_content,
        json,
        tenants,
    })
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The report's key/value body as JSON lines, one `indent` deep, without
/// the surrounding braces (so it can be embedded per tenant).
fn json_report_body(report: &AuditReport, indent: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{indent}\"clean\": {},\n", report.is_clean()));
    out.push_str(&format!(
        "{indent}\"containers_checked\": {},\n",
        report.containers_checked
    ));
    out.push_str(&format!(
        "{indent}\"chunks_checked\": {},\n",
        report.chunks_checked
    ));
    out.push_str(&format!(
        "{indent}\"recipes_checked\": {},\n",
        report.recipes_checked
    ));
    out.push_str(&format!(
        "{indent}\"entries_checked\": {},\n",
        report.entries_checked
    ));
    out.push_str(&format!(
        "{indent}\"orphan_chunks\": {},\n",
        report.orphan_chunks
    ));
    out.push_str(&format!(
        "{indent}\"orphan_bytes\": {},\n",
        report.orphan_bytes
    ));
    out.push_str(&format!(
        "{indent}\"tree_manifests_checked\": {},\n",
        report.tree_manifests_checked
    ));
    out.push_str(&format!("{indent}\"findings\": [\n"));
    for (i, finding) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "{indent}  {{\"severity\": \"{}\", \"message\": \"{}\"}}{comma}\n",
            finding.severity,
            json_escape(&finding.to_string())
        ));
    }
    out.push_str(&format!("{indent}]"));
    out
}

fn print_json(report: &AuditReport) {
    println!("{{");
    print!("{}", json_report_body(report, "  "));
    println!();
    println!("}}");
}

/// Audits one repository directory, folding pre-open crash-recovery state
/// into the findings. This is the single-repository core both modes share.
fn audit_repo(dir: &str, verify_content: bool) -> Result<AuditReport, String> {
    // Crash-recovery scan *before* the open: opening resolves a pending
    // journal (roll forward or back), so this is the only moment it can be
    // observed and reported.
    let recovery =
        repository_recovery_state(dir).map_err(|e| format!("cannot scan recovery state: {e}"))?;
    let mut pre_open: Vec<Finding> = Vec::new();
    if let Some(pending) = recovery.pending_journal {
        let detail = match pending {
            PendingJournal::RollForward {
                publishes,
                removals,
            } => format!(
                "valid commit record ({publishes} publishes, {removals} removals); \
                 opening the repository rolls it forward"
            ),
            PendingJournal::RollBack => "no valid commit record; opening the repository \
                 discards the staging tree"
                .to_string(),
        };
        pre_open.push(Finding {
            severity: Severity::Warning,
            kind: FindingKind::PendingJournal { detail },
        });
    }

    // The repository meta file records the history depth the store was
    // built with; opening with a mismatched depth is refused by the core.
    let meta = RepositoryMeta::read(dir)
        .map_err(|e| format!("cannot read repository meta: {e}"))?
        .ok_or_else(|| format!("{dir}: not a HiDeStore repository (no meta file)"))?;

    let config = HiDeStoreConfig::default().with_history_depth(meta.history_depth as usize);
    let mut system = HiDeStore::open_repository(config, dir)
        .map_err(|e| format!("cannot open repository: {e}"))?;

    let auditor = SystemAuditor::with_options(AuditOptions { verify_content });
    let mut report = auditor.audit(&mut system);
    // Pre-open findings (the pending journal) lead the report; quarantine
    // contents are already reported by the auditor via the system's views.
    report.findings.splice(0..0, pre_open);
    Ok(report)
}

fn run_single(args: &Args) -> Result<Option<Severity>, String> {
    let report = audit_repo(&args.dir, args.verify_content)?;
    if args.json {
        print_json(&report);
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!("{report}");
    }
    Ok(report.max_severity())
}

/// One tenant slot under the root, audited or rejected.
struct TenantOutcome {
    name: String,
    /// `Ok(report)` for a valid tenant id whose repository opened;
    /// `Err(why)` for a foreign entry or an unopenable repository.
    result: Result<AuditReport, String>,
}

fn run_tenants(args: &Args) -> Result<Option<Severity>, String> {
    let tenants_dir = std::path::Path::new(&args.dir).join(TENANTS_SUBDIR);
    if !tenants_dir.is_dir() {
        return Err(format!(
            "{}: not a multi-tenant root (no {TENANTS_SUBDIR}/ directory)",
            args.dir
        ));
    }
    let mut names: Vec<String> = std::fs::read_dir(&tenants_dir)
        .map_err(|e| format!("cannot read {}: {e}", tenants_dir.display()))?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();

    let mut outcomes: Vec<TenantOutcome> = Vec::new();
    for name in names {
        // The registry only ever creates directories named by a valid
        // tenant id; anything else under tenants/ was put there by hand
        // and is a finding, not a repository to open.
        let result = match TenantId::new(&name) {
            Err(e) => Err(format!("foreign entry (not a tenant id): {e}")),
            Ok(_) if !tenants_dir.join(&name).is_dir() => {
                Err("foreign entry (not a directory)".to_string())
            }
            Ok(_) => audit_repo(
                tenants_dir.join(&name).to_string_lossy().as_ref(),
                args.verify_content,
            ),
        };
        outcomes.push(TenantOutcome { name, result });
    }

    let mut worst: Option<Severity> = None;
    let mut bump = |severity: Option<Severity>| {
        worst = match (worst, severity) {
            (w, None) => w,
            (None, s) => s,
            (Some(Severity::Error), _) | (_, Some(Severity::Error)) => Some(Severity::Error),
            _ => Some(Severity::Warning),
        };
    };
    for outcome in &outcomes {
        match &outcome.result {
            Ok(report) => bump(report.max_severity()),
            Err(_) => bump(Some(Severity::Error)),
        }
    }

    if args.json {
        println!("{{");
        println!("  \"clean\": {},", worst.is_none());
        println!("  \"tenants_checked\": {},", outcomes.len());
        println!("  \"tenants\": [");
        for (i, outcome) in outcomes.iter().enumerate() {
            let comma = if i + 1 < outcomes.len() { "," } else { "" };
            println!("    {{");
            println!("      \"tenant\": \"{}\",", json_escape(&outcome.name));
            match &outcome.result {
                Ok(report) => {
                    print!("{}", json_report_body(report, "      "));
                    println!();
                }
                Err(why) => {
                    println!("      \"clean\": false,");
                    println!("      \"error\": \"{}\"", json_escape(why));
                }
            }
            println!("    }}{comma}");
        }
        println!("  ]");
        println!("}}");
    } else {
        if outcomes.is_empty() {
            println!("no tenants under {}", tenants_dir.display());
        }
        for outcome in &outcomes {
            println!("== tenant {} ==", outcome.name);
            match &outcome.result {
                Ok(report) => {
                    for finding in &report.findings {
                        println!("{finding}");
                    }
                    println!("{report}");
                }
                Err(why) => println!("ERROR: {why}"),
            }
        }
        println!(
            "{} tenants checked, aggregate: {}",
            outcomes.len(),
            match worst {
                None => "clean",
                Some(Severity::Warning) => "warnings",
                Some(Severity::Error) => "errors",
            }
        );
    }
    Ok(worst)
}

fn main() -> ExitCode {
    let result = match parse_args() {
        Ok(args) if args.tenants => run_tenants(&args),
        Ok(args) => run_single(&args),
        Err(msg) => Err(msg),
    };
    match result {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(Severity::Warning)) | Ok(Some(Severity::Error)) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("hds-fsck: {msg}");
            ExitCode::from(2)
        }
    }
}
