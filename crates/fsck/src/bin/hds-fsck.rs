//! `hds-fsck` — offline invariant checker for an on-disk HiDeStore
//! repository directory (as written by `HiDeStore::save_repository`).
//!
//! Usage: `hds-fsck <repo-dir> [--no-content] [--json]`
//!
//! Besides the cross-layer invariants, crash-recovery state is reported as
//! warnings: an interrupted save transaction pending in `staging/` (scanned
//! *before* the repository is opened, since opening resolves it by rolling
//! the transaction forward or back) and artifacts held in `quarantine/` by
//! degraded-mode recovery.
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error.

use std::process::ExitCode;

use hidestore_core::{
    repository_recovery_state, HiDeStore, HiDeStoreConfig, PendingJournal, RepositoryMeta,
};
use hidestore_fsck::{AuditOptions, AuditReport, Finding, FindingKind, Severity, SystemAuditor};

struct Args {
    dir: String,
    verify_content: bool,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut dir = None;
    let mut verify_content = true;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-content" => verify_content = false,
            "--json" => json = true,
            "-h" | "--help" => {
                return Err("usage: hds-fsck <repo-dir> [--no-content] [--json]\n\
                     \n\
                     Checks every cross-layer invariant of a HiDeStore repository and\n\
                     reports violations as typed findings. Crash-recovery state is\n\
                     reported as warnings: an interrupted save transaction pending in\n\
                     staging/ (inspected before the open resolves it) and artifacts\n\
                     held in quarantine/ by degraded-mode recovery.\n\
                     \n\
                     --no-content  skip payload re-hashing (for trace-driven repos)\n\
                     --json        machine-readable report"
                    .into())
            }
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other => {
                if dir.replace(other.to_string()).is_some() {
                    return Err("expected exactly one repository directory".into());
                }
            }
        }
    }
    let dir = dir.ok_or("usage: hds-fsck <repo-dir> [--no-content] [--json]")?;
    Ok(Args {
        dir,
        verify_content,
        json,
    })
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(report: &AuditReport) {
    println!("{{");
    println!("  \"clean\": {},", report.is_clean());
    println!("  \"containers_checked\": {},", report.containers_checked);
    println!("  \"chunks_checked\": {},", report.chunks_checked);
    println!("  \"recipes_checked\": {},", report.recipes_checked);
    println!("  \"entries_checked\": {},", report.entries_checked);
    println!("  \"orphan_chunks\": {},", report.orphan_chunks);
    println!("  \"orphan_bytes\": {},", report.orphan_bytes);
    println!("  \"findings\": [");
    for (i, finding) in report.findings.iter().enumerate() {
        let comma = if i + 1 < report.findings.len() {
            ","
        } else {
            ""
        };
        println!(
            "    {{\"severity\": \"{}\", \"message\": \"{}\"}}{comma}",
            finding.severity,
            json_escape(&finding.to_string())
        );
    }
    println!("  ]");
    println!("}}");
}

fn run() -> Result<AuditReport, String> {
    let args = parse_args()?;

    // Crash-recovery scan *before* the open: opening resolves a pending
    // journal (roll forward or back), so this is the only moment it can be
    // observed and reported.
    let recovery = repository_recovery_state(&args.dir)
        .map_err(|e| format!("cannot scan recovery state: {e}"))?;
    let mut pre_open: Vec<Finding> = Vec::new();
    if let Some(pending) = recovery.pending_journal {
        let detail = match pending {
            PendingJournal::RollForward {
                publishes,
                removals,
            } => format!(
                "valid commit record ({publishes} publishes, {removals} removals); \
                 opening the repository rolls it forward"
            ),
            PendingJournal::RollBack => "no valid commit record; opening the repository \
                 discards the staging tree"
                .to_string(),
        };
        pre_open.push(Finding {
            severity: Severity::Warning,
            kind: FindingKind::PendingJournal { detail },
        });
    }

    // The repository meta file records the history depth the store was
    // built with; opening with a mismatched depth is refused by the core.
    let meta = RepositoryMeta::read(&args.dir)
        .map_err(|e| format!("cannot read repository meta: {e}"))?
        .ok_or_else(|| format!("{}: not a HiDeStore repository (no meta file)", args.dir))?;

    let config = HiDeStoreConfig::default().with_history_depth(meta.history_depth as usize);
    let mut system = HiDeStore::open_repository(config, &args.dir)
        .map_err(|e| format!("cannot open repository: {e}"))?;

    let auditor = SystemAuditor::with_options(AuditOptions {
        verify_content: args.verify_content,
    });
    let mut report = auditor.audit(&mut system);
    // Pre-open findings (the pending journal) lead the report; quarantine
    // contents are already reported by the auditor via the system's views.
    report.findings.splice(0..0, pre_open);

    if args.json {
        print_json(&report);
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        println!("{report}");
    }
    Ok(report)
}

fn main() -> ExitCode {
    match run() {
        Ok(report) => match report.max_severity() {
            None => ExitCode::SUCCESS,
            Some(Severity::Warning) | Some(Severity::Error) => ExitCode::from(1),
        },
        Err(msg) => {
            eprintln!("hds-fsck: {msg}");
            ExitCode::from(2)
        }
    }
}
