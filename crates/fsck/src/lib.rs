#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Cross-layer invariant checker for HiDeStore repositories.
//!
//! HiDeStore's correctness rests on invariants that span three layers —
//! recipes, the active container pool, and the archival container store —
//! plus the in-memory fingerprint cache:
//!
//! 1. **Reference integrity** — every recipe entry's CID resolves, possibly
//!    through a recipe chain, to a container that actually holds the chunk.
//! 2. **Content integrity** — every stored chunk's payload re-hashes to its
//!    20-byte fingerprint.
//! 3. **Structural integrity** — each container's metadata section agrees
//!    with its data section: entry offsets/lengths in bounds, live entries
//!    non-overlapping, live-byte accounting exact.
//! 4. **ID-space disjointness** — archival containers live below
//!    [`ACTIVE_ID_BASE`], active-pool snapshots at or above it, so one
//!    restore plan can mix both without collision.
//! 5. **Chain sanity** — recipe chains only point *forward* (to strictly
//!    newer versions), are acyclic, and never dangle.
//! 6. **Cold accounting** — archival chunks referenced by no recipe are
//!    tolerated only in version-tagged containers (the documented
//!    failed-demotion case, reclaimed by tag-ranged deletion); an orphan in
//!    an untagged container would leak forever.
//!
//! [`SystemAuditor`] walks all of it and reports each violation as a typed
//! [`Finding`] with a [`Severity`] — it never panics on corrupt input, so a
//! single audit pass enumerates *all* damage. The `hds-fsck` binary runs the
//! same auditor against an on-disk repository directory.
//!
//! **Crash-recovery awareness**: repositories opened from disk may carry
//! state left by degraded-mode recovery — artifacts moved to `quarantine/`
//! ([`FindingKind::QuarantinedArtifact`]) and recipe references that resolve
//! into them ([`FindingKind::QuarantinedRef`]). Both are reported at
//! [`Severity::Warning`]: the damage is real but already contained, and
//! every version without quarantined dependencies still restores. The
//! `hds-fsck` binary additionally reports an interrupted save transaction
//! pending in `staging/` ([`FindingKind::PendingJournal`]) by scanning the
//! directory *before* opening it (opening resolves the transaction).
//!
//! # Examples
//!
//! ```
//! use hidestore_core::{HiDeStore, HiDeStoreConfig};
//! use hidestore_fsck::SystemAuditor;
//! use hidestore_storage::MemoryContainerStore;
//!
//! let mut system = HiDeStore::new(
//!     HiDeStoreConfig::small_for_tests(),
//!     MemoryContainerStore::new(),
//! );
//! system.backup(b"some data to back up and audit afterwards")?;
//! let report = SystemAuditor::new().audit(&mut system);
//! assert!(report.is_clean(), "{report}");
//! # Ok::<(), hidestore_core::HiDeStoreError>(())
//! ```

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use hidestore_core::chain::resolve_plan;
use hidestore_core::{
    ActivePool, HiDeStore, IntegrityViews, QuarantinedArtifact as CoreArtifact, ACTIVE_ID_BASE,
};
use hidestore_hash::Fingerprint;
use hidestore_storage::{Cid, Container, ContainerId, ContainerStore, RecipeStore};
use hidestore_tree::manifest::{
    decode_stream_header, is_tree_stream, EntryPayload, TreeManifest, STREAM_HEADER_LEN,
};

/// How bad a [`Finding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious or wasteful, but every retained version still restores
    /// correctly (e.g. a stale cache entry, a leaked orphan chunk).
    Warning,
    /// An invariant is broken: some restore would fail or return wrong data,
    /// or metadata no longer describes the physical layout.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The specific invariant violation a [`Finding`] reports.
///
/// Container IDs are raw `u32`s (archival IDs below [`ACTIVE_ID_BASE`],
/// active-pool snapshot IDs at or above it); versions are raw recipe
/// version numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FindingKind {
    /// A container listed by the store could not be read or decoded.
    UnreadableContainer {
        /// The unreadable container's ID.
        id: u32,
        /// The storage-layer error message.
        detail: String,
    },
    /// A container sits in the wrong ID space (an archival container at or
    /// above [`ACTIVE_ID_BASE`], or a pool container whose ID does not match
    /// its pool slot).
    IdSpaceViolation {
        /// The offending container ID.
        id: u32,
        /// Whether the container was found on the archival side.
        archival: bool,
    },
    /// A container metadata entry points past the end of the data section.
    EntryOutOfBounds {
        /// The container holding the bad entry.
        container: u32,
        /// The chunk whose entry is out of bounds.
        fingerprint: Fingerprint,
        /// The entry's byte offset.
        offset: u32,
        /// The entry's byte length.
        length: u32,
        /// The data section's actual size.
        data_len: u64,
    },
    /// Two live metadata entries of one container overlap in the data
    /// section.
    EntryOverlap {
        /// The container holding the overlapping entries.
        container: u32,
        /// One of the overlapping chunks.
        a: Fingerprint,
        /// The other overlapping chunk.
        b: Fingerprint,
    },
    /// A chunk's payload does not re-hash to its fingerprint.
    ChunkHashMismatch {
        /// The container holding the corrupt chunk.
        container: u32,
        /// The expected fingerprint.
        fingerprint: Fingerprint,
    },
    /// A container's recorded live-byte count disagrees with the sum of its
    /// entry lengths.
    AccountingMismatch {
        /// The container with inconsistent accounting.
        container: u32,
        /// The container's own live-byte figure.
        recorded: u64,
        /// The sum of entry lengths the auditor computed.
        computed: u64,
    },
    /// An archival container's version tag is newer than any version the
    /// system has assigned — tag-ranged deletion would misjudge it.
    FutureVersionTag {
        /// The container with the anomalous tag.
        container: u32,
        /// The tag found.
        tag: u32,
        /// The system's next (not yet assigned) version number.
        next_version: u32,
    },
    /// A recipe entry references an archival container the store does not
    /// have.
    DanglingArchivalRef {
        /// The version whose recipe holds the entry.
        version: u32,
        /// The referenced chunk.
        fingerprint: Fingerprint,
        /// The missing container ID.
        container: u32,
    },
    /// A referenced archival container exists but does not hold the chunk.
    ArchivalChunkMissing {
        /// The version whose recipe holds the entry.
        version: u32,
        /// The chunk the container should hold.
        fingerprint: Fingerprint,
        /// The container that lacks it.
        container: u32,
    },
    /// A recipe entry marked `ACTIVE` references a chunk absent from the
    /// active pool.
    ActiveChunkMissingFromPool {
        /// The version whose recipe holds the entry.
        version: u32,
        /// The missing chunk.
        fingerprint: Fingerprint,
    },
    /// A chained recipe entry points at a version with no retained recipe.
    MissingChainTarget {
        /// The version whose recipe chain broke.
        version: u32,
        /// The chunk being resolved.
        fingerprint: Fingerprint,
        /// The chained-to version that has no recipe.
        target: u32,
    },
    /// A chain hop landed in a recipe that does not contain the chunk.
    ChainBrokenAt {
        /// The version whose entry started the walk.
        version: u32,
        /// The chunk being resolved.
        fingerprint: Fingerprint,
        /// The recipe that lacks the chunk.
        at: u32,
    },
    /// A chain hop points backward or sideways (target version not strictly
    /// newer) — forward-only chains are what makes resolution finite.
    ChainNotVersionOrdered {
        /// The version whose entry started the walk.
        version: u32,
        /// The chunk being resolved.
        fingerprint: Fingerprint,
        /// The version the bad hop left from.
        from: u32,
        /// The version the bad hop points to.
        to: u32,
    },
    /// Following a chain revisited a version — the chain is cyclic and the
    /// chunk unresolvable.
    ChainCycle {
        /// The version whose entry started the walk.
        version: u32,
        /// The chunk whose chain cycles.
        fingerprint: Fingerprint,
    },
    /// A fingerprint-cache entry disagrees with the pool (chunk gone, or
    /// pooled in a different container than the cache believes).
    StaleCacheEntry {
        /// The cached chunk.
        fingerprint: Fingerprint,
        /// The pool-local container ID the cache records.
        cached_cid: u32,
    },
    /// An unreferenced archival chunk lives in an *untagged* container:
    /// tag-ranged deletion will never reclaim it.
    OrphanUntagged {
        /// The untagged container holding the orphan.
        container: u32,
        /// The orphaned chunk.
        fingerprint: Fingerprint,
    },
    /// Degraded-mode recovery moved a repository artifact to `quarantine/`
    /// when the repository was opened (corrupt, unreadable, or residue of an
    /// uncommitted save).
    QuarantinedArtifact {
        /// What was quarantined (e.g. "archival container 3").
        artifact: String,
        /// Why recovery pulled it.
        reason: String,
    },
    /// A recipe entry resolves into a quarantined artifact. The damage is
    /// already contained — the affected version fails restore with a typed
    /// partial-restore error naming its lost dependencies — so this is a
    /// warning, not a fresh integrity error.
    QuarantinedRef {
        /// The version whose recipe holds the entry.
        version: u32,
        /// The chunk that resolves into quarantine.
        fingerprint: Fingerprint,
        /// The quarantined artifact it resolves to.
        artifact: String,
    },
    /// An interrupted save transaction is pending in `staging/`. Reported by
    /// the offline `hds-fsck` scan; opening the repository resolves it (roll
    /// forward if the commit record is valid, roll back otherwise).
    PendingJournal {
        /// What the pending transaction looks like and how open will
        /// resolve it.
        detail: String,
    },
    /// A version carries the tree-stream magic but its manifest does not
    /// decode (truncated, malformed, or inconsistent with the stream).
    TreeManifestCorrupt {
        /// The tree-backup version.
        version: u32,
        /// What failed to decode.
        detail: String,
    },
    /// A tree-manifest file entry points at a content range beyond the end
    /// of the version stream — restoring that file would fail.
    DanglingTreeRef {
        /// The tree-backup version.
        version: u32,
        /// The file's apath within the tree.
        apath: String,
        /// Claimed content offset.
        offset: u64,
        /// Claimed content length.
        size: u64,
    },
}

/// One invariant violation found by [`SystemAuditor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// What exactly is wrong.
    pub kind: FindingKind,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.severity)?;
        match &self.kind {
            FindingKind::UnreadableContainer { id, detail } => {
                write!(f, "container {id} unreadable: {detail}")
            }
            FindingKind::IdSpaceViolation { id, archival } => {
                let side = if *archival {
                    "archival store"
                } else {
                    "active pool"
                };
                write!(f, "container {id} is in the wrong ID space for the {side}")
            }
            FindingKind::EntryOutOfBounds {
                container,
                fingerprint,
                offset,
                length,
                data_len,
            } => {
                write!(
                    f,
                    "container {container} entry {fingerprint} spans {offset}+{length}, \
                     past data section of {data_len} bytes"
                )
            }
            FindingKind::EntryOverlap { container, a, b } => {
                write!(f, "container {container} entries {a} and {b} overlap")
            }
            FindingKind::ChunkHashMismatch {
                container,
                fingerprint,
            } => {
                write!(f, "container {container} chunk {fingerprint} fails re-hash")
            }
            FindingKind::AccountingMismatch {
                container,
                recorded,
                computed,
            } => {
                write!(
                    f,
                    "container {container} records {recorded} live bytes but entries \
                     sum to {computed}"
                )
            }
            FindingKind::FutureVersionTag {
                container,
                tag,
                next_version,
            } => {
                write!(
                    f,
                    "container {container} tagged with version {tag}, but the next \
                     version to be assigned is {next_version}"
                )
            }
            FindingKind::DanglingArchivalRef {
                version,
                fingerprint,
                container,
            } => {
                write!(
                    f,
                    "recipe V{version} chunk {fingerprint} references missing archival \
                     container {container}"
                )
            }
            FindingKind::ArchivalChunkMissing {
                version,
                fingerprint,
                container,
            } => {
                write!(
                    f,
                    "recipe V{version} chunk {fingerprint} not held by archival \
                     container {container}"
                )
            }
            FindingKind::ActiveChunkMissingFromPool {
                version,
                fingerprint,
            } => {
                write!(
                    f,
                    "recipe V{version} chunk {fingerprint} marked active but absent \
                     from the pool"
                )
            }
            FindingKind::MissingChainTarget {
                version,
                fingerprint,
                target,
            } => {
                write!(
                    f,
                    "recipe V{version} chunk {fingerprint} chains to V{target}, which \
                     has no recipe"
                )
            }
            FindingKind::ChainBrokenAt {
                version,
                fingerprint,
                at,
            } => {
                write!(
                    f,
                    "recipe V{version} chunk {fingerprint} chain broke at V{at} (chunk \
                     not in that recipe)"
                )
            }
            FindingKind::ChainNotVersionOrdered {
                version,
                fingerprint,
                from,
                to,
            } => {
                write!(
                    f,
                    "recipe V{version} chunk {fingerprint} chain hop V{from} -> V{to} \
                     is not forward"
                )
            }
            FindingKind::ChainCycle {
                version,
                fingerprint,
            } => {
                write!(f, "recipe V{version} chunk {fingerprint} chain is cyclic")
            }
            FindingKind::StaleCacheEntry {
                fingerprint,
                cached_cid,
            } => {
                write!(
                    f,
                    "cache entry {fingerprint} -> active container {cached_cid} \
                     disagrees with the pool"
                )
            }
            FindingKind::OrphanUntagged {
                container,
                fingerprint,
            } => {
                write!(
                    f,
                    "orphan chunk {fingerprint} in untagged container {container} can \
                     never be reclaimed"
                )
            }
            FindingKind::QuarantinedArtifact { artifact, reason } => {
                write!(f, "{artifact} was quarantined at open: {reason}")
            }
            FindingKind::QuarantinedRef {
                version,
                fingerprint,
                artifact,
            } => {
                write!(
                    f,
                    "recipe V{version} chunk {fingerprint} resolves into quarantined \
                     {artifact}; restoring V{version} reports a partial-restore error"
                )
            }
            FindingKind::PendingJournal { detail } => {
                write!(f, "interrupted save transaction in staging/: {detail}")
            }
            FindingKind::TreeManifestCorrupt { version, detail } => {
                write!(f, "V{version} tree manifest is corrupt: {detail}")
            }
            FindingKind::DanglingTreeRef {
                version,
                apath,
                offset,
                size,
            } => {
                write!(
                    f,
                    "V{version} tree entry {apath} claims content bytes \
                     {offset}..{} beyond the stream's content region",
                    offset + size
                )
            }
        }
    }
}

/// What [`SystemAuditor`] should check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOptions {
    /// Re-hash every chunk payload against its fingerprint. On by default;
    /// turn off for trace-driven repositories, whose synthetic chunk bodies
    /// intentionally do not hash back to their fingerprints.
    pub verify_content: bool,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            verify_content: true,
        }
    }
}

/// The outcome of one audit pass: every finding plus coverage counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// All violations found, in discovery order.
    pub findings: Vec<Finding>,
    /// Containers inspected (archival + pool).
    pub containers_checked: u64,
    /// Chunk payloads re-hashed.
    pub chunks_checked: u64,
    /// Recipes walked.
    pub recipes_checked: u64,
    /// Recipe entries resolved.
    pub entries_checked: u64,
    /// Archival chunks referenced by no recipe (tolerated in tagged
    /// containers; see [`FindingKind::OrphanUntagged`]).
    pub orphan_chunks: u64,
    /// Total bytes of those orphan chunks.
    pub orphan_bytes: u64,
    /// Tree-backup manifests decoded and range-checked (versions carrying
    /// the tree-stream magic).
    pub tree_manifests_checked: u64,
}

impl AuditReport {
    /// True when no findings were recorded (of any severity).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == severity)
            .count()
    }

    /// The worst severity present, or `None` when clean.
    pub fn max_severity(&self) -> Option<Severity> {
        self.findings.iter().map(|f| f.severity).max()
    }

    fn push(&mut self, severity: Severity, kind: FindingKind) {
        self.findings.push(Finding { severity, kind });
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "checked {} containers, {} chunks, {} recipes ({} entries); \
             {} orphan chunks ({} bytes)",
            self.containers_checked,
            self.chunks_checked,
            self.recipes_checked,
            self.entries_checked,
            self.orphan_chunks,
            self.orphan_bytes
        )?;
        if self.findings.is_empty() {
            write!(f, "clean: all invariants hold")
        } else {
            write!(
                f,
                "{} finding(s): {} error(s), {} warning(s)",
                self.findings.len(),
                self.count(Severity::Error),
                self.count(Severity::Warning)
            )
        }
    }
}

/// Walks a HiDeStore instance and verifies every cross-layer invariant,
/// reporting violations as typed [`Finding`]s instead of panicking.
#[derive(Debug, Clone, Default)]
pub struct SystemAuditor {
    options: AuditOptions,
}

impl SystemAuditor {
    /// An auditor with default options (content verification on).
    pub fn new() -> Self {
        SystemAuditor::default()
    }

    /// An auditor with explicit options.
    pub fn with_options(options: AuditOptions) -> Self {
        SystemAuditor { options }
    }

    /// Audits a whole system (the usual entry point).
    pub fn audit<S: ContainerStore>(&self, system: &mut HiDeStore<S>) -> AuditReport {
        self.audit_views(system.integrity_views())
    }

    /// Audits pre-split views — useful when the caller already holds the
    /// borrow split (see [`HiDeStore::integrity_views`]).
    pub fn audit_views<S: ContainerStore>(&self, views: IntegrityViews<'_, S>) -> AuditReport {
        let mut report = AuditReport::default();

        // Phase 0 — quarantine ledger: everything degraded-mode recovery
        // moved aside at open is surfaced as a warning, and indexed so the
        // recipe walk can distinguish "resolves into quarantine" (contained,
        // warning) from fresh integrity damage (error).
        let mut quarantine = QuarantineIndex::default();
        for entry in views.quarantined {
            report.push(
                Severity::Warning,
                FindingKind::QuarantinedArtifact {
                    artifact: entry.artifact.to_string(),
                    reason: entry.reason.clone(),
                },
            );
            match &entry.artifact {
                CoreArtifact::ArchivalContainer(id) => {
                    quarantine.archival.insert(id.get());
                }
                CoreArtifact::ActiveContainer(_) => quarantine.active = true,
                CoreArtifact::Recipe(v) => {
                    quarantine.recipes.insert(v.get());
                }
                CoreArtifact::Unrecognized(_) => {}
            }
        }

        // Phase 1 — archival sweep: readability, ID space, structure,
        // content. Record each container's contents for the reference and
        // orphan phases.
        let mut archival_fps: HashMap<u32, HashMap<Fingerprint, u32>> = HashMap::new();
        let mut archival_tags: HashMap<u32, u32> = HashMap::new();
        let mut unreadable: HashSet<u32> = HashSet::new();
        for id in views.archival.ids() {
            let raw = id.get();
            let container = match views.archival.read(id) {
                Ok(c) => c,
                Err(e) => {
                    unreadable.insert(raw);
                    report.push(
                        Severity::Error,
                        FindingKind::UnreadableContainer {
                            id: raw,
                            detail: e.to_string(),
                        },
                    );
                    continue;
                }
            };
            report.containers_checked += 1;
            if raw >= ACTIVE_ID_BASE {
                report.push(
                    Severity::Error,
                    FindingKind::IdSpaceViolation {
                        id: raw,
                        archival: true,
                    },
                );
            }
            if container.version_tag() >= views.next_version && container.version_tag() != 0 {
                report.push(
                    Severity::Warning,
                    FindingKind::FutureVersionTag {
                        container: raw,
                        tag: container.version_tag(),
                        next_version: views.next_version,
                    },
                );
            }
            self.check_container(&container, raw, &mut report);
            archival_tags.insert(raw, container.version_tag());
            archival_fps.insert(
                raw,
                container
                    .entry_locations()
                    .map(|(fp, _, len)| (fp, len))
                    .collect(),
            );
        }

        // Phase 2 — active pool sweep: each pooled container must carry the
        // ACTIVE_ID_BASE-offset ID of its pool slot, and pass the same
        // structure/content checks.
        for (cid, container) in views.pool.containers() {
            report.containers_checked += 1;
            let raw = container.id().get();
            if raw != ACTIVE_ID_BASE.wrapping_add(cid) {
                report.push(
                    Severity::Error,
                    FindingKind::IdSpaceViolation {
                        id: raw,
                        archival: false,
                    },
                );
            }
            self.check_container(container, raw, &mut report);
        }

        // Phase 3 — recipe walk: every entry must resolve through the chain
        // to a real physical location, with forward-only, acyclic hops.
        // Terminal archival locations feed the orphan accounting.
        let mut referenced: HashSet<(u32, Fingerprint)> = HashSet::new();
        let mut chain_maps: HashMap<u32, HashMap<Fingerprint, Cid>> = HashMap::new();
        for v in views.recipes.versions() {
            let Some(recipe) = views.recipes.get(v) else {
                continue;
            };
            report.recipes_checked += 1;
            for entry in recipe.entries() {
                report.entries_checked += 1;
                walk_entry(
                    views.recipes,
                    views.pool,
                    v.get(),
                    entry.fingerprint,
                    entry.cid,
                    &archival_fps,
                    &unreadable,
                    &quarantine,
                    &mut chain_maps,
                    &mut referenced,
                    &mut report,
                );
            }
        }

        // Phase 4 — orphan accounting: archival chunks referenced by no
        // recipe. Tolerated (counted) in tagged containers, which tag-ranged
        // deletion eventually drops; a finding in untagged ones.
        for (&container, fps) in &archival_fps {
            let tag = archival_tags.get(&container).copied().unwrap_or(0);
            for (&fp, &len) in fps {
                if referenced.contains(&(container, fp)) {
                    continue;
                }
                report.orphan_chunks += 1;
                report.orphan_bytes += len as u64;
                if tag == 0 {
                    report.push(
                        Severity::Warning,
                        FindingKind::OrphanUntagged {
                            container,
                            fingerprint: fp,
                        },
                    );
                }
            }
        }

        // Phase 5 — cache/pool agreement: every cached entry must point at
        // the pool container actually holding the chunk.
        for (_table, fp, entry) in views.cache.entries() {
            match views.pool.locate(&fp) {
                Some(cid) if cid == entry.active_cid => {}
                _ => {
                    report.push(
                        Severity::Warning,
                        FindingKind::StaleCacheEntry {
                            fingerprint: fp,
                            cached_cid: entry.active_cid,
                        },
                    );
                }
            }
        }

        // Phase 6 — tree streams: a version whose stream opens with the
        // tree-backup magic must decode to a valid manifest, and every file
        // entry's content range must lie inside the stream — a dangling
        // range means that file is unrestorable even though every chunk is
        // intact. Versions whose plans fail to resolve were already
        // reported by phase 3 and are skipped here.
        let mut tree_containers: HashMap<u32, Arc<Container>> = HashMap::new();
        for v in views.recipes.versions() {
            let Ok(plan) = resolve_plan(views.recipes, views.pool, v) else {
                continue;
            };
            audit_tree_stream(
                v.get(),
                &plan,
                views.pool,
                views.archival,
                &mut tree_containers,
                &mut report,
            );
        }

        report
    }

    /// Structural + content checks for one container (either side).
    fn check_container(&self, container: &Container, raw_id: u32, report: &mut AuditReport) {
        let data_len = container.used_bytes() as u64;
        let mut spans: Vec<(u32, u32, Fingerprint)> = Vec::with_capacity(container.chunk_count());
        let mut live_sum = 0u64;
        for (fp, off, len) in container.entry_locations() {
            if off as u64 + len as u64 > data_len {
                report.push(
                    Severity::Error,
                    FindingKind::EntryOutOfBounds {
                        container: raw_id,
                        fingerprint: fp,
                        offset: off,
                        length: len,
                        data_len,
                    },
                );
                continue;
            }
            live_sum += len as u64;
            spans.push((off, len, fp));
        }
        spans.sort_unstable_by_key(|&(off, len, _)| (off, len));
        for pair in spans.windows(2) {
            let (a_off, a_len, a_fp) = pair[0];
            let (b_off, _, b_fp) = pair[1];
            if a_off as u64 + a_len as u64 > b_off as u64 {
                report.push(
                    Severity::Error,
                    FindingKind::EntryOverlap {
                        container: raw_id,
                        a: a_fp,
                        b: b_fp,
                    },
                );
            }
        }
        if live_sum != container.live_bytes() as u64 {
            report.push(
                Severity::Error,
                FindingKind::AccountingMismatch {
                    container: raw_id,
                    recorded: container.live_bytes() as u64,
                    computed: live_sum,
                },
            );
        }
        if self.options.verify_content {
            for (fp, data) in container.iter() {
                report.chunks_checked += 1;
                if Fingerprint::of(data) != fp {
                    report.push(
                        Severity::Error,
                        FindingKind::ChunkHashMismatch {
                            container: raw_id,
                            fingerprint: fp,
                        },
                    );
                }
            }
        }
    }
}

/// What degraded-mode recovery quarantined at open, indexed so the recipe
/// walk can classify resolution failures that land in quarantine as
/// contained (warning) rather than fresh damage (error).
#[derive(Debug, Default)]
struct QuarantineIndex {
    /// Quarantined archival container IDs.
    archival: HashSet<u32>,
    /// Whether any active-pool snapshot was quarantined (the pool then
    /// legitimately lacks the chunks that lived in it).
    active: bool,
    /// Versions whose recipes were quarantined.
    recipes: HashSet<u32>,
}

/// Resolves one recipe entry through the chain, reporting every violation on
/// the way. Terminal archival locations are recorded in `referenced` for the
/// orphan-accounting phase.
#[allow(clippy::too_many_arguments)]
fn walk_entry(
    recipes: &RecipeStore,
    pool: &ActivePool,
    version: u32,
    fp: Fingerprint,
    start: Cid,
    archival_fps: &HashMap<u32, HashMap<Fingerprint, u32>>,
    unreadable: &HashSet<u32>,
    quarantine: &QuarantineIndex,
    chain_maps: &mut HashMap<u32, HashMap<Fingerprint, Cid>>,
    referenced: &mut HashSet<(u32, Fingerprint)>,
    report: &mut AuditReport,
) {
    let mut visited: HashSet<u32> = HashSet::new();
    visited.insert(version);
    let mut at = version;
    let mut cid = start;
    loop {
        if let Some(archival) = cid.as_archival() {
            let c = archival.get();
            match archival_fps.get(&c) {
                Some(fps) if fps.contains_key(&fp) => {
                    referenced.insert((c, fp));
                }
                Some(_) => {
                    report.push(
                        Severity::Error,
                        FindingKind::ArchivalChunkMissing {
                            version,
                            fingerprint: fp,
                            container: c,
                        },
                    );
                }
                // An unreadable container's damage is already reported once;
                // don't cascade a dangling-reference finding per entry.
                None if unreadable.contains(&c) => {}
                // The container is in quarantine: the reference is expected
                // to dangle, and restore reports it as a partial-restore
                // dependency — contained, so a warning.
                None if quarantine.archival.contains(&c) => {
                    report.push(
                        Severity::Warning,
                        FindingKind::QuarantinedRef {
                            version,
                            fingerprint: fp,
                            artifact: format!("archival container {c}"),
                        },
                    );
                }
                None => {
                    report.push(
                        Severity::Error,
                        FindingKind::DanglingArchivalRef {
                            version,
                            fingerprint: fp,
                            container: c,
                        },
                    );
                }
            }
            return;
        }
        if cid.is_active() {
            if pool.locate(&fp).is_none() {
                if quarantine.active {
                    // A quarantined pool snapshot took its chunks with it.
                    report.push(
                        Severity::Warning,
                        FindingKind::QuarantinedRef {
                            version,
                            fingerprint: fp,
                            artifact: "a quarantined active-pool snapshot".to_string(),
                        },
                    );
                } else {
                    report.push(
                        Severity::Error,
                        FindingKind::ActiveChunkMissingFromPool {
                            version,
                            fingerprint: fp,
                        },
                    );
                }
            }
            return;
        }
        let Some(target) = cid.as_chained() else {
            return;
        };
        let w = target.get();
        if w <= at {
            report.push(
                Severity::Error,
                FindingKind::ChainNotVersionOrdered {
                    version,
                    fingerprint: fp,
                    from: at,
                    to: w,
                },
            );
        }
        if !visited.insert(w) {
            report.push(
                Severity::Error,
                FindingKind::ChainCycle {
                    version,
                    fingerprint: fp,
                },
            );
            return;
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = chain_maps.entry(w) {
            match recipes.get(target) {
                Some(r) => {
                    slot.insert(r.entries().iter().map(|e| (e.fingerprint, e.cid)).collect());
                }
                // Chain target sits in quarantine: expected to be missing.
                None if quarantine.recipes.contains(&w) => {
                    report.push(
                        Severity::Warning,
                        FindingKind::QuarantinedRef {
                            version,
                            fingerprint: fp,
                            artifact: format!("recipe of version {w}"),
                        },
                    );
                    return;
                }
                None => {
                    report.push(
                        Severity::Error,
                        FindingKind::MissingChainTarget {
                            version,
                            fingerprint: fp,
                            target: w,
                        },
                    );
                    return;
                }
            }
        }
        let Some(&next) = chain_maps.get(&w).and_then(|m| m.get(&fp)) else {
            report.push(
                Severity::Error,
                FindingKind::ChainBrokenAt {
                    version,
                    fingerprint: fp,
                    at: w,
                },
            );
            return;
        };
        at = w;
        cid = next;
    }
}

/// Audits one version's stream as a possible tree backup: decodes the
/// manifest if the tree magic is present, and range-checks every file
/// entry against the content region. Fetches only the containers that
/// cover the header and manifest (reusing them across versions through
/// `containers`), never the whole stream.
fn audit_tree_stream<S: ContainerStore>(
    version: u32,
    plan: &[(Fingerprint, u32, ContainerId)],
    pool: &ActivePool,
    archival: &mut S,
    containers: &mut HashMap<u32, Arc<Container>>,
    report: &mut AuditReport,
) {
    let mut offsets: Vec<u64> = Vec::with_capacity(plan.len() + 1);
    let mut total = 0u64;
    offsets.push(0);
    for &(_, size, _) in plan {
        total += size as u64;
        offsets.push(total);
    }
    if total < STREAM_HEADER_LEN {
        return;
    }
    let corrupt = |detail: String| Finding {
        severity: Severity::Error,
        kind: FindingKind::TreeManifestCorrupt { version, detail },
    };
    let header = match fetch_stream_range(
        plan,
        &offsets,
        pool,
        archival,
        containers,
        0,
        STREAM_HEADER_LEN,
    ) {
        Ok(h) => h,
        // Unresolvable chunks were already reported by earlier phases.
        Err(_) => return,
    };
    if !is_tree_stream(&header) {
        return;
    }
    report.tree_manifests_checked += 1;
    let manifest_len = match decode_stream_header(&header) {
        Ok(len) => len as u64,
        Err(e) => {
            report.findings.push(corrupt(e.to_string()));
            return;
        }
    };
    if STREAM_HEADER_LEN + manifest_len > total {
        report.findings.push(corrupt(format!(
            "manifest length {manifest_len} exceeds stream of {total} bytes"
        )));
        return;
    }
    let bytes = match fetch_stream_range(
        plan,
        &offsets,
        pool,
        archival,
        containers,
        STREAM_HEADER_LEN,
        manifest_len,
    ) {
        Ok(b) => b,
        Err(e) => {
            report.findings.push(corrupt(e));
            return;
        }
    };
    let manifest = match TreeManifest::decode(&bytes) {
        Ok(m) => m,
        Err(e) => {
            report.findings.push(corrupt(e.to_string()));
            return;
        }
    };
    let content_len = total - STREAM_HEADER_LEN - manifest_len;
    for entry in &manifest.entries {
        if let EntryPayload::File { offset, size } = entry.payload {
            if offset + size > content_len {
                report.push(
                    Severity::Error,
                    FindingKind::DanglingTreeRef {
                        version,
                        apath: entry.apath.clone(),
                        offset,
                        size,
                    },
                );
            }
        }
    }
}

/// Reassembles stream bytes `[start, start + len)` from the chunks of a
/// resolved plan, reading archival containers at most once each.
fn fetch_stream_range<S: ContainerStore>(
    plan: &[(Fingerprint, u32, ContainerId)],
    offsets: &[u64],
    pool: &ActivePool,
    archival: &mut S,
    containers: &mut HashMap<u32, Arc<Container>>,
    start: u64,
    len: u64,
) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(len as usize);
    let end = start + len;
    let first = offsets.partition_point(|&o| o <= start) - 1;
    for (i, &(fp, _, container)) in plan.iter().enumerate().skip(first) {
        if offsets[i] >= end {
            break;
        }
        let raw = container.get();
        let chunk: &[u8] = if raw >= ACTIVE_ID_BASE {
            pool.get(&fp)
                .ok_or_else(|| format!("chunk {fp} missing from the active pool"))?
        } else {
            if let std::collections::hash_map::Entry::Vacant(slot) = containers.entry(raw) {
                let c = archival
                    .read(container)
                    .map_err(|e| format!("container {raw} unreadable: {e}"))?;
                slot.insert(c);
            }
            containers
                .get(&raw)
                .and_then(|c| c.get(&fp))
                .ok_or_else(|| format!("chunk {fp} missing from container {raw}"))?
        };
        let chunk_start = offsets[i];
        let lo = start.saturating_sub(chunk_start).min(chunk.len() as u64) as usize;
        let hi = (end - chunk_start).min(chunk.len() as u64) as usize;
        out.extend_from_slice(&chunk[lo..hi]);
    }
    if out.len() as u64 != len {
        return Err(format!(
            "stream range fetch returned {} of {len} bytes",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_core::HiDeStoreConfig;
    use hidestore_storage::{MemoryContainerStore, VersionId};

    fn noise(len: usize, seed: u64) -> Vec<u8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as u8
            })
            .collect()
    }

    fn system() -> HiDeStore<MemoryContainerStore> {
        HiDeStore::new(
            HiDeStoreConfig::small_for_tests(),
            MemoryContainerStore::new(),
        )
    }

    #[test]
    fn fresh_system_is_clean() {
        let mut hds = system();
        let report = SystemAuditor::new().audit(&mut hds);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.containers_checked, 0);
    }

    #[test]
    fn multi_version_lifecycle_is_clean() {
        let mut hds = system();
        let mut data = noise(120_000, 1);
        for round in 0..6u64 {
            hds.backup(&data).unwrap();
            let start = (round as usize * 17_000) % 100_000;
            let patch = noise(8_000, 100 + round);
            data[start..start + patch.len()].copy_from_slice(&patch);
        }
        let report = SystemAuditor::new().audit(&mut hds);
        assert!(report.is_clean(), "{report}");
        assert!(report.containers_checked > 0);
        assert!(report.chunks_checked > 0);
        assert_eq!(report.recipes_checked, 6);
    }

    #[test]
    fn clean_after_flatten_and_delete() {
        let mut hds = system();
        let mut data = noise(120_000, 2);
        for round in 0..6u64 {
            hds.backup(&data).unwrap();
            let start = (round as usize * 13_000) % 100_000;
            let patch = noise(9_000, 200 + round);
            data[start..start + patch.len()].copy_from_slice(&patch);
        }
        hds.flatten_recipes();
        hds.delete_expired(VersionId::new(2)).unwrap();
        let report = SystemAuditor::new().audit(&mut hds);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn trace_mode_audits_clean_without_content_verification() {
        let mut hds = system();
        let trace: Vec<(Fingerprint, u32)> = (0..500u64)
            .map(|i| (Fingerprint::synthetic(i), 2048))
            .collect();
        hds.backup_trace(&trace).unwrap();
        let mut churned = trace[50..].to_vec();
        churned.extend((1000..1050u64).map(|i| (Fingerprint::synthetic(i), 2048)));
        hds.backup_trace(&churned).unwrap();
        let report = SystemAuditor::with_options(AuditOptions {
            verify_content: false,
        })
        .audit(&mut hds);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.chunks_checked, 0, "content verification was off");
        // With verification on, synthetic filler necessarily fails re-hash.
        let verified = SystemAuditor::new().audit(&mut hds);
        assert!(!verified.is_clean());
        assert!(verified
            .findings
            .iter()
            .all(|f| matches!(f.kind, FindingKind::ChunkHashMismatch { .. })));
    }

    #[test]
    fn tree_backup_audits_clean_and_is_counted() {
        use hidestore_tree::manifest::{ManifestEntry, TreeManifest};

        let mut hds = system();
        // An ordinary (non-tree) version is not counted as a tree manifest.
        hds.backup(&noise(60_000, 3)).unwrap();
        // A well-formed tree stream: root dir + one file covering the
        // content region exactly.
        let contents = noise(50_000, 4);
        let manifest = TreeManifest {
            entries: vec![
                ManifestEntry {
                    apath: "/".to_string(),
                    mode: 0o755,
                    mtime_secs: 1,
                    mtime_nanos: 0,
                    payload: EntryPayload::Dir,
                },
                ManifestEntry {
                    apath: "/data".to_string(),
                    mode: 0o644,
                    mtime_secs: 2,
                    mtime_nanos: 0,
                    payload: EntryPayload::File {
                        offset: 0,
                        size: contents.len() as u64,
                    },
                },
            ],
        };
        hds.backup(&manifest.encode_stream(&contents)).unwrap();
        let report = SystemAuditor::new().audit(&mut hds);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.tree_manifests_checked, 1);
    }

    #[test]
    fn dangling_tree_ref_and_corrupt_manifest_are_findings() {
        use hidestore_tree::manifest::{ManifestEntry, TreeManifest, STREAM_MAGIC};

        let mut hds = system();
        // V1: a manifest whose file extent overruns the content region.
        let contents = noise(30_000, 5);
        let manifest = TreeManifest {
            entries: vec![
                ManifestEntry {
                    apath: "/".to_string(),
                    mode: 0o755,
                    mtime_secs: 1,
                    mtime_nanos: 0,
                    payload: EntryPayload::Dir,
                },
                ManifestEntry {
                    apath: "/overrun".to_string(),
                    mode: 0o644,
                    mtime_secs: 2,
                    mtime_nanos: 0,
                    payload: EntryPayload::File {
                        offset: 0,
                        size: contents.len() as u64 + 999,
                    },
                },
            ],
        };
        hds.backup(&manifest.encode_stream(&contents)).unwrap();
        // V2: tree magic followed by an undecodable manifest.
        let mut bogus = Vec::new();
        bogus.extend_from_slice(&STREAM_MAGIC);
        bogus.extend_from_slice(&64u32.to_le_bytes());
        bogus.extend_from_slice(&noise(40_000, 6));
        hds.backup(&bogus).unwrap();

        let report = SystemAuditor::new().audit(&mut hds);
        assert_eq!(report.tree_manifests_checked, 2);
        assert!(report.findings.iter().any(|f| matches!(
            &f.kind,
            FindingKind::DanglingTreeRef { version: 1, apath, .. } if apath == "/overrun"
        )));
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(&f.kind, FindingKind::TreeManifestCorrupt { version: 2, .. })));
        assert_eq!(report.max_severity(), Some(Severity::Error));
    }

    #[test]
    fn report_severity_helpers() {
        let mut report = AuditReport::default();
        assert_eq!(report.max_severity(), None);
        report.push(
            Severity::Warning,
            FindingKind::StaleCacheEntry {
                fingerprint: Fingerprint::synthetic(1),
                cached_cid: 1,
            },
        );
        assert_eq!(report.max_severity(), Some(Severity::Warning));
        report.push(
            Severity::Error,
            FindingKind::ChainCycle {
                version: 1,
                fingerprint: Fingerprint::synthetic(2),
            },
        );
        assert_eq!(report.max_severity(), Some(Severity::Error));
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.count(Severity::Warning), 1);
        assert!(Severity::Error > Severity::Warning);
    }
}
