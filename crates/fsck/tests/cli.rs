//! End-to-end tests for the `hds-fsck` binary against real on-disk
//! repositories.

use std::path::PathBuf;
use std::process::Command;

use hidestore_core::{HiDeStore, HiDeStoreConfig};

fn noise(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as u8
        })
        .collect()
}

/// A unique scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hds-fsck-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_repo(dir: &PathBuf) {
    let mut hds =
        HiDeStore::open_repository(HiDeStoreConfig::small_for_tests(), dir).expect("open");
    let mut data = noise(90_000, 7);
    for round in 0..3u64 {
        hds.backup(&data).expect("backup");
        let patch = noise(6_000, 70 + round);
        let start = (round as usize * 11_000) % 80_000;
        data[start..start + patch.len()].copy_from_slice(&patch);
    }
    hds.save_repository(dir).expect("save");
}

fn fsck(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hds-fsck"))
        .args(args)
        .output()
        .expect("spawn hds-fsck");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn clean_repository_exits_zero() {
    let scratch = Scratch::new("clean");
    build_repo(&scratch.0);
    let (code, stdout, stderr) = fsck(&[scratch.0.to_str().expect("utf-8 path")]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stdout.contains("clean"), "stdout: {stdout}");
}

#[test]
fn json_output_reports_clean() {
    let scratch = Scratch::new("json");
    build_repo(&scratch.0);
    let (code, stdout, _) = fsck(&[scratch.0.to_str().expect("utf-8 path"), "--json"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"clean\": true"), "stdout: {stdout}");
    assert!(stdout.contains("\"findings\": ["), "stdout: {stdout}");
}

#[test]
fn corrupted_container_exits_one() {
    let scratch = Scratch::new("corrupt");
    build_repo(&scratch.0);
    // Flip the last byte (chunk payload) of one archival container.
    let archival = scratch.0.join("archival");
    let victim = std::fs::read_dir(&archival)
        .expect("archival dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "ctr"))
        .expect("at least one archival container");
    let mut bytes = std::fs::read(&victim).expect("read container");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&victim, bytes).expect("write container");

    let (code, stdout, _) = fsck(&[scratch.0.to_str().expect("utf-8 path")]);
    assert_eq!(code, 1, "stdout: {stdout}");
    assert!(stdout.contains("finding"), "stdout: {stdout}");
}

#[test]
fn missing_repository_exits_two() {
    let (code, _, stderr) = fsck(&["/nonexistent/hds-fsck-test-repo"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("hds-fsck:"), "stderr: {stderr}");
}

#[test]
fn bad_flag_exits_two() {
    let (code, _, stderr) = fsck(&["--bogus"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown flag"), "stderr: {stderr}");
}
