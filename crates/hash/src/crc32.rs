//! CRC-32 (IEEE 802.3 polynomial) for on-disk integrity checks.
//!
//! Repository metadata and the commit journal guard their payloads with a
//! CRC so a torn or bit-flipped file is *detected* as corrupt instead of
//! silently misparsed. CRC-32 is the right tool here: the threat is
//! accidental corruption (torn write, media error), not an adversary —
//! content addressing still uses the cryptographic digests.

/// Byte-at-a-time lookup table for the reflected IEEE polynomial
/// (`0xEDB8_8320`), built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE) checksum of `data`.
///
/// # Examples
///
/// ```
/// use hidestore_hash::crc32;
///
/// // The classic check value from the CRC catalogue.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(crc32(b""), 0);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"hidestore meta payload".to_vec();
        let clean = crc32(&data);
        data[3] ^= 0x40;
        assert_ne!(crc32(&data), clean);
    }

    #[test]
    fn detects_truncation() {
        let data = b"0123456789abcdef";
        assert_ne!(crc32(data), crc32(&data[..15]));
    }
}
