//! The 20-byte chunk fingerprint used as the key of every deduplication
//! index in the workspace.

use std::fmt;
use std::str::FromStr;

use crate::Sha1;

/// Length in bytes of a [`Fingerprint`] (SHA-1 output width).
pub const FINGERPRINT_LEN: usize = 20;

/// A 20-byte SHA-1 chunk fingerprint.
///
/// Fingerprints identify chunks in recipes, containers, and every index
/// structure (DDFS full index, sparse index manifests, SiLo similarity table,
/// HiDeStore's T1/T2 hash tables). Two chunks with equal fingerprints are
/// treated as identical, following the standard deduplication assumption that
/// a SHA-1 collision is less likely than a hardware error (paper §2.1).
///
/// # Examples
///
/// ```
/// use hidestore_hash::Fingerprint;
///
/// let fp = Fingerprint::of(b"some chunk data");
/// let restored: Fingerprint = fp.to_string().parse()?;
/// assert_eq!(fp, restored);
/// # Ok::<(), hidestore_hash::ParseFingerprintError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fingerprint([u8; FINGERPRINT_LEN]);

impl Fingerprint {
    /// Computes the SHA-1 fingerprint of `data`.
    pub fn of(data: &[u8]) -> Self {
        Fingerprint(Sha1::hash(data))
    }

    /// Wraps raw digest bytes as a fingerprint.
    pub const fn from_bytes(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }

    /// Returns the underlying digest bytes.
    pub const fn as_bytes(&self) -> &[u8; FINGERPRINT_LEN] {
        &self.0
    }

    /// Returns the first 8 bytes as a `u64`, useful for sampling decisions
    /// (e.g. sparse-index hooks select fingerprints where
    /// `prefix64() % sample_rate == 0`).
    pub fn prefix64(&self) -> u64 {
        let mut prefix = [0u8; 8];
        prefix.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(prefix)
    }

    /// A deterministic fingerprint for tests and trace-driven simulations
    /// that don't hash real data: encodes `n` into the digest bytes.
    ///
    /// Distinct `n` always yield distinct fingerprints.
    pub fn synthetic(n: u64) -> Self {
        let mut bytes = [0u8; FINGERPRINT_LEN];
        bytes[..8].copy_from_slice(&n.to_be_bytes());
        // Mix into the tail so synthetic fingerprints don't all share a suffix,
        // which would bias sampling-based indexes.
        let mixed = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
        bytes[8..16].copy_from_slice(&mixed.to_be_bytes());
        bytes[16..20].copy_from_slice(&(n as u32 ^ 0xDEAD_BEEF).to_be_bytes());
        Fingerprint(bytes)
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviate: full 40-hex-char dumps make test output unreadable.
        write!(
            f,
            "Fingerprint({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl From<[u8; FINGERPRINT_LEN]> for Fingerprint {
    fn from(bytes: [u8; FINGERPRINT_LEN]) -> Self {
        Fingerprint(bytes)
    }
}

impl AsRef<[u8]> for Fingerprint {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Error returned when parsing a [`Fingerprint`] from a hex string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFingerprintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Length(usize),
    InvalidHex(char),
}

impl fmt::Display for ParseFingerprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Length(n) => {
                write!(
                    f,
                    "expected {} hex characters, got {n}",
                    FINGERPRINT_LEN * 2
                )
            }
            ParseErrorKind::InvalidHex(c) => write!(f, "invalid hex character {c:?}"),
        }
    }
}

impl std::error::Error for ParseFingerprintError {}

impl FromStr for Fingerprint {
    type Err = ParseFingerprintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != FINGERPRINT_LEN * 2 {
            return Err(ParseFingerprintError {
                kind: ParseErrorKind::Length(s.len()),
            });
        }
        let mut bytes = [0u8; FINGERPRINT_LEN];
        for (i, pair) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = hex_val(pair[0] as char).ok_or(ParseFingerprintError {
                kind: ParseErrorKind::InvalidHex(pair[0] as char),
            })?;
            let lo = hex_val(pair[1] as char).ok_or(ParseFingerprintError {
                kind: ParseErrorKind::InvalidHex(pair[1] as char),
            })?;
            bytes[i] = (hi << 4) | lo;
        }
        Ok(Fingerprint(bytes))
    }
}

fn hex_val(c: char) -> Option<u8> {
    c.to_digit(16).map(|d| d as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_matches_sha1() {
        assert_eq!(Fingerprint::of(b"abc").as_bytes(), &Sha1::hash(b"abc"));
    }

    #[test]
    fn display_and_parse_round_trip() {
        let fp = Fingerprint::of(b"round trip");
        let s = fp.to_string();
        assert_eq!(s.len(), 40);
        assert_eq!(s.parse::<Fingerprint>().unwrap(), fp);
    }

    #[test]
    fn parse_rejects_bad_length() {
        assert!("abcd".parse::<Fingerprint>().is_err());
        let err = "ab".parse::<Fingerprint>().unwrap_err();
        assert!(err.to_string().contains("expected 40"));
    }

    #[test]
    fn parse_rejects_non_hex() {
        let s = "zz".repeat(20);
        assert!(s.parse::<Fingerprint>().is_err());
    }

    #[test]
    fn synthetic_distinct() {
        let a = Fingerprint::synthetic(1);
        let b = Fingerprint::synthetic(2);
        assert_ne!(a, b);
        assert_eq!(a, Fingerprint::synthetic(1));
    }

    #[test]
    fn prefix64_is_big_endian_prefix() {
        let mut bytes = [0u8; 20];
        bytes[..8].copy_from_slice(&42u64.to_be_bytes());
        assert_eq!(Fingerprint::from_bytes(bytes).prefix64(), 42);
    }

    #[test]
    fn debug_is_abbreviated_and_nonempty() {
        let dbg = format!("{:?}", Fingerprint::of(b"x"));
        assert!(dbg.starts_with("Fingerprint("));
        assert!(dbg.len() < 30);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let lo = Fingerprint::from_bytes([0; 20]);
        let hi = Fingerprint::from_bytes([255; 20]);
        assert!(lo < hi);
    }
}
