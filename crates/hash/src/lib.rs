#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Cryptographic fingerprinting substrate for the HiDeStore reproduction.
//!
//! Chunk-based deduplication systems identify duplicate chunks by comparing
//! cryptographic digests ("fingerprints") instead of the chunk contents.
//! The HiDeStore paper (Middleware 2020, §2.1) uses 20-byte SHA-1
//! fingerprints, noting the probability of a hash collision is far below the
//! probability of a hardware error. This crate implements the digests the
//! paper mentions — [`Sha1`] and [`Md5`] — from scratch (no external hashing
//! dependency), plus the [`Fingerprint`] newtype used as the key of every
//! index structure in the rest of the workspace.
//!
//! # Examples
//!
//! ```
//! use hidestore_hash::{Fingerprint, Sha1};
//!
//! let fp = Fingerprint::of(b"hello backup world");
//! assert_eq!(fp, Fingerprint::of(b"hello backup world"));
//! assert_ne!(fp, Fingerprint::of(b"a different chunk"));
//!
//! // Incremental hashing produces the same digest as one-shot hashing.
//! let mut hasher = Sha1::new();
//! hasher.update(b"hello ");
//! hasher.update(b"backup world");
//! assert_eq!(Fingerprint::from_bytes(hasher.finalize()), fp);
//! ```

mod crc32;
mod fingerprint;
mod md5;
mod parallel;
mod sha1;
mod sha256;

pub use crc32::crc32;
pub use fingerprint::{Fingerprint, ParseFingerprintError, FINGERPRINT_LEN};
pub use md5::Md5;
pub use parallel::{default_hash_threads, fingerprints_parallel};
pub use sha1::Sha1;
pub use sha256::Sha256;

/// A digest algorithm that can be fed incrementally and produces a fixed-size
/// output.
///
/// Both [`Sha1`] and [`Md5`] implement this trait, so pipeline code can be
/// generic over the fingerprinting function the way Destor is configurable.
///
/// # Examples
///
/// ```
/// use hidestore_hash::{Digest, Sha1};
///
/// fn hex_of<D: Digest>(data: &[u8]) -> String {
///     D::digest(data).iter().map(|b| format!("{b:02x}")).collect()
/// }
/// assert_eq!(hex_of::<Sha1>(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
/// ```
pub trait Digest: Default {
    /// Size of the produced digest in bytes.
    const OUTPUT_LEN: usize;

    /// Absorbs `data` into the running digest state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and writes the digest into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::OUTPUT_LEN`.
    fn finalize_into(self, out: &mut [u8]);

    /// One-shot convenience: digest `data` and return the bytes.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::default();
        h.update(data);
        let mut out = vec![0u8; Self::OUTPUT_LEN];
        h.finalize_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_trait_one_shot_matches_incremental() {
        let mut h = Sha1::new();
        h.update(b"one");
        h.update(b"two");
        let mut out = [0u8; 20];
        Digest::finalize_into(h, &mut out[..]);
        assert_eq!(out.to_vec(), <Sha1 as Digest>::digest(b"onetwo"));
    }

    #[test]
    fn md5_and_sha1_output_lengths() {
        assert_eq!(<Sha1 as Digest>::OUTPUT_LEN, 20);
        assert_eq!(<Md5 as Digest>::OUTPUT_LEN, 16);
        assert_eq!(<Sha1 as Digest>::digest(b"x").len(), 20);
        assert_eq!(<Md5 as Digest>::digest(b"x").len(), 16);
    }
}
