//! MD5 implemented from scratch per RFC 1321.
//!
//! The HiDeStore paper (§1) lists MD5 alongside SHA-1 as a fingerprinting
//! option for chunk-based deduplication. It is provided for completeness and
//! for experiments that trade digest width for speed; the default pipeline
//! fingerprint remains SHA-1.

use crate::Digest;

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(2^32 * abs(sin(i + 1))), precomputed per RFC 1321.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 hasher.
///
/// # Examples
///
/// ```
/// use hidestore_hash::Md5;
///
/// let digest = Md5::hash(b"abc");
/// let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
/// assert_eq!(hex, "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Consumes the hasher, returning the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
        let mut tail = [0u8; 64];
        if self.buf_len > 56 {
            tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            let block = tail;
            self.compress(&block);
            tail = [0u8; 64];
        } else {
            tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        }
        // MD5 length suffix is little-endian, unlike SHA-1.
        tail[56..].copy_from_slice(&bit_len.to_le_bytes());
        let block = tail;
        self.compress(&block);
        let mut out = [0u8; 16];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// One-shot hash of `data`.
    pub fn hash(data: &[u8]) -> [u8; 16] {
        let mut h = Md5::new();
        h.update(data);
        h.finalize()
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i {
                0..=15 => ((b & c) | ((!b) & d), i),
                16..=31 => ((d & b) | ((!d) & c), (5 * i + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;

    fn update(&mut self, data: &[u8]) {
        Md5::update(self, data);
    }

    fn finalize_into(self, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            Self::OUTPUT_LEN,
            "output buffer must be 16 bytes"
        );
        out.copy_from_slice(&self.finalize());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_suite() {
        let vectors: [(&[u8], &str); 7] = [
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in vectors {
            assert_eq!(hex(&Md5::hash(input)), want);
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..300u16).map(|i| (i * 7 % 256) as u8).collect();
        let expect = Md5::hash(&data);
        for split in [0, 1, 63, 64, 65, 128, 200, 300] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }
}
