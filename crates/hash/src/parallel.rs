//! Parallel fingerprinting of chunked streams.
//!
//! Fingerprinting dominates the CPU cost of the backup pipeline; Destor
//! pipelines its phases across threads for the same reason. This module
//! hashes the chunks of a stream on a scoped thread pool, producing exactly
//! the same fingerprints as the sequential loop.

use std::ops::Range;

use crate::Fingerprint;

/// Computes the fingerprint of every `spans[i]` slice of `data`, in order,
/// using up to `threads` worker threads.
///
/// Falls back to the sequential loop for small inputs where thread spawn
/// overhead would dominate. The result is identical to
/// `spans.iter().map(|s| Fingerprint::of(&data[s]))`.
///
/// # Examples
///
/// ```
/// use hidestore_hash::{fingerprints_parallel, Fingerprint};
///
/// let data = vec![7u8; 10_000];
/// let spans = vec![0..5_000, 5_000..10_000];
/// let fps = fingerprints_parallel(&data, &spans, 4);
/// assert_eq!(fps[0], Fingerprint::of(&data[..5_000]));
/// ```
///
/// # Panics
///
/// Panics if a span is out of bounds for `data`.
pub fn fingerprints_parallel(
    data: &[u8],
    spans: &[Range<usize>],
    threads: usize,
) -> Vec<Fingerprint> {
    let threads = threads.max(1);
    // Below ~1 MiB of work per extra thread the spawn cost outweighs the
    // parallelism.
    if threads == 1 || spans.len() < 64 || data.len() < threads << 20 {
        return spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
    }
    let mut out = vec![Fingerprint::default(); spans.len()];
    let chunk_len = spans.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (span_block, out_block) in spans.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
            scope.spawn(move || {
                for (span, slot) in span_block.iter().zip(out_block.iter_mut()) {
                    *slot = Fingerprint::of(&data[span.clone()]);
                }
            });
        }
    });
    out
}

/// A sensible worker count for [`fingerprints_parallel`]: the machine's
/// available parallelism capped at 8 (hashing saturates memory bandwidth
/// beyond that).
pub fn default_hash_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_of(len: usize, step: usize) -> Vec<Range<usize>> {
        (0..len)
            .step_by(step)
            .map(|i| i..(i + step).min(len))
            .collect()
    }

    #[test]
    fn matches_sequential_small() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let spans = spans_of(data.len(), 333);
        let par = fingerprints_parallel(&data, &spans, 4);
        let seq: Vec<Fingerprint> = spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn matches_sequential_large() {
        let data: Vec<u8> = (0..8_000_000u32).map(|i| (i % 253) as u8).collect();
        let spans = spans_of(data.len(), 4096);
        let par = fingerprints_parallel(&data, &spans, 4);
        let seq: Vec<Fingerprint> = spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_spans() {
        assert!(fingerprints_parallel(b"abc", &[], 4).is_empty());
    }

    #[test]
    fn single_thread_path() {
        let data = vec![1u8; 1000];
        let spans = spans_of(1000, 100);
        let fps = fingerprints_parallel(&data, &spans, 1);
        assert_eq!(fps.len(), 10);
        // All chunks identical -> all fingerprints identical.
        assert!(fps.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_hash_threads() >= 1);
    }
}
