//! Parallel fingerprinting of chunked streams.
//!
//! Fingerprinting dominates the CPU cost of the backup pipeline; Destor
//! pipelines its phases across threads for the same reason. This module
//! hashes the chunks of a stream on a scoped thread pool, producing exactly
//! the same fingerprints as the sequential loop.

use std::ops::Range;

use crate::Fingerprint;

/// Computes the fingerprint of every `spans[i]` slice of `data`, in order,
/// using up to `threads` worker threads.
///
/// Falls back to the sequential loop for small inputs where thread spawn
/// overhead would dominate. The result is identical to
/// `spans.iter().map(|s| Fingerprint::of(&data[s]))`.
///
/// # Examples
///
/// ```
/// use hidestore_hash::{fingerprints_parallel, Fingerprint};
///
/// let data = vec![7u8; 10_000];
/// let spans = vec![0..5_000, 5_000..10_000];
/// let fps = fingerprints_parallel(&data, &spans, 4);
/// assert_eq!(fps[0], Fingerprint::of(&data[..5_000]));
/// ```
///
/// # Panics
///
/// Panics if a span is out of bounds for `data`.
pub fn fingerprints_parallel(
    data: &[u8],
    spans: &[Range<usize>],
    threads: usize,
) -> Vec<Fingerprint> {
    let threads = threads.max(1);
    if sequential_fallback(data.len(), spans.len(), threads) {
        return spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
    }
    fingerprints_threaded(data, spans, threads)
}

/// Whether to hash on the calling thread instead of spawning workers: below
/// ~1 MiB of work per thread (or very few spans) the spawn cost outweighs
/// the parallelism.
fn sequential_fallback(data_len: usize, span_count: usize, threads: usize) -> bool {
    threads == 1 || span_count < 64 || data_len < threads << 20
}

/// The threaded path, unconditionally: spans are split into at most
/// `threads` contiguous blocks, each hashed by its own scoped worker into a
/// disjoint region of the output — so order is preserved by construction,
/// including when `threads` exceeds `spans.len()` (blocks of one span each).
fn fingerprints_threaded(data: &[u8], spans: &[Range<usize>], threads: usize) -> Vec<Fingerprint> {
    if spans.is_empty() {
        return Vec::new();
    }
    let mut out = vec![Fingerprint::default(); spans.len()];
    let chunk_len = spans.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (span_block, out_block) in spans.chunks(chunk_len).zip(out.chunks_mut(chunk_len)) {
            scope.spawn(move || {
                for (span, slot) in span_block.iter().zip(out_block.iter_mut()) {
                    *slot = Fingerprint::of(&data[span.clone()]);
                }
            });
        }
    });
    out
}

/// A sensible worker count for [`fingerprints_parallel`]: the machine's
/// available parallelism capped at 8 (hashing saturates memory bandwidth
/// beyond that).
pub fn default_hash_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans_of(len: usize, step: usize) -> Vec<Range<usize>> {
        (0..len)
            .step_by(step)
            .map(|i| i..(i + step).min(len))
            .collect()
    }

    #[test]
    fn matches_sequential_small() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let spans = spans_of(data.len(), 333);
        let par = fingerprints_parallel(&data, &spans, 4);
        let seq: Vec<Fingerprint> = spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn matches_sequential_large() {
        let data: Vec<u8> = (0..8_000_000u32).map(|i| (i % 253) as u8).collect();
        let spans = spans_of(data.len(), 4096);
        let par = fingerprints_parallel(&data, &spans, 4);
        let seq: Vec<Fingerprint> = spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_spans() {
        assert!(fingerprints_parallel(b"abc", &[], 4).is_empty());
    }

    #[test]
    fn single_thread_path() {
        let data = vec![1u8; 1000];
        let spans = spans_of(1000, 100);
        let fps = fingerprints_parallel(&data, &spans, 1);
        assert_eq!(fps.len(), 10);
        // All chunks identical -> all fingerprints identical.
        assert!(fps.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_hash_threads() >= 1);
    }

    #[test]
    fn fallback_threshold_is_one_mib_per_thread() {
        // Exactly at the cutoff (threads << 20 bytes) the threaded path
        // runs; one byte below it falls back to the sequential loop.
        for threads in [2usize, 4, 8] {
            let cutoff = threads << 20;
            assert!(
                sequential_fallback(cutoff - 1, 64, threads),
                "{threads} threads, one byte under the cutoff"
            );
            assert!(
                !sequential_fallback(cutoff, 64, threads),
                "{threads} threads, exactly at the cutoff"
            );
        }
    }

    #[test]
    fn fallback_on_few_spans_or_one_thread() {
        // 63 spans is sequential no matter how large the data is.
        assert!(sequential_fallback(usize::MAX, 63, 8));
        assert!(!sequential_fallback(usize::MAX, 64, 8));
        // One thread is always sequential.
        assert!(sequential_fallback(usize::MAX, 1 << 20, 1));
    }

    #[test]
    fn threshold_boundary_results_identical() {
        // Hash the same spans just below and just above the cutoff and
        // against the sequential loop: the answer must not depend on which
        // path ran.
        let threads = 2;
        let cutoff = threads << 20;
        for len in [cutoff - 1, cutoff] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i % 249) as u8).collect();
            let spans = spans_of(len, len / 100);
            let got = fingerprints_parallel(&data, &spans, threads);
            let want: Vec<Fingerprint> = spans
                .iter()
                .map(|s| Fingerprint::of(&data[s.clone()]))
                .collect();
            assert_eq!(got, want, "len={len}");
        }
    }

    #[test]
    fn threaded_path_empty_spans() {
        assert!(fingerprints_threaded(b"abc", &[], 4).is_empty());
        assert!(fingerprints_parallel(&[], &[], 8).is_empty());
    }

    #[test]
    fn threaded_path_preserves_order_with_more_threads_than_spans() {
        // 10 distinct spans, 32 threads: every block holds one span, and
        // the output must still be in span order.
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 241) as u8).collect();
        let spans = spans_of(data.len(), 100);
        assert!(spans.len() < 32);
        let got = fingerprints_threaded(&data, &spans, 32);
        let want: Vec<Fingerprint> = spans
            .iter()
            .map(|s| Fingerprint::of(&data[s.clone()]))
            .collect();
        assert_eq!(got, want);
    }
}
