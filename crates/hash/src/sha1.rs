//! SHA-1 implemented from scratch per FIPS 180-4.
//!
//! SHA-1 is cryptographically broken for adversarial collision resistance,
//! but remains the fingerprint function used by essentially every published
//! deduplication system (DDFS, Sparse Indexing, SiLo, Destor, HiDeStore)
//! because accidental collisions are still vastly less likely than hardware
//! faults. We implement it here rather than depending on an external crate:
//! fingerprinting is part of the substrate this reproduction is required to
//! build.

use crate::Digest;

const H0: [u32; 5] = [
    0x6745_2301,
    0xEFCD_AB89,
    0x98BA_DCFE,
    0x1032_5476,
    0xC3D2_E1F0,
];

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use hidestore_hash::Sha1;
///
/// let digest = Sha1::hash(b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(hex(&digest), "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
/// # fn hex(b: &[u8]) -> String { b.iter().map(|x| format!("{x:02x}")).collect() }
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Bytes absorbed so far (used for the length suffix).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 {
            state: H0,
            len: 0,
            buf: [0; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            rest = tail;
        }
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Consumes the hasher, returning the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_padding();
        let mut tail = [0u8; 64];
        if self.buf_len > 56 {
            tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            let block = tail;
            self.compress(&block);
            tail = [0u8; 64];
            self.buf_len = 0;
        } else {
            tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        }
        tail[56..].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&tail.clone());
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// One-shot hash of `data`.
    pub fn hash(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    fn update_padding(&mut self) {
        // Append the 0x80 terminator directly into the buffer; length tracking
        // is already done, so bypass `update`.
        self.buf[self.buf_len] = 0x80;
        self.buf_len += 1;
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;

    fn update(&mut self, data: &[u8]) {
        Sha1::update(self, data);
    }

    fn finalize_into(self, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            Self::OUTPUT_LEN,
            "output buffer must be 20 bytes"
        );
        out.copy_from_slice(&self.finalize());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / RFC 3174 test vectors.
    #[test]
    fn empty_input() {
        assert_eq!(
            hex(&Sha1::hash(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha1::hash(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha1::hash(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::hash(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&Sha1::hash(b"The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let expect = Sha1::hash(&data);
        for split in 0..=data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), expect, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths_55_56_63_64_65() {
        // Lengths around the padding boundary exercise the two-block finalize path.
        let known = [
            (55usize, "c1c8bbdc22796e28c0e15163d20899b65621d65a"),
            (56, "c2db330f6083854c99d4b5bfb6e8f29f201be699"),
            (63, "03f09f5b158a7a8cdad920bddc29b81c18a551f5"),
            (64, "0098ba824b5c16427bd7a1122a5a442a25ec644d"),
            (65, "11655326c708d70319be2610e8a57d9a5b959d3b"),
        ];
        for (len, want) in known {
            let data = vec![b'a'; len];
            assert_eq!(hex(&Sha1::hash(&data)), want, "len {len}");
        }
    }
}
