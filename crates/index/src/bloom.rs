//! A Bloom filter over chunk fingerprints — DDFS's in-memory "summary
//! vector" (Zhu et al., FAST'08) that eliminates disk lookups for most
//! unique chunks.

use hidestore_hash::Fingerprint;

/// Bloom filter keyed by [`Fingerprint`]s.
///
/// Uses the standard double-hashing construction `h_i = h1 + i * h2`; the two
/// base hashes are read directly from the fingerprint, which is already a
/// cryptographic digest, so no further mixing is needed.
///
/// # Examples
///
/// ```
/// use hidestore_index::BloomFilter;
/// use hidestore_hash::Fingerprint;
///
/// let mut bloom = BloomFilter::with_capacity(10_000, 0.01);
/// let fp = Fingerprint::of(b"stored chunk");
/// bloom.insert(&fp);
/// assert!(bloom.contains(&fp));
/// ```
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    n_bits: u64,
    n_hashes: u32,
    n_items: u64,
}

impl BloomFilter {
    /// Sizes the filter for `expected_items` at the given target false
    /// positive rate, using the standard optimal formulas.
    ///
    /// # Panics
    ///
    /// Panics if `expected_items == 0` or `fp_rate` is not in `(0, 1)`.
    pub fn with_capacity(expected_items: usize, fp_rate: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be non-zero");
        assert!(fp_rate > 0.0 && fp_rate < 1.0, "fp_rate must be in (0, 1)");
        let ln2 = std::f64::consts::LN_2;
        let n_bits = ((expected_items as f64) * (-fp_rate.ln()) / (ln2 * ln2)).ceil() as u64;
        let n_bits = n_bits.max(64);
        let n_hashes = ((n_bits as f64 / expected_items as f64) * ln2)
            .round()
            .max(1.0) as u32;
        BloomFilter {
            bits: vec![0; n_bits.div_ceil(64) as usize],
            n_bits,
            n_hashes,
            n_items: 0,
        }
    }

    fn positions(&self, fp: &Fingerprint) -> impl Iterator<Item = u64> + '_ {
        let bytes = fp.as_bytes();
        let mut word = [0u8; 8];
        word.copy_from_slice(&bytes[..8]);
        let h1 = u64::from_le_bytes(word);
        word.copy_from_slice(&bytes[8..16]);
        let h2 = u64::from_le_bytes(word) | 1;
        let n_bits = self.n_bits;
        (0..self.n_hashes as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % n_bits)
    }

    /// Inserts a fingerprint.
    pub fn insert(&mut self, fp: &Fingerprint) {
        let positions: Vec<u64> = self.positions(fp).collect();
        for pos in positions {
            self.bits[(pos / 64) as usize] |= 1 << (pos % 64);
        }
        self.n_items += 1;
    }

    /// Whether the fingerprint *may* have been inserted (false positives
    /// possible at the configured rate, never false negatives).
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.positions(fp)
            .all(|pos| self.bits[(pos / 64) as usize] & (1 << (pos % 64)) != 0)
    }

    /// Number of insertions performed.
    pub fn len(&self) -> u64 {
        self.n_items
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.n_items == 0
    }

    /// Memory footprint of the bit array in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::with_capacity(1000, 0.01);
        let fps: Vec<Fingerprint> = (0..1000).map(Fingerprint::synthetic).collect();
        for fp in &fps {
            b.insert(fp);
        }
        for fp in &fps {
            assert!(b.contains(fp));
        }
        assert_eq!(b.len(), 1000);
    }

    #[test]
    fn false_positive_rate_near_target() {
        let mut b = BloomFilter::with_capacity(10_000, 0.01);
        for i in 0..10_000 {
            b.insert(&Fingerprint::synthetic(i));
        }
        let false_positives = (10_000..110_000u64)
            .filter(|&i| b.contains(&Fingerprint::synthetic(i)))
            .count();
        let rate = false_positives as f64 / 100_000.0;
        assert!(rate < 0.03, "observed fp rate {rate}");
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let b = BloomFilter::with_capacity(100, 0.01);
        assert!(b.is_empty());
        assert!(!b.contains(&Fingerprint::synthetic(1)));
    }

    #[test]
    fn memory_scales_with_capacity() {
        let small = BloomFilter::with_capacity(1_000, 0.01);
        let large = BloomFilter::with_capacity(100_000, 0.01);
        assert!(large.memory_bytes() > small.memory_bytes() * 50);
    }

    #[test]
    #[should_panic(expected = "fp_rate")]
    fn invalid_rate_rejected() {
        BloomFilter::with_capacity(10, 1.5);
    }
}
