//! DDFS-style exact deduplication index (Zhu et al., FAST'08), as
//! implemented by Destor's "exact, locality-based" mode.

use std::collections::{HashMap, VecDeque};

use hidestore_hash::Fingerprint;
use hidestore_storage::{ContainerId, VersionId};

use crate::bloom::BloomFilter;
use crate::{FingerprintIndex, INDEX_ENTRY_BYTES};

/// Default number of container fingerprint sets held in the locality cache.
const DEFAULT_CACHE_CONTAINERS: usize = 64;

/// Exact deduplication with the three DDFS techniques:
///
/// 1. **Summary vector** — an in-memory Bloom filter over every stored
///    fingerprint; most unique chunks are answered without disk I/O.
/// 2. **Locality-preserved caching** — when a disk lookup finds a chunk in
///    container *C*, *C*'s whole fingerprint set is prefetched into an LRU
///    cache, so the duplicate run that follows hits memory.
/// 3. **On-disk full index** — consulted only on cache miss + Bloom
///    positive; every consultation increments [`disk_lookups`].
///
/// DDFS never misses a duplicate, so it attains the maximum deduplication
/// ratio (paper Figure 8), but its full index grows with every unique chunk
/// (paper Figure 10) and its lookup traffic grows as locality degrades over
/// versions (paper Figure 9).
///
/// [`disk_lookups`]: FingerprintIndex::disk_lookups
#[derive(Debug)]
pub struct DdfsIndex {
    bloom: BloomFilter,
    /// The "on-disk" full index: fingerprint → container. Accesses counted.
    full_index: HashMap<Fingerprint, ContainerId>,
    /// The "on-disk" container-metadata map used for prefetching.
    container_meta: HashMap<ContainerId, Vec<Fingerprint>>,
    /// LRU of prefetched container fingerprint sets.
    cache: HashMap<Fingerprint, ContainerId>,
    cache_order: VecDeque<ContainerId>,
    cache_members: HashMap<ContainerId, Vec<Fingerprint>>,
    cache_capacity: usize,
    disk_lookups: u64,
}

impl Default for DdfsIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl DdfsIndex {
    /// Creates a DDFS index with the default locality-cache size.
    pub fn new() -> Self {
        Self::with_cache_containers(DEFAULT_CACHE_CONTAINERS)
    }

    /// Creates a DDFS index caching up to `cache_containers` container
    /// fingerprint sets.
    ///
    /// # Panics
    ///
    /// Panics if `cache_containers == 0`.
    pub fn with_cache_containers(cache_containers: usize) -> Self {
        assert!(
            cache_containers > 0,
            "cache must hold at least one container"
        );
        DdfsIndex {
            bloom: BloomFilter::with_capacity(1 << 20, 0.01),
            full_index: HashMap::new(),
            container_meta: HashMap::new(),
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            cache_members: HashMap::new(),
            cache_capacity: cache_containers,
            disk_lookups: 0,
        }
    }

    /// Number of unique fingerprints indexed.
    pub fn unique_chunks(&self) -> usize {
        self.full_index.len()
    }

    fn prefetch_container(&mut self, container: ContainerId) {
        if self.cache_members.contains_key(&container) {
            return;
        }
        let members = self
            .container_meta
            .get(&container)
            .cloned()
            .unwrap_or_default();
        for fp in &members {
            self.cache.insert(*fp, container);
        }
        self.cache_members.insert(container, members);
        self.cache_order.push_back(container);
        while self.cache_order.len() > self.cache_capacity {
            let Some(evicted) = self.cache_order.pop_front() else {
                break;
            };
            if let Some(members) = self.cache_members.remove(&evicted) {
                for fp in members {
                    // Only drop mappings still pointing at the evicted
                    // container (a fingerprint may have been re-cached).
                    if self.cache.get(&fp) == Some(&evicted) {
                        self.cache.remove(&fp);
                    }
                }
            }
        }
    }

    fn lookup_one(&mut self, fp: &Fingerprint) -> Option<ContainerId> {
        if let Some(&cid) = self.cache.get(fp) {
            return Some(cid);
        }
        if !self.bloom.contains(fp) {
            // Summary vector: definitely not stored, no disk access needed.
            return None;
        }
        // Bloom positive: consult the on-disk full index.
        self.disk_lookups += 1;
        match self.full_index.get(fp).copied() {
            Some(cid) => {
                self.prefetch_container(cid);
                Some(cid)
            }
            None => None, // Bloom false positive.
        }
    }
}

impl FingerprintIndex for DdfsIndex {
    fn begin_version(&mut self, _version: VersionId) {}

    fn process_segment(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<Option<ContainerId>> {
        segment.iter().map(|(fp, _)| self.lookup_one(fp)).collect()
    }

    fn record_chunk(&mut self, fingerprint: Fingerprint, _size: u32, container: ContainerId) {
        if self.full_index.contains_key(&fingerprint) {
            return;
        }
        self.bloom.insert(&fingerprint);
        self.full_index.insert(fingerprint, container);
        self.container_meta
            .entry(container)
            .or_default()
            .push(fingerprint);
    }

    fn end_version(&mut self) {}

    fn disk_lookups(&self) -> u64 {
        self.disk_lookups
    }

    fn index_table_bytes(&self) -> usize {
        // The paper's Figure 10 charges DDFS for its full index: one entry
        // per unique chunk.
        self.full_index.len() * INDEX_ENTRY_BYTES + self.bloom.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "ddfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u64) -> Fingerprint {
        Fingerprint::synthetic(n)
    }

    fn seg(range: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        range.map(|i| (fp(i), 4096)).collect()
    }

    #[test]
    fn unique_chunks_do_not_touch_disk() {
        let mut idx = DdfsIndex::new();
        idx.begin_version(VersionId::new(1));
        let decisions = idx.process_segment(&seg(0..100));
        assert!(decisions.iter().all(Option::is_none));
        // All answered by the Bloom filter (modulo rare false positives).
        assert!(idx.disk_lookups() <= 2, "lookups: {}", idx.disk_lookups());
    }

    #[test]
    fn duplicates_found_with_one_lookup_per_container_run() {
        let mut idx = DdfsIndex::new();
        idx.begin_version(VersionId::new(1));
        let s = seg(0..100);
        idx.process_segment(&s);
        // Store all 100 chunks in container 1 (a physical-locality run).
        for (f, sz) in &s {
            idx.record_chunk(*f, *sz, ContainerId::new(1));
        }
        idx.end_version();

        idx.begin_version(VersionId::new(2));
        let decisions = idx.process_segment(&s);
        assert!(decisions.iter().all(|d| *d == Some(ContainerId::new(1))));
        // First chunk misses cache -> 1 disk lookup, prefetch covers the rest.
        assert_eq!(idx.disk_lookups(), 1);
    }

    #[test]
    fn fragmentation_costs_more_lookups() {
        // Same 100 chunks scattered across 50 containers: restoring locality
        // in the cache needs a lookup per distinct container.
        let mut idx = DdfsIndex::with_cache_containers(4);
        idx.begin_version(VersionId::new(1));
        let s = seg(0..100);
        idx.process_segment(&s);
        for (i, (f, sz)) in s.iter().enumerate() {
            idx.record_chunk(*f, *sz, ContainerId::new((i % 50 + 1) as u32));
        }
        idx.end_version();
        idx.begin_version(VersionId::new(2));
        idx.process_segment(&s);
        assert!(idx.disk_lookups() >= 50, "lookups: {}", idx.disk_lookups());
    }

    #[test]
    fn record_is_idempotent() {
        let mut idx = DdfsIndex::new();
        idx.record_chunk(fp(1), 10, ContainerId::new(1));
        idx.record_chunk(fp(1), 10, ContainerId::new(2));
        assert_eq!(idx.unique_chunks(), 1);
        idx.begin_version(VersionId::new(1));
        let d = idx.process_segment(&[(fp(1), 10)]);
        assert_eq!(d[0], Some(ContainerId::new(1)));
    }

    #[test]
    fn cache_eviction_keeps_correctness() {
        let mut idx = DdfsIndex::with_cache_containers(2);
        // 10 containers with 10 chunks each.
        for c in 0..10u32 {
            for i in 0..10u64 {
                idx.record_chunk(fp(c as u64 * 10 + i), 100, ContainerId::new(c + 1));
            }
        }
        idx.begin_version(VersionId::new(2));
        // Scan everything twice; all duplicates must still be found.
        for _ in 0..2 {
            let s = seg(0..100);
            let d = idx.process_segment(&s);
            assert!(d.iter().all(Option::is_some));
        }
    }

    #[test]
    fn index_bytes_grow_with_unique_chunks() {
        let mut idx = DdfsIndex::new();
        let base = idx.index_table_bytes();
        for i in 0..1000 {
            idx.record_chunk(fp(i), 100, ContainerId::new(1));
        }
        assert_eq!(idx.index_table_bytes() - base, 1000 * INDEX_ENTRY_BYTES);
    }
}
