//! Extreme Binning (Bhagwat, Eshghi, Long & Lillibridge, MASCOTS'09) —
//! similarity-based deduplication for workloads with poor locality, cited by
//! the paper's related work [6].

use std::collections::HashMap;

use hidestore_hash::Fingerprint;
use hidestore_storage::{ContainerId, VersionId};

use crate::FingerprintIndex;

/// Extreme Binning: one *bin* per representative fingerprint.
///
/// The unit of deduplication is a whole file (here: the pipeline segment,
/// which plays the file's role in a stream setting). Its **representative**
/// is its minimum fingerprint; by Broder's theorem similar files share their
/// minimum with high probability. The in-memory *primary index* maps the
/// representative to a bin on disk holding the full fingerprint list of all
/// files that shared it; one bin load (a counted disk lookup) deduplicates
/// the incoming file against all of them. Exact duplicates of a whole file
/// are detected for free via a stored whole-file hash.
///
/// RAM cost is one primary-index entry per *bin* — even smaller than SiLo's
/// per-segment table — at the price of missing duplicates across bins.
#[derive(Debug)]
pub struct ExtremeBinning {
    /// Primary index: representative fingerprint → bin id.
    primary: HashMap<Fingerprint, usize>,
    /// "On-disk" bins: full chunk maps plus whole-file hashes.
    bins: Vec<Bin>,
    /// Chunks recorded for the segment currently being ingested.
    current: Vec<(Fingerprint, ContainerId)>,
    /// The bin the current segment will merge into.
    current_bin: Option<usize>,
    disk_lookups: u64,
    /// Deduplication map for the segment being processed.
    loaded: HashMap<Fingerprint, ContainerId>,
}

#[derive(Debug, Default, Clone)]
struct Bin {
    chunks: HashMap<Fingerprint, ContainerId>,
    /// Whole-file hashes of files merged into this bin (exact-duplicate
    /// detection).
    whole_hashes: Vec<Fingerprint>,
}

impl Default for ExtremeBinning {
    fn default() -> Self {
        Self::new()
    }
}

impl ExtremeBinning {
    /// Creates an empty Extreme Binning index.
    pub fn new() -> Self {
        ExtremeBinning {
            primary: HashMap::new(),
            bins: Vec::new(),
            current: Vec::new(),
            current_bin: None,
            disk_lookups: 0,
            loaded: HashMap::new(),
        }
    }

    /// Number of bins (primary-index entries).
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    fn seal_current(&mut self) {
        if self.current.is_empty() {
            return;
        }
        let chunks: Vec<(Fingerprint, ContainerId)> = std::mem::take(&mut self.current);
        // Whole-file hash: hash of the concatenated fingerprints.
        let mut hasher = hidestore_hash::Sha1::new();
        for (fp, _) in &chunks {
            hasher.update(fp.as_bytes());
        }
        let whole = Fingerprint::from_bytes(hasher.finalize());
        // `chunks` is non-empty (checked above), so a minimum exists.
        let Some(rep) = chunks.iter().map(|&(fp, _)| fp).min() else {
            return;
        };
        let bin_id = match self.current_bin.take() {
            Some(id) => id,
            None => match self.primary.get(&rep) {
                Some(&id) => id,
                None => {
                    self.bins.push(Bin::default());
                    self.bins.len() - 1
                }
            },
        };
        let bin = &mut self.bins[bin_id];
        for (fp, cid) in chunks {
            bin.chunks.entry(fp).or_insert(cid);
        }
        bin.whole_hashes.push(whole);
        self.primary.insert(rep, bin_id);
    }
}

impl FingerprintIndex for ExtremeBinning {
    fn begin_version(&mut self, _version: VersionId) {}

    fn process_segment(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<Option<ContainerId>> {
        self.seal_current();
        self.loaded.clear();
        self.current_bin = None;
        if let Some(rep) = segment.iter().map(|&(fp, _)| fp).min() {
            if let Some(&bin_id) = self.primary.get(&rep) {
                // Load the bin from disk: one counted lookup.
                self.disk_lookups += 1;
                self.loaded = self.bins[bin_id].chunks.clone();
                self.current_bin = Some(bin_id);
            }
        }
        segment
            .iter()
            .map(|(fp, _)| self.loaded.get(fp).copied())
            .collect()
    }

    fn record_chunk(&mut self, fingerprint: Fingerprint, _size: u32, container: ContainerId) {
        self.current.push((fingerprint, container));
    }

    fn end_version(&mut self) {
        self.seal_current();
    }

    fn disk_lookups(&self) -> u64 {
        self.disk_lookups
    }

    fn index_table_bytes(&self) -> usize {
        // Primary index: 20-byte representative + 8-byte bin pointer.
        self.primary.len() * 28
    }

    fn name(&self) -> &'static str {
        "extreme-binning"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(range: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        range.map(|i| (Fingerprint::synthetic(i), 4096)).collect()
    }

    fn run_version(idx: &mut ExtremeBinning, v: u32, chunks: &[(Fingerprint, u32)]) -> usize {
        idx.begin_version(VersionId::new(v));
        let mut dups = 0;
        for s in chunks.chunks(128) {
            let d = idx.process_segment(s);
            for ((fp, sz), dup) in s.iter().zip(d) {
                match dup {
                    Some(c) => {
                        dups += 1;
                        idx.record_chunk(*fp, *sz, c);
                    }
                    None => idx.record_chunk(*fp, *sz, ContainerId::new(v)),
                }
            }
        }
        idx.end_version();
        dups
    }

    #[test]
    fn identical_second_version_fully_binned() {
        let mut idx = ExtremeBinning::new();
        let chunks = seg(0..1024);
        assert_eq!(run_version(&mut idx, 1, &chunks), 0);
        let dups = run_version(&mut idx, 2, &chunks);
        assert_eq!(dups, 1024, "identical segments share their representative");
    }

    #[test]
    fn similar_segments_share_a_bin() {
        let mut idx = ExtremeBinning::new();
        run_version(&mut idx, 1, &seg(0..128));
        // 90% overlap, representative (min fp = 0) unchanged.
        let mut similar = seg(0..115);
        similar.extend(seg(90_000..90_013));
        idx.begin_version(VersionId::new(2));
        let d = idx.process_segment(&similar);
        assert!(d.iter().filter(|x| x.is_some()).count() >= 115);
    }

    #[test]
    fn one_lookup_per_segment_with_known_representative() {
        let mut idx = ExtremeBinning::new();
        let chunks = seg(0..1024);
        run_version(&mut idx, 1, &chunks);
        let before = idx.disk_lookups();
        run_version(&mut idx, 2, &chunks);
        assert_eq!(idx.disk_lookups() - before, (1024 / 128) as u64);
    }

    #[test]
    fn unknown_representative_costs_nothing() {
        let mut idx = ExtremeBinning::new();
        run_version(&mut idx, 1, &seg(0..128));
        assert_eq!(idx.disk_lookups(), 0, "first sight of a bin is free");
    }

    #[test]
    fn primary_index_is_tiny() {
        let mut idx = ExtremeBinning::new();
        let chunks = seg(0..1280); // 10 segments
        run_version(&mut idx, 1, &chunks);
        assert!(idx.index_table_bytes() <= 10 * 28);
        assert!(idx.bin_count() <= 10);
    }

    #[test]
    fn disjoint_bins_do_not_cross_deduplicate() {
        let mut idx = ExtremeBinning::new();
        run_version(&mut idx, 1, &seg(0..128));
        let dups = run_version(&mut idx, 2, &seg(50_000..50_128));
        assert_eq!(dups, 0);
    }
}
