#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Fingerprint index schemes for the deduplication phase.
//!
//! Identifying whether an incoming chunk is a duplicate is the throughput
//! bottleneck of large-scale deduplication (paper §2.2): the full
//! fingerprint-to-location table outgrows RAM, so every scheme trades
//! deduplication *ratio* against *disk index lookups*. This crate implements
//! the three baseline schemes the paper compares against:
//!
//! * [`DdfsIndex`] — Zhu et al. (FAST'08): exact deduplication with an
//!   in-memory Bloom filter plus a locality-preserving container-metadata
//!   cache in front of the on-disk full index.
//! * [`SparseIndex`] — Lillibridge et al. (FAST'09): near-exact; samples
//!   "hook" fingerprints, picks champion segments, dedupes only against
//!   their manifests.
//! * [`SiloIndex`] — Xia et al. (ATC'11): near-exact; exploits similarity
//!   (a representative fingerprint per segment) and locality (segments
//!   grouped into blocks).
//!
//! All schemes implement [`FingerprintIndex`]. Lookups that would touch the
//! on-disk structure are **counted**, not timed: the paper's Figure 9 metric
//! is *lookup requests per GB*, and Figure 10's is *index bytes per MB of
//! data*, both exposed here via [`FingerprintIndex::disk_lookups`] and
//! [`FingerprintIndex::index_table_bytes`].
//!
//! # Examples
//!
//! ```
//! use hidestore_index::{DdfsIndex, FingerprintIndex};
//! use hidestore_hash::Fingerprint;
//! use hidestore_storage::{ContainerId, VersionId};
//!
//! let mut index = DdfsIndex::new();
//! index.begin_version(VersionId::new(1));
//! let fp = Fingerprint::of(b"chunk");
//! let segment = [(fp, 5u32)];
//! assert_eq!(index.process_segment(&segment), vec![None]); // unique
//! index.record_chunk(fp, 5, ContainerId::new(1));
//! index.end_version();
//!
//! index.begin_version(VersionId::new(2));
//! assert_eq!(index.process_segment(&segment), vec![Some(ContainerId::new(1))]);
//! ```

mod bloom;
mod ddfs;
mod extreme_binning;
mod revdedup;
mod silo;
mod sparse;

pub use bloom::BloomFilter;
pub use ddfs::DdfsIndex;
pub use extreme_binning::ExtremeBinning;
pub use revdedup::RevDedupIndex;
pub use silo::{SiloConfig, SiloIndex};
pub use sparse::{SparseConfig, SparseIndex};

use hidestore_hash::Fingerprint;
use hidestore_storage::{ContainerId, VersionId};

/// A deduplication fingerprint index: decides, segment by segment, which
/// incoming chunks are duplicates and where the existing copies live.
///
/// The pipeline drives it as: `begin_version` → for each segment
/// `process_segment` then `record_chunk` for every chunk with its final
/// location → `end_version`.
pub trait FingerprintIndex {
    /// Called before the first segment of each backup version.
    fn begin_version(&mut self, version: VersionId);

    /// Classifies one segment of `(fingerprint, size)` pairs.
    ///
    /// Returns, per chunk and in order, `Some(container)` if the chunk is a
    /// duplicate of a chunk stored in `container`, or `None` if the index
    /// considers it unique (near-exact schemes may return `None` for true
    /// duplicates — that is exactly their deduplication-ratio loss).
    fn process_segment(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<Option<ContainerId>>;

    /// Records the final location of a chunk of the current version —
    /// unique chunks after they are written, duplicates with their existing
    /// container — so the index can build manifests/blocks.
    fn record_chunk(&mut self, fingerprint: Fingerprint, size: u32, container: ContainerId);

    /// Called after the last segment of the version.
    fn end_version(&mut self);

    /// Number of on-disk index lookups performed so far (Figure 9 metric).
    fn disk_lookups(&self) -> u64;

    /// Current size in bytes of the scheme's index table (Figure 10 metric).
    fn index_table_bytes(&self) -> usize;

    /// Short scheme name for reports (e.g. `"ddfs"`).
    fn name(&self) -> &'static str;
}

/// Size in bytes of one full-index entry: 20-byte fingerprint plus an 8-byte
/// location, matching the paper's §2.2 accounting.
pub const INDEX_ENTRY_BYTES: usize = 28;

/// Identifier for choosing an index scheme from configuration, mirroring
/// `ChunkerKind`'s role for the chunking phase in `hidestore-chunking`.
///
/// # Examples
///
/// ```
/// use hidestore_index::IndexKind;
///
/// let mut index = IndexKind::Ddfs.build();
/// assert_eq!(index.name(), "ddfs");
/// # use hidestore_index::FingerprintIndex;
/// # index.begin_version(hidestore_storage::VersionId::new(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Exact deduplication (Zhu et al.).
    Ddfs,
    /// Sparse Indexing (Lillibridge et al.).
    Sparse,
    /// SiLo (Xia et al.).
    Silo,
    /// Extreme Binning (Bhagwat et al.).
    ExtremeBinning,
    /// RevDedup segment-level dedup (Ng & Lee).
    RevDedup,
}

impl IndexKind {
    /// Every selectable scheme.
    pub const ALL: [IndexKind; 5] = [
        IndexKind::Ddfs,
        IndexKind::Sparse,
        IndexKind::Silo,
        IndexKind::ExtremeBinning,
        IndexKind::RevDedup,
    ];

    /// Builds a boxed index of this kind with default configuration.
    pub fn build(self) -> Box<dyn FingerprintIndex + Send> {
        match self {
            IndexKind::Ddfs => Box::new(DdfsIndex::new()),
            IndexKind::Sparse => Box::new(SparseIndex::new(SparseConfig::default())),
            IndexKind::Silo => Box::new(SiloIndex::new(SiloConfig::default())),
            IndexKind::ExtremeBinning => Box::new(ExtremeBinning::new()),
            IndexKind::RevDedup => Box::new(RevDedupIndex::new()),
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            IndexKind::Ddfs => "ddfs",
            IndexKind::Sparse => "sparse",
            IndexKind::Silo => "silo",
            IndexKind::ExtremeBinning => "extreme-binning",
            IndexKind::RevDedup => "revdedup",
        };
        f.write_str(name)
    }
}

impl<T: FingerprintIndex + ?Sized> FingerprintIndex for Box<T> {
    fn begin_version(&mut self, version: VersionId) {
        (**self).begin_version(version)
    }

    fn process_segment(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<Option<ContainerId>> {
        (**self).process_segment(segment)
    }

    fn record_chunk(&mut self, fingerprint: Fingerprint, size: u32, container: ContainerId) {
        (**self).record_chunk(fingerprint, size, container)
    }

    fn end_version(&mut self) {
        (**self).end_version()
    }

    fn disk_lookups(&self) -> u64 {
        (**self).disk_lookups()
    }

    fn index_table_bytes(&self) -> usize {
        (**self).index_table_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shared behavioural tests run against every index implementation.
    fn exercise_exactness(index: &mut dyn FingerprintIndex) -> (usize, usize) {
        // Two identical versions: count how many of the second version's
        // chunks are recognized as duplicates.
        let chunks: Vec<(Fingerprint, u32)> = (0..400u64)
            .map(|i| (Fingerprint::synthetic(i), 4096u32))
            .collect();
        index.begin_version(VersionId::new(1));
        for (seg_idx, seg) in chunks.chunks(64).enumerate() {
            let d = index.process_segment(seg);
            for (j, ((fp, size), dup)) in seg.iter().zip(d).enumerate() {
                let cid =
                    dup.unwrap_or_else(|| ContainerId::new((seg_idx * 64 + j) as u32 / 100 + 1));
                index.record_chunk(*fp, *size, cid);
            }
        }
        index.end_version();

        index.begin_version(VersionId::new(2));
        let mut dup_count = 0;
        for seg in chunks.chunks(64) {
            let d = index.process_segment(seg);
            for ((fp, size), dup) in seg.iter().zip(d) {
                if let Some(c) = dup {
                    dup_count += 1;
                    index.record_chunk(*fp, *size, c);
                } else {
                    index.record_chunk(*fp, *size, ContainerId::new(99));
                }
            }
        }
        index.end_version();
        (dup_count, chunks.len())
    }

    #[test]
    fn ddfs_is_exact() {
        let mut idx = DdfsIndex::new();
        let (dups, total) = exercise_exactness(&mut idx);
        assert_eq!(dups, total, "DDFS must catch every duplicate");
    }

    #[test]
    fn sparse_is_near_exact_on_identical_versions() {
        let mut idx = SparseIndex::new(SparseConfig::default());
        let (dups, total) = exercise_exactness(&mut idx);
        assert!(dups * 10 >= total * 9, "sparse caught only {dups}/{total}");
    }

    #[test]
    fn silo_is_near_exact_on_identical_versions() {
        let mut idx = SiloIndex::new(SiloConfig::default());
        let (dups, total) = exercise_exactness(&mut idx);
        assert!(dups * 10 >= total * 9, "silo caught only {dups}/{total}");
    }

    #[test]
    fn index_kind_builds_every_scheme() {
        for kind in IndexKind::ALL {
            let mut index = kind.build();
            index.begin_version(VersionId::new(1));
            let seg = [(Fingerprint::synthetic(1), 100u32)];
            assert_eq!(index.process_segment(&seg), vec![None], "{kind}");
            index.record_chunk(Fingerprint::synthetic(1), 100, ContainerId::new(1));
            index.end_version();
            assert_eq!(kind.to_string(), index.name());
        }
    }

    #[test]
    fn extreme_binning_is_near_exact_on_identical_versions() {
        let mut idx = ExtremeBinning::new();
        let (dups, total) = exercise_exactness(&mut idx);
        assert!(
            dups * 10 >= total * 9,
            "extreme binning caught only {dups}/{total}"
        );
    }

    #[test]
    fn all_names_distinct() {
        let names = [
            DdfsIndex::new().name(),
            SparseIndex::new(SparseConfig::default()).name(),
            SiloIndex::new(SiloConfig::default()).name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
