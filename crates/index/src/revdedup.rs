//! RevDedup (Ng & Lee, APSYS'13 / ToS'15) — coarse segment-level inline
//! deduplication optimized for reads to the *latest* backup, cited in
//! PAPERS.md as the reverse-deduplication counterpart to HiDeStore.
//!
//! RevDedup deduplicates whole **segments** on ingest: the chunk stream is
//! cut at content-defined anchors (a fingerprint-prefix test, so boundaries
//! survive insertions and deletions), each segment is identified by the
//! hash of its chunk fingerprints, and a segment is deduplicated only when
//! it matches a whole segment of the previous version — otherwise every
//! chunk in it is written again, duplicates included. New backups therefore
//! land nearly sequentially (good newest-version restore locality); the
//! fine-grained duplicates left behind are the business of an offline
//! reverse-deduplication pass, not of this index.
//!
//! The segment table is one entry per segment of one version — small enough
//! to pin in RAM, so [`FingerprintIndex::disk_lookups`] stays zero; the
//! scheme's cost shows up in deduplication ratio and in the out-of-line
//! pass instead.

use std::collections::HashMap;

use hidestore_hash::{Fingerprint, Sha1};
use hidestore_storage::{ContainerId, VersionId};

use crate::FingerprintIndex;

/// Average chunks per segment: a chunk whose fingerprint prefix matches
/// this mask ends the segment, so segments average `MASK + 1` chunks.
const ANCHOR_MASK: u64 = 0x7;

fn is_anchor(fp: &Fingerprint) -> bool {
    fp.prefix64() & ANCHOR_MASK == 0
}

/// A segment's identity: the hash of its chunk fingerprints in order.
fn segment_id(chunks: &[(Fingerprint, u32)]) -> Fingerprint {
    let mut hasher = Sha1::new();
    for (fp, _) in chunks {
        hasher.update(fp.as_bytes());
    }
    Fingerprint::from_bytes(hasher.finalize())
}

/// RevDedup's segment index (see module docs).
///
/// The table covers the **previous version only** — RevDedup's inline phase
/// deduplicates the incoming backup against the latest one, nothing older.
/// Segmentation is re-derived identically on the lookup and build sides
/// (anchors plus pipeline call-window edges), so identical streams
/// deduplicate fully while shifted streams re-align at the next anchor.
#[derive(Debug, Default)]
pub struct RevDedupIndex {
    /// Previous version's segments: segment id → chunk run with locations.
    segments: HashMap<Fingerprint, Vec<(Fingerprint, u32, ContainerId)>>,
    /// Current version's segments, sealed as `record_chunk` hits anchors
    /// and call-window edges; becomes `segments` at `end_version`.
    building: HashMap<Fingerprint, Vec<(Fingerprint, u32, ContainerId)>>,
    /// Chunks of the current run, awaiting their seal point.
    run: Vec<(Fingerprint, u32, ContainerId)>,
    /// Segment-table probes (all in-memory; exposed for experiments).
    segment_lookups: u64,
}

impl RevDedupIndex {
    /// Creates an empty RevDedup segment index.
    pub fn new() -> Self {
        RevDedupIndex::default()
    }

    /// Segment-table probes so far (in-memory lookups, not disk I/O).
    pub fn segment_lookups(&self) -> u64 {
        self.segment_lookups
    }

    /// Segments currently indexed (previous version's count).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Seals the chunk run being built into the current version's table.
    fn seal_run(&mut self) {
        if self.run.is_empty() {
            return;
        }
        let run = std::mem::take(&mut self.run);
        let keyed: Vec<(Fingerprint, u32)> = run.iter().map(|&(fp, size, _)| (fp, size)).collect();
        self.building.insert(segment_id(&keyed), run);
    }
}

impl FingerprintIndex for RevDedupIndex {
    fn begin_version(&mut self, _version: VersionId) {
        self.run.clear();
        self.building.clear();
    }

    fn process_segment(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<Option<ContainerId>> {
        // A call-window edge is a segment cut on the build side too, so the
        // two sides segment the stream identically.
        self.seal_run();
        let mut out = vec![None; segment.len()];
        let mut start = 0;
        for end in 1..=segment.len() {
            let at_cut = is_anchor(&segment[end - 1].0) || end == segment.len();
            if !at_cut {
                continue;
            }
            let piece = &segment[start..end];
            self.segment_lookups += 1;
            if let Some(run) = self.segments.get(&segment_id(piece)) {
                // Guard against segment-hash collisions before reusing.
                if run.len() == piece.len()
                    && run
                        .iter()
                        .zip(piece)
                        .all(|(&(fp, size, _), &(pfp, psize))| fp == pfp && size == psize)
                {
                    for (slot, &(_, _, cid)) in out[start..end].iter_mut().zip(run) {
                        *slot = Some(cid);
                    }
                }
            }
            start = end;
        }
        out
    }

    fn record_chunk(&mut self, fingerprint: Fingerprint, size: u32, container: ContainerId) {
        self.run.push((fingerprint, size, container));
        if is_anchor(&fingerprint) {
            self.seal_run();
        }
    }

    fn end_version(&mut self) {
        self.seal_run();
        // Reverse-dedup semantics: only the newest version is the inline
        // target for the next backup.
        self.segments = std::mem::take(&mut self.building);
    }

    fn disk_lookups(&self) -> u64 {
        // The per-segment table fits in RAM; RevDedup does no on-disk index
        // lookups inline.
        0
    }

    fn index_table_bytes(&self) -> usize {
        // Per segment: 20-byte id + 8-byte pointer; per chunk in its run:
        // 20-byte fingerprint + 4-byte size + 8-byte location.
        self.segments.values().map(|run| 28 + run.len() * 32).sum()
    }

    fn name(&self) -> &'static str {
        "revdedup"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks(range: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        range.map(|i| (Fingerprint::synthetic(i), 4096)).collect()
    }

    fn run_version(idx: &mut RevDedupIndex, v: u32, stream: &[(Fingerprint, u32)]) -> usize {
        idx.begin_version(VersionId::new(v));
        let mut dups = 0;
        for window in stream.chunks(64) {
            let d = idx.process_segment(window);
            for ((fp, size), dup) in window.iter().zip(d) {
                match dup {
                    Some(c) => {
                        dups += 1;
                        idx.record_chunk(*fp, *size, c);
                    }
                    None => idx.record_chunk(*fp, *size, ContainerId::new(v)),
                }
            }
        }
        idx.end_version();
        dups
    }

    #[test]
    fn identical_versions_dedup_fully() {
        let mut idx = RevDedupIndex::new();
        let stream = chunks(0..512);
        assert_eq!(run_version(&mut idx, 1, &stream), 0);
        assert_eq!(
            run_version(&mut idx, 2, &stream),
            512,
            "identical streams cut into identical segments"
        );
    }

    #[test]
    fn segment_dedup_is_all_or_nothing() {
        let mut idx = RevDedupIndex::new();
        let stream = chunks(0..512);
        run_version(&mut idx, 1, &stream);
        // Corrupt one chunk: its whole segment must re-store, the rest
        // still deduplicates.
        let mut edited = stream.clone();
        edited[200].0 = Fingerprint::synthetic(999_999);
        let dups = run_version(&mut idx, 2, &edited);
        assert!(dups < 512, "the edited segment must not dedup");
        assert!(dups > 256, "far-away segments must still dedup");
    }

    #[test]
    fn dedups_only_against_previous_version() {
        let mut idx = RevDedupIndex::new();
        let a = chunks(0..256);
        let b = chunks(10_000..10_256);
        run_version(&mut idx, 1, &a);
        run_version(&mut idx, 2, &b);
        // Version 1's segments are gone: reverse dedup keeps only the
        // newest version inline.
        assert_eq!(run_version(&mut idx, 3, &a), 0);
    }

    #[test]
    fn no_disk_lookups_ever() {
        let mut idx = RevDedupIndex::new();
        let stream = chunks(0..512);
        run_version(&mut idx, 1, &stream);
        run_version(&mut idx, 2, &stream);
        assert_eq!(idx.disk_lookups(), 0);
        assert!(idx.segment_lookups() > 0, "probes are still counted");
    }

    #[test]
    fn table_holds_one_versions_segments() {
        let mut idx = RevDedupIndex::new();
        run_version(&mut idx, 1, &chunks(0..512));
        let after_one = idx.index_table_bytes();
        run_version(&mut idx, 2, &chunks(0..512));
        assert_eq!(
            idx.index_table_bytes(),
            after_one,
            "the table never accumulates old versions"
        );
        assert!(idx.segment_count() > 1, "anchors must cut 512 chunks");
    }
}
