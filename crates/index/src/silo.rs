//! SiLo (Xia et al., USENIX ATC'11): near-exact deduplication exploiting
//! both similarity and locality at low RAM overhead.

use std::collections::{HashMap, VecDeque};

use hidestore_hash::Fingerprint;
use hidestore_storage::{ContainerId, VersionId};

use crate::FingerprintIndex;

/// Configuration for [`SiloIndex`].
#[derive(Debug, Clone, Copy)]
pub struct SiloConfig {
    /// Number of segments grouped into one block (the locality unit that is
    /// loaded from disk on a similarity hit).
    pub segments_per_block: usize,
    /// Number of recently loaded blocks kept in the read cache.
    pub cached_blocks: usize,
}

impl Default for SiloConfig {
    fn default() -> Self {
        SiloConfig {
            segments_per_block: 8,
            cached_blocks: 16,
        }
    }
}

/// A block: the chunk maps of several consecutive segments, stored "on disk".
#[derive(Debug, Clone, Default)]
struct Block {
    chunks: HashMap<Fingerprint, ContainerId>,
}

/// SiLo similarity+locality index.
///
/// Each segment is represented by its *minimal* fingerprint. The in-memory
/// similarity hash table (SHTable) maps representative fingerprints to the
/// block holding that segment. On a match the whole block — several
/// neighbouring segments — is loaded (one counted disk lookup) into an LRU
/// read cache, so similar-but-not-identical segments nearby also hit. RAM
/// cost is one SHTable entry per *segment* instead of one per chunk, the
/// reduction the paper's Figure 10 shows.
#[derive(Debug)]
pub struct SiloIndex {
    config: SiloConfig,
    /// SHTable: representative fingerprint → block id.
    sh_table: HashMap<Fingerprint, usize>,
    /// "On-disk" block store.
    blocks: Vec<Block>,
    /// Block under construction.
    current_block: Block,
    current_block_segments: usize,
    /// Representatives of segments already sealed into `current_block`.
    pending_reps: Vec<Fingerprint>,
    /// LRU read cache of loaded blocks.
    cache: HashMap<Fingerprint, ContainerId>,
    cache_order: VecDeque<usize>,
    cache_members: HashMap<usize, Vec<Fingerprint>>,
    disk_lookups: u64,
    /// Whether chunks have been recorded since the last segment seal.
    dirty: bool,
}

impl SiloIndex {
    /// Creates a SiLo index.
    ///
    /// # Panics
    ///
    /// Panics if either configuration field is zero.
    pub fn new(config: SiloConfig) -> Self {
        assert!(
            config.segments_per_block > 0,
            "segments_per_block must be non-zero"
        );
        assert!(config.cached_blocks > 0, "cached_blocks must be non-zero");
        SiloIndex {
            config,
            sh_table: HashMap::new(),
            blocks: Vec::new(),
            current_block: Block::default(),
            current_block_segments: 0,
            pending_reps: Vec::new(),
            cache: HashMap::new(),
            cache_order: VecDeque::new(),
            cache_members: HashMap::new(),
            disk_lookups: 0,
            dirty: false,
        }
    }

    fn load_block(&mut self, block_id: usize) {
        if self.cache_members.contains_key(&block_id) {
            return;
        }
        self.disk_lookups += 1;
        let members: Vec<Fingerprint> = self.blocks[block_id].chunks.keys().copied().collect();
        for fp in &members {
            self.cache.insert(*fp, self.blocks[block_id].chunks[fp]);
        }
        self.cache_members.insert(block_id, members);
        self.cache_order.push_back(block_id);
        while self.cache_order.len() > self.config.cached_blocks {
            let Some(evicted) = self.cache_order.pop_front() else {
                break;
            };
            if let Some(members) = self.cache_members.remove(&evicted) {
                for fp in members {
                    self.cache.remove(&fp);
                }
            }
        }
    }

    fn seal_segment(&mut self) {
        // A segment's chunks were accumulated into `current_block` by
        // record_chunk; close the segment and, if the block is full, seal it.
        self.current_block_segments += 1;
        if self.current_block_segments >= self.config.segments_per_block {
            self.seal_block();
        }
    }

    fn seal_block(&mut self) {
        if self.current_block.chunks.is_empty() {
            self.current_block_segments = 0;
            return;
        }
        let block = std::mem::take(&mut self.current_block);
        let id = self.blocks.len();
        self.blocks.push(block);
        for rep in self.pending_reps.drain(..) {
            self.sh_table.insert(rep, id);
        }
        self.current_block_segments = 0;
    }
}

impl FingerprintIndex for SiloIndex {
    fn begin_version(&mut self, _version: VersionId) {}

    fn process_segment(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<Option<ContainerId>> {
        // Close the previous segment's accumulation first.
        if self.dirty {
            self.seal_segment();
            self.dirty = false;
        }
        // Representative fingerprint: the minimal one (Broder's theorem —
        // similar sets share their minimum with high probability).
        if let Some(rep) = segment.iter().map(|(fp, _)| *fp).min() {
            if let Some(&block_id) = self.sh_table.get(&rep) {
                self.load_block(block_id);
            }
            self.pending_reps.push(rep);
        }
        let decisions = segment
            .iter()
            .map(|(fp, _)| self.cache.get(fp).copied())
            .collect();
        decisions
    }

    fn record_chunk(&mut self, fingerprint: Fingerprint, _size: u32, container: ContainerId) {
        self.current_block.chunks.insert(fingerprint, container);
        self.dirty = true;
    }

    fn end_version(&mut self) {
        if self.dirty {
            self.seal_segment();
            self.dirty = false;
        }
        self.seal_block();
    }

    fn disk_lookups(&self) -> u64 {
        self.disk_lookups
    }

    fn index_table_bytes(&self) -> usize {
        // One SHTable entry per stored segment: 20-byte representative plus
        // an 8-byte block reference.
        self.sh_table.len() * 28
    }

    fn name(&self) -> &'static str {
        "silo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(range: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        range.map(|i| (Fingerprint::synthetic(i), 4096)).collect()
    }

    fn run_version(idx: &mut SiloIndex, v: u32, chunks: &[(Fingerprint, u32)]) -> usize {
        idx.begin_version(VersionId::new(v));
        let mut dups = 0;
        for s in chunks.chunks(128) {
            let d = idx.process_segment(s);
            for ((fp, sz), dup) in s.iter().zip(d) {
                match dup {
                    Some(c) => {
                        dups += 1;
                        idx.record_chunk(*fp, *sz, c);
                    }
                    None => idx.record_chunk(*fp, *sz, ContainerId::new(v)),
                }
            }
        }
        idx.end_version();
        dups
    }

    #[test]
    fn identical_second_version_mostly_deduplicated() {
        let mut idx = SiloIndex::new(SiloConfig::default());
        let chunks = seg(0..2048);
        assert_eq!(run_version(&mut idx, 1, &chunks), 0);
        let dups = run_version(&mut idx, 2, &chunks);
        assert!(dups >= 1850, "only {dups}/2048 deduplicated");
    }

    #[test]
    fn similar_segment_hits_via_representative() {
        let mut idx = SiloIndex::new(SiloConfig::default());
        let original = seg(0..128);
        run_version(&mut idx, 1, &original);
        // 90% same chunks, 10% new — representative likely unchanged.
        let mut similar = seg(0..115);
        similar.extend(seg(5000..5013));
        idx.begin_version(VersionId::new(2));
        let d = idx.process_segment(&similar);
        let hits = d.iter().filter(|x| x.is_some()).count();
        assert!(hits >= 100, "only {hits} similarity hits");
    }

    #[test]
    fn one_disk_lookup_per_block_not_per_segment() {
        let cfg = SiloConfig {
            segments_per_block: 8,
            cached_blocks: 16,
        };
        let mut idx = SiloIndex::new(cfg);
        let chunks = seg(0..1024); // 8 segments of 128 = exactly 1 block
        run_version(&mut idx, 1, &chunks);
        let before = idx.disk_lookups();
        run_version(&mut idx, 2, &chunks);
        // All 8 segments map to the same block: a single load suffices.
        assert_eq!(idx.disk_lookups() - before, 1);
    }

    #[test]
    fn sh_table_grows_per_segment_not_per_chunk() {
        let mut idx = SiloIndex::new(SiloConfig::default());
        let chunks = seg(0..1280); // 10 segments of 128
        run_version(&mut idx, 1, &chunks);
        assert_eq!(idx.index_table_bytes(), 10 * 28);
    }

    #[test]
    fn cache_eviction_bounded() {
        let cfg = SiloConfig {
            segments_per_block: 1,
            cached_blocks: 2,
        };
        let mut idx = SiloIndex::new(cfg);
        let chunks = seg(0..1280);
        run_version(&mut idx, 1, &chunks);
        run_version(&mut idx, 2, &chunks);
        assert!(idx.cache_members.len() <= 2);
    }
}
