//! Sparse Indexing (Lillibridge et al., FAST'09): near-exact deduplication
//! by sampling "hooks" and deduplicating against a few champion segments.

use std::collections::HashMap;

use hidestore_hash::Fingerprint;
use hidestore_storage::{ContainerId, VersionId};

use crate::FingerprintIndex;

/// Configuration for [`SparseIndex`].
#[derive(Debug, Clone, Copy)]
pub struct SparseConfig {
    /// One of every `sample_rate` fingerprints is a hook (paper default
    /// discussion: 128:1 reduces RAM ~128×, §5.2.3).
    pub sample_rate: u64,
    /// Maximum manifests a hook entry remembers (most recent kept).
    pub max_manifests_per_hook: usize,
    /// Champions loaded per incoming segment.
    pub max_champions: usize,
}

impl Default for SparseConfig {
    fn default() -> Self {
        SparseConfig {
            sample_rate: 64,
            max_manifests_per_hook: 4,
            max_champions: 8,
        }
    }
}

/// A stored segment manifest: the fingerprint → container map of one
/// already-deduplicated segment. Manifests live "on disk"; loading one is a
/// counted lookup.
#[derive(Debug, Clone, Default)]
struct Manifest {
    chunks: HashMap<Fingerprint, ContainerId>,
}

/// Near-exact deduplication via sampled hooks and champion segments.
///
/// Per incoming segment: its hook fingerprints vote for stored manifests in
/// the in-memory sparse index; the top-voted manifests ("champions") are
/// loaded from disk (one counted lookup each) and the segment is deduplicated
/// against their union. Chunks whose duplicates live only in non-champion
/// segments are missed — the deduplication-ratio loss visible in the paper's
/// Figure 8.
#[derive(Debug)]
pub struct SparseIndex {
    config: SparseConfig,
    /// In-memory sparse index: hook fingerprint → manifest ids.
    hooks: HashMap<Fingerprint, Vec<usize>>,
    /// "On-disk" manifest store.
    manifests: Vec<Manifest>,
    /// Manifest under construction for the current segment run.
    current: Manifest,
    disk_lookups: u64,
    /// Champion map for the segment being processed.
    champion_chunks: HashMap<Fingerprint, ContainerId>,
}

impl SparseIndex {
    /// Creates a sparse index.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate == 0` or `max_champions == 0`.
    pub fn new(config: SparseConfig) -> Self {
        assert!(config.sample_rate > 0, "sample_rate must be non-zero");
        assert!(config.max_champions > 0, "max_champions must be non-zero");
        SparseIndex {
            config,
            hooks: HashMap::new(),
            manifests: Vec::new(),
            current: Manifest::default(),
            disk_lookups: 0,
            champion_chunks: HashMap::new(),
        }
    }

    fn is_hook(&self, fp: &Fingerprint) -> bool {
        fp.prefix64().is_multiple_of(self.config.sample_rate)
    }

    fn choose_champions(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<usize> {
        let mut votes: HashMap<usize, usize> = HashMap::new();
        for (fp, _) in segment {
            if self.is_hook(fp) {
                if let Some(manifest_ids) = self.hooks.get(fp) {
                    for &m in manifest_ids {
                        *votes.entry(m).or_default() += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<(usize, usize)> = votes.into_iter().collect();
        // Highest vote count first; ties broken toward newer manifests,
        // which have fresher locality.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
        ranked.truncate(self.config.max_champions);
        ranked.into_iter().map(|(m, _)| m).collect()
    }
}

impl FingerprintIndex for SparseIndex {
    fn begin_version(&mut self, _version: VersionId) {}

    fn process_segment(&mut self, segment: &[(Fingerprint, u32)]) -> Vec<Option<ContainerId>> {
        // Seal the manifest of the previous segment.
        self.seal_current_manifest();

        let champions = self.choose_champions(segment);
        self.champion_chunks.clear();
        for m in champions {
            // Loading a champion manifest is one on-disk lookup.
            self.disk_lookups += 1;
            for (fp, cid) in &self.manifests[m].chunks {
                self.champion_chunks.insert(*fp, *cid);
            }
        }
        segment
            .iter()
            .map(|(fp, _)| self.champion_chunks.get(fp).copied())
            .collect()
    }

    fn record_chunk(&mut self, fingerprint: Fingerprint, _size: u32, container: ContainerId) {
        self.current.chunks.insert(fingerprint, container);
    }

    fn end_version(&mut self) {
        self.seal_current_manifest();
    }

    fn disk_lookups(&self) -> u64 {
        self.disk_lookups
    }

    fn index_table_bytes(&self) -> usize {
        // The in-memory sparse index: per hook entry, the 20-byte hook plus
        // 8 bytes per manifest reference.
        self.hooks
            .values()
            .map(|manifests| 20 + 8 * manifests.len())
            .sum()
    }

    fn name(&self) -> &'static str {
        "sparse"
    }
}

impl SparseIndex {
    fn seal_current_manifest(&mut self) {
        if self.current.chunks.is_empty() {
            return;
        }
        let manifest = std::mem::take(&mut self.current);
        let id = self.manifests.len();
        for fp in manifest.chunks.keys() {
            if fp.prefix64() % self.config.sample_rate == 0 {
                let entry = self.hooks.entry(*fp).or_default();
                entry.push(id);
                let cap = self.config.max_manifests_per_hook;
                if entry.len() > cap {
                    let drop_n = entry.len() - cap;
                    entry.drain(..drop_n);
                }
            }
        }
        self.manifests.push(manifest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(range: std::ops::Range<u64>) -> Vec<(Fingerprint, u32)> {
        range.map(|i| (Fingerprint::synthetic(i), 4096)).collect()
    }

    fn run_version(idx: &mut SparseIndex, v: u32, chunks: &[(Fingerprint, u32)]) -> usize {
        idx.begin_version(VersionId::new(v));
        let mut dups = 0;
        for s in chunks.chunks(128) {
            let d = idx.process_segment(s);
            for ((fp, sz), dup) in s.iter().zip(d) {
                match dup {
                    Some(c) => {
                        dups += 1;
                        idx.record_chunk(*fp, *sz, c);
                    }
                    None => idx.record_chunk(*fp, *sz, ContainerId::new(v)),
                }
            }
        }
        idx.end_version();
        dups
    }

    #[test]
    fn second_identical_version_mostly_deduplicated() {
        let mut idx = SparseIndex::new(SparseConfig::default());
        let chunks = seg(0..2000);
        assert_eq!(run_version(&mut idx, 1, &chunks), 0);
        let dups = run_version(&mut idx, 2, &chunks);
        assert!(dups >= 1800, "only {dups}/2000 deduplicated");
    }

    #[test]
    fn lookups_bounded_by_champions_per_segment() {
        let cfg = SparseConfig {
            max_champions: 2,
            ..SparseConfig::default()
        };
        let mut idx = SparseIndex::new(cfg);
        let chunks = seg(0..1024);
        run_version(&mut idx, 1, &chunks);
        let before = idx.disk_lookups();
        run_version(&mut idx, 2, &chunks);
        let per_segment = (idx.disk_lookups() - before) as usize / (1024 / 128);
        assert!(
            per_segment <= 2,
            "{per_segment} champions loaded per segment"
        );
    }

    #[test]
    fn memory_much_smaller_than_full_index() {
        let mut idx = SparseIndex::new(SparseConfig::default());
        let chunks = seg(0..10_000);
        run_version(&mut idx, 1, &chunks);
        // Full index would be 10_000 * 28 bytes; sparse should be ~1/64.
        assert!(
            idx.index_table_bytes() < 10_000 * 28 / 16,
            "sparse index too large: {}",
            idx.index_table_bytes()
        );
    }

    #[test]
    fn hook_entries_capped() {
        let cfg = SparseConfig {
            max_manifests_per_hook: 2,
            ..SparseConfig::default()
        };
        let mut idx = SparseIndex::new(cfg);
        let chunks = seg(0..256);
        for v in 1..=6u32 {
            run_version(&mut idx, v, &chunks);
        }
        assert!(idx.hooks.values().all(|m| m.len() <= 2));
    }

    #[test]
    fn disjoint_versions_share_nothing() {
        let mut idx = SparseIndex::new(SparseConfig::default());
        run_version(&mut idx, 1, &seg(0..500));
        let dups = run_version(&mut idx, 2, &seg(10_000..10_500));
        assert_eq!(dups, 0);
    }
}
