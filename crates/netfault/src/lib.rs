#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Deterministic network fault injection — the wire-level sibling of
//! `hidestore-failpoint`.
//!
//! The crash matrix of PR 2 works because every filesystem operation flows
//! through a `Vfs` shim the harness can fault at any numbered site. This
//! crate applies the same discipline to the network: every socket read and
//! write of the daemon and the client flows through the [`NetStream`] trait,
//! so a chaos harness can enumerate the wire operations of a workload with a
//! counting [`NetPlan`] and then replay it once per site with that site
//! armed to fail.
//!
//! * [`RealStream`] is the zero-cost production wrapper around a
//!   [`TcpStream`].
//! * [`FaultStream`] wraps a [`TcpStream`] with a shared [`NetPlan`]: the
//!   plan numbers every read/write globally (across all streams it wraps,
//!   so a retrying client's reconnects keep counting), and at the armed
//!   site injects one [`NetFault`].
//!
//! Unlike the filesystem shim's crash semantics — where everything after
//! the fault fails, because the simulated process is dead — a network fault
//! kills only the *stream* it fired on. The process survives, reconnects,
//! and the retry machinery gets to prove it can converge. The plan records
//! that the fault [`fired`](NetPlan::fired) so later connections run clean.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The stream abstraction both the daemon's connection loop and the
/// [`RemoteClient`](../hidestore_server/struct.RemoteClient.html) are
/// generic over. Implementors are byte streams with socket-style deadline
/// control.
pub trait NetStream: Read + Write + Send {
    /// Sets the read deadline (`None` disables it).
    ///
    /// # Errors
    ///
    /// The underlying socket's error, if any.
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()>;

    /// Sets the write deadline (`None` disables it).
    ///
    /// # Errors
    ///
    /// The underlying socket's error, if any.
    fn set_write_timeout(&mut self, dur: Option<Duration>) -> io::Result<()>;

    /// Disables (or re-enables) Nagle's algorithm.
    ///
    /// # Errors
    ///
    /// The underlying socket's error, if any.
    fn set_nodelay(&mut self, on: bool) -> io::Result<()>;
}

/// The zero-cost production [`NetStream`]: a plain [`TcpStream`].
#[derive(Debug)]
pub struct RealStream(TcpStream);

impl RealStream {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Connection failures (refused, unreachable, resolution).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(RealStream(TcpStream::connect(addr)?))
    }

    /// Wraps an already-connected socket.
    pub fn from_tcp(stream: TcpStream) -> Self {
        RealStream(stream)
    }

    /// Unwraps back to the socket.
    pub fn into_tcp(self) -> TcpStream {
        self.0
    }
}

impl Read for RealStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for RealStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.0.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl NetStream for RealStream {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.0.set_read_timeout(dur)
    }

    fn set_write_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.0.set_write_timeout(dur)
    }

    fn set_nodelay(&mut self, on: bool) -> io::Result<()> {
        self.0.set_nodelay(on)
    }
}

/// A [`NetStream`] chosen at runtime: production [`RealStream`] or
/// plan-wrapped [`FaultStream`]. Lets code that decides per-connection
/// whether to inject faults (a retrying client under a chaos harness) stay
/// a single monomorphized type.
#[derive(Debug)]
pub enum AnyStream {
    /// A plain socket.
    Real(RealStream),
    /// A plan-wrapped socket.
    Fault(FaultStream),
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Real(s) => s.read(buf),
            AnyStream::Fault(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Real(s) => s.write(data),
            AnyStream::Fault(s) => s.write(data),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Real(s) => s.flush(),
            AnyStream::Fault(s) => s.flush(),
        }
    }
}

impl NetStream for AnyStream {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Real(s) => s.set_read_timeout(dur),
            AnyStream::Fault(s) => s.set_read_timeout(dur),
        }
    }

    fn set_write_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Real(s) => s.set_write_timeout(dur),
            AnyStream::Fault(s) => s.set_write_timeout(dur),
        }
    }

    fn set_nodelay(&mut self, on: bool) -> io::Result<()> {
        match self {
            AnyStream::Real(s) => s.set_nodelay(on),
            AnyStream::Fault(s) => s.set_nodelay(on),
        }
    }
}

/// How an armed wire site fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The connection is cut: the operation fails with `ConnectionReset`
    /// and the stream is dead afterwards (the peer sees a mid-frame tear).
    Cut,
    /// A short read/write: roughly half the requested bytes transfer, then
    /// the stream dies — the peer holds a torn frame prefix.
    Short,
    /// The operation stalls for the given duration, then proceeds normally.
    /// The stream survives; with deadlines armed this exercises the
    /// timeout path without corrupting anything.
    Delay(Duration),
    /// The peer goes silent: the operation fails with `TimedOut` (as a
    /// kernel deadline would report) and the stream is dead afterwards.
    BlackHole,
}

/// Which direction a numbered wire operation moved bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpDir {
    /// A socket read.
    Read,
    /// A socket write.
    Write,
}

/// One numbered wire operation observed by a [`NetPlan`]. A counting run
/// collects these; the chaos harness replays the workload once per record
/// with that site armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetOpRecord {
    /// Zero-based site index (the value [`NetPlan::armed`] takes).
    pub index: u64,
    /// Direction of the operation.
    pub dir: OpDir,
    /// Bytes requested by the caller (not bytes actually moved).
    pub len: usize,
}

#[derive(Debug)]
struct PlanState {
    ops: u64,
    armed: Option<(u64, NetFault)>,
    fired: bool,
    trace: Vec<NetOpRecord>,
}

/// What a numbered operation must do, as decided by the shared plan.
enum Step {
    Proceed,
    DelayThen(Duration),
    Partial(usize),
    Fail(io::Error),
}

/// A shared, cloneable fault plan. Clones (and every [`FaultStream`]
/// wrapped from them) share one global operation sequence, so a workload
/// spanning several connections still counts a single site space.
#[derive(Clone)]
pub struct NetPlan {
    state: Arc<Mutex<PlanState>>,
}

impl fmt::Debug for NetPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.lock();
        f.debug_struct("NetPlan")
            .field("ops", &s.ops)
            .field("armed", &s.armed)
            .field("fired", &s.fired)
            .finish()
    }
}

impl NetPlan {
    /// A plan that never faults but numbers and records every wire
    /// operation — used to enumerate the sites of a workload.
    #[must_use]
    pub fn counting() -> Self {
        Self::with_plan(None)
    }

    /// A plan whose `site`-th wire operation (zero-based) suffers `fault`.
    #[must_use]
    pub fn armed(site: u64, fault: NetFault) -> Self {
        Self::with_plan(Some((site, fault)))
    }

    fn with_plan(armed: Option<(u64, NetFault)>) -> Self {
        NetPlan {
            state: Arc::new(Mutex::new(PlanState {
                ops: 0,
                armed,
                fired: false,
                trace: Vec::new(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PlanState> {
        // Plain data behind the lock; safe to re-enter after a panic
        // elsewhere.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of wire operations observed so far.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// Whether the armed fault has fired. Streams wrapped after this still
    /// run clean — only the stream the fault fired on is dead.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.lock().fired
    }

    /// The numbered operations observed so far (counting-run output).
    #[must_use]
    pub fn trace(&self) -> Vec<NetOpRecord> {
        self.lock().trace.clone()
    }

    /// Wraps a connected socket so its reads and writes are numbered (and
    /// possibly faulted) by this plan.
    #[must_use]
    pub fn wrap(&self, stream: TcpStream) -> FaultStream {
        FaultStream {
            inner: stream,
            plan: self.clone(),
            dead: false,
        }
    }

    fn step(&self, dir: OpDir, len: usize) -> Step {
        let mut s = self.lock();
        let index = s.ops;
        s.ops += 1;
        s.trace.push(NetOpRecord { index, dir, len });
        match s.armed {
            Some((site, fault)) if site == index && !s.fired => {
                s.fired = true;
                match fault {
                    NetFault::Cut => Step::Fail(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        format!("injected connection cut at wire op {site}"),
                    )),
                    NetFault::BlackHole => Step::Fail(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("injected black hole at wire op {site}"),
                    )),
                    NetFault::Short => Step::Partial((len / 2).max(1)),
                    NetFault::Delay(d) => Step::DelayThen(d),
                }
            }
            _ => Step::Proceed,
        }
    }
}

/// A [`TcpStream`] whose reads and writes are numbered by a shared
/// [`NetPlan`], with one injected [`NetFault`] at the armed site. Once a
/// `Cut`, `Short`, or `BlackHole` fault fires, this stream is dead: every
/// later operation fails without touching the socket (the peer observes a
/// torn connection once the stream drops).
#[derive(Debug)]
pub struct FaultStream {
    inner: TcpStream,
    plan: NetPlan,
    dead: bool,
}

impl FaultStream {
    fn dead_error() -> io::Error {
        io::Error::new(
            io::ErrorKind::ConnectionReset,
            "stream faulted at an earlier wire op",
        )
    }
}

impl Read for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        if self.dead {
            return Err(Self::dead_error());
        }
        match self.plan.step(OpDir::Read, buf.len()) {
            Step::Proceed => self.inner.read(buf),
            Step::DelayThen(d) => {
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            Step::Partial(k) => {
                self.dead = true;
                let k = k.min(buf.len());
                self.inner.read(&mut buf[..k])
            }
            Step::Fail(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }
}

impl Write for FaultStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if data.is_empty() {
            return self.inner.write(data);
        }
        if self.dead {
            return Err(Self::dead_error());
        }
        match self.plan.step(OpDir::Write, data.len()) {
            Step::Proceed => self.inner.write(data),
            Step::DelayThen(d) => {
                std::thread::sleep(d);
                self.inner.write(data)
            }
            Step::Partial(k) => {
                // Deliver a real prefix to the peer (a torn frame), then die.
                self.dead = true;
                let k = k.min(data.len());
                self.inner.write(&data[..k])
            }
            Step::Fail(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Not a numbered site: flush moves no new bytes.
        if self.dead {
            return Err(Self::dead_error());
        }
        self.inner.flush()
    }
}

impl NetStream for FaultStream {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn set_write_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    fn set_nodelay(&mut self, on: bool) -> io::Result<()> {
        self.inner.set_nodelay(on)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// A connected loopback socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn counting_numbers_ops_across_streams() {
        let (a, b) = pair();
        let plan = NetPlan::counting();
        let mut wa = plan.wrap(a);
        let mut wb = plan.wrap(b);
        wa.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        wb.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        assert!(plan.ops() >= 2, "one write plus at least one read");
        let trace = plan.trace();
        assert_eq!(trace[0].dir, OpDir::Write);
        assert_eq!(trace[0].len, 5);
        assert!(!plan.fired());
    }

    #[test]
    fn cut_fails_the_site_and_kills_the_stream() {
        let (a, _b) = pair();
        let plan = NetPlan::armed(1, NetFault::Cut);
        let mut wa = plan.wrap(a);
        wa.write_all(b"x").unwrap();
        let err = wa.write_all(b"y").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(plan.fired());
        // Dead afterwards, without consuming further sites.
        let ops = plan.ops();
        assert!(wa.write_all(b"z").is_err());
        assert_eq!(plan.ops(), ops, "dead stream ops are not numbered");
    }

    #[test]
    fn short_write_delivers_a_prefix() {
        let (a, mut b) = pair();
        let plan = NetPlan::armed(0, NetFault::Short);
        let mut wa = plan.wrap(a);
        // write_all sees the short count, retries, and hits the dead stream.
        let err = wa.write_all(b"abcdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        drop(wa);
        let mut got = Vec::new();
        b.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"abc", "peer holds exactly the torn prefix");
    }

    #[test]
    fn black_hole_reports_timeout() {
        let (a, _b) = pair();
        let plan = NetPlan::armed(0, NetFault::BlackHole);
        let mut wa = plan.wrap(a);
        let err = wa.write_all(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(wa.write_all(b"y").is_err());
    }

    #[test]
    fn delay_proceeds_and_stream_survives() {
        let (a, mut b) = pair();
        let plan = NetPlan::armed(0, NetFault::Delay(Duration::from_millis(5)));
        let mut wa = plan.wrap(a);
        wa.write_all(b"slow").unwrap();
        wa.write_all(b"fast").unwrap();
        let mut buf = [0u8; 8];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"slowfast");
        assert!(plan.fired());
    }

    #[test]
    fn fired_plan_leaves_later_streams_clean() {
        let (a, _b) = pair();
        let plan = NetPlan::armed(0, NetFault::Cut);
        let mut wa = plan.wrap(a);
        assert!(wa.write_all(b"x").is_err());
        // A reconnect wrapped from the same plan runs clean.
        let (c, mut d) = pair();
        let mut wc = plan.wrap(c);
        wc.write_all(b"retry").unwrap();
        let mut buf = [0u8; 5];
        d.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"retry");
    }

    #[test]
    fn real_stream_round_trips() {
        let (a, b) = pair();
        let mut ra = RealStream::from_tcp(a);
        let mut rb = RealStream::from_tcp(b);
        ra.set_nodelay(true).unwrap();
        ra.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        ra.set_write_timeout(None).unwrap();
        ra.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        rb.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }
}
