//! The framing layer: every byte on an `hds-served` connection travels
//! inside a CRC-guarded, length-prefixed frame.
//!
//! ```text
//! +--------------+---------+----------------+------------------+-------------+
//! | magic "HD"   | type    | payload length | payload          | CRC32       |
//! | 2 B          | 1 B     | u32 LE         | length bytes     | u32 LE      |
//! +--------------+---------+----------------+------------------+-------------+
//! ```
//!
//! The CRC covers magic, type, length, and payload, so a torn or
//! bit-flipped frame is detected before its payload is interpreted. The
//! payload length is bounded by [`Limits::max_frame`]; a peer announcing a
//! larger frame is rejected without allocating.

use std::fmt;
use std::io::{self, Read, Write};

use hidestore_hash::crc32;

use crate::wire::DecodeError;

/// The two magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 2] = *b"HD";

/// Bytes of framing overhead around a payload (magic + type + length + CRC).
pub const FRAME_OVERHEAD: usize = 2 + 1 + 4 + 4;

/// Frame kinds. The `type` byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Version negotiation, first frame in each direction.
    Hello,
    /// A client request ([`crate::Request`]).
    Request,
    /// A server response ([`crate::Response`]).
    Response,
    /// A slice of a byte stream (backup upload or restore download).
    Data,
    /// End of a [`FrameKind::Data`] stream.
    End,
    /// A typed error ([`crate::WireError`]); terminates the request.
    Error,
}

impl FrameKind {
    /// Wire value of this kind.
    pub fn as_u8(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::Request => 2,
            FrameKind::Response => 3,
            FrameKind::Data => 4,
            FrameKind::End => 5,
            FrameKind::Error => 6,
        }
    }

    /// Parses a wire value.
    pub fn from_u8(v: u8) -> Result<Self, DecodeError> {
        Ok(match v {
            1 => FrameKind::Hello,
            2 => FrameKind::Request,
            3 => FrameKind::Response,
            4 => FrameKind::Data,
            5 => FrameKind::End,
            6 => FrameKind::Error,
            tag => return Err(DecodeError::BadTag { what: "frame", tag }),
        })
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FrameKind::Hello => "HELLO",
            FrameKind::Request => "REQUEST",
            FrameKind::Response => "RESPONSE",
            FrameKind::Data => "DATA",
            FrameKind::End => "END",
            FrameKind::Error => "ERROR",
        };
        f.write_str(name)
    }
}

/// Size limits a peer enforces while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum payload bytes in a single frame. Larger announcements are
    /// rejected before any allocation.
    pub max_frame: u32,
    /// Maximum total bytes in one streamed request body (the sum of DATA
    /// payloads between a REQUEST and its END).
    pub max_stream: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_frame: 8 << 20,
            max_stream: 1 << 30,
        }
    }
}

/// A decoded frame: its kind and raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the payload contains.
    pub kind: FrameKind,
    /// The raw payload bytes (message-layer encoding, or stream data).
    pub payload: Vec<u8>,
}

/// Errors reading or writing frames.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes timeouts and peer
    /// disconnects, surfaced as `io::ErrorKind::UnexpectedEof` /
    /// `WouldBlock` / `TimedOut`).
    Io(io::Error),
    /// The bytes received do not form a valid frame.
    Decode(DecodeError),
    /// The frame arrived intact but its CRC32 did not match: the frame was
    /// corrupted (or torn) in transit.
    CrcMismatch {
        /// CRC announced by the sender.
        announced: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
}

impl FrameError {
    /// True when the error is a transport timeout (the peer was silent past
    /// the configured read/write deadline).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Decode(e) => write!(f, "malformed frame: {e}"),
            FrameError::CrcMismatch {
                announced,
                computed,
            } => write!(
                f,
                "frame CRC mismatch: announced {announced:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Decode(e) => Some(e),
            FrameError::CrcMismatch { .. } => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<DecodeError> for FrameError {
    fn from(e: DecodeError) -> Self {
        FrameError::Decode(e)
    }
}

/// Encodes a frame into a standalone byte vector (header + payload + CRC).
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(kind.as_u8());
    // Saturate rather than truncate: a wrapped-around length would make the
    // receiver misparse the stream, while a saturated one fails the
    // receiver's max_frame check cleanly.
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Writes one frame to `w` and flushes it.
///
/// # Errors
///
/// Fails on transport errors.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), FrameError> {
    let bytes = encode_frame(kind, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads exactly one frame from `r`, enforcing `limits.max_frame` and
/// verifying the CRC before the payload is surfaced.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure (a peer that disconnects
/// mid-frame surfaces as `UnexpectedEof` — a *torn frame*),
/// [`FrameError::Decode`] on bad magic / unknown type / oversized length,
/// and [`FrameError::CrcMismatch`] on corruption.
pub fn read_frame(r: &mut impl Read, limits: &Limits) -> Result<Frame, FrameError> {
    let mut header = [0u8; 7];
    r.read_exact(&mut header)?;
    if header[..2] != FRAME_MAGIC {
        return Err(DecodeError::BadMagic { what: "frame" }.into());
    }
    let kind_byte = header[2];
    let len = u32::from_le_bytes([header[3], header[4], header[5], header[6]]);
    if len > limits.max_frame {
        return Err(DecodeError::TooLong {
            what: "frame payload",
            announced: len as u64,
            max: limits.max_frame as u64,
        }
        .into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let announced = u32::from_le_bytes(crc_bytes);
    let mut covered = Vec::with_capacity(7 + payload.len());
    covered.extend_from_slice(&header);
    covered.extend_from_slice(&payload);
    let computed = crc32(&covered);
    if announced != computed {
        return Err(FrameError::CrcMismatch {
            announced,
            computed,
        });
    }
    // The type byte is validated only after the CRC: a corrupt frame is
    // reported as corruption, not as a mysterious unknown type.
    let kind = FrameKind::from_u8(kind_byte)?;
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(kind: FrameKind, payload: &[u8]) -> Frame {
        let bytes = encode_frame(kind, payload);
        read_frame(&mut &bytes[..], &Limits::default()).expect("round trip")
    }

    #[test]
    fn frames_round_trip() {
        for kind in [
            FrameKind::Hello,
            FrameKind::Request,
            FrameKind::Response,
            FrameKind::Data,
            FrameKind::End,
            FrameKind::Error,
        ] {
            let f = round_trip(kind, b"payload bytes");
            assert_eq!(f.kind, kind);
            assert_eq!(f.payload, b"payload bytes");
        }
        assert_eq!(round_trip(FrameKind::End, b"").payload, b"");
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let limits = Limits {
            max_frame: 16,
            ..Limits::default()
        };
        let bytes = encode_frame(FrameKind::Data, &[0u8; 17]);
        match read_frame(&mut &bytes[..], &limits) {
            Err(FrameError::Decode(DecodeError::TooLong { .. })) => {}
            other => panic!("expected TooLong, got {other:?}"),
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = encode_frame(FrameKind::Request, b"abcdef");
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            let result = read_frame(&mut &corrupt[..], &Limits::default());
            assert!(
                result.is_err(),
                "flipping byte {i} must not yield a valid frame"
            );
        }
    }

    #[test]
    fn every_truncation_is_a_torn_frame() {
        let bytes = encode_frame(FrameKind::Data, b"stream chunk");
        for cut in 0..bytes.len() {
            let result = read_frame(&mut &bytes[..cut], &Limits::default());
            assert!(
                matches!(result, Err(FrameError::Io(ref e)) if e.kind() == io::ErrorKind::UnexpectedEof),
                "truncating to {cut} bytes must surface a torn frame, got {result:?}"
            );
        }
    }

    #[test]
    fn timeout_classified() {
        let err = FrameError::Io(io::Error::new(io::ErrorKind::WouldBlock, "slow peer"));
        assert!(err.is_timeout());
        let err = FrameError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "gone"));
        assert!(!err.is_timeout());
    }
}
