//! Minimal JSON emission for the machine-readable response types.
//!
//! The workspace is offline (no serde); this module hand-writes exactly the
//! JSON the CLI's `--json` flags and remote tooling need. The same types
//! travel on the wire, so the CLI and the protocol can never drift apart:
//! `hidestore list --json` against a local repository and against a remote
//! daemon serialize the identical [`ListResponse`].
//!
//! Output is deterministic: object keys appear in a fixed order, floats are
//! formatted with four decimal places, and no whitespace is emitted. A test
//! in the facade crate pins the schema byte-for-byte.

use std::fmt::Write as _;

use crate::message::{ListResponse, StatsResponse, TenantListResponse, TenantStatsResponse};

/// Escapes `s` into `out` as a JSON string literal (with quotes).
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float with the fixed precision used across all JSON output.
fn f64_into(out: &mut String, v: f64) {
    let _ = write!(out, "{v:.4}");
}

impl ListResponse {
    /// Serializes as one line of JSON with a fixed key order:
    /// `{"versions":[{"version":..,"bytes":..,"chunks":..},..],
    /// "archival_containers":..,"active_containers":..,"hot_chunks":..}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.versions.len() * 48);
        out.push_str("{\"versions\":[");
        for (i, v) in self.versions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"version\":{},\"bytes\":{},\"chunks\":{}}}",
                v.version, v.bytes, v.chunks
            );
        }
        let _ = write!(
            out,
            "],\"archival_containers\":{},\"active_containers\":{},\"hot_chunks\":{}}}",
            self.archival_containers, self.active_containers, self.hot_chunks
        );
        out
    }
}

impl StatsResponse {
    /// Serializes as one line of JSON with a fixed key order:
    /// `{"versions":[{"version":..,"bytes":..,"chunks":..,"cfl":..,
    /// "mean_kib_per_container":..},..],"pool_containers":..,
    /// "pool_chunks":..,"pool_live_bytes":..,
    /// "out_of_line_rewritten_bytes":..}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.versions.len() * 80);
        out.push_str("{\"versions\":[");
        for (i, v) in self.versions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"version\":{},\"bytes\":{},\"chunks\":{},\"cfl\":",
                v.version, v.bytes, v.chunks
            );
            f64_into(&mut out, v.cfl);
            out.push_str(",\"mean_kib_per_container\":");
            f64_into(&mut out, v.mean_kib_per_container);
            out.push('}');
        }
        let _ = write!(
            out,
            "],\"pool_containers\":{},\"pool_chunks\":{},\"pool_live_bytes\":{},\
             \"out_of_line_rewritten_bytes\":{}}}",
            self.pool_containers,
            self.pool_chunks,
            self.pool_live_bytes,
            self.out_of_line_rewritten_bytes
        );
        out
    }
}

impl TenantListResponse {
    /// Serializes as one line of JSON with a fixed key order:
    /// `{"tenants":[{"tenant":..,"versions":..,"logical_bytes":..,
    /// "live":..},..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(16 + self.tenants.len() * 64);
        out.push_str("{\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            escape_into(&mut out, &t.tenant);
            let _ = write!(
                out,
                ",\"versions\":{},\"logical_bytes\":{},\"live\":{}}}",
                t.versions, t.logical_bytes, t.live
            );
        }
        out.push_str("]}");
        out
    }
}

impl TenantStatsResponse {
    /// Serializes as one line of JSON with a fixed key order:
    /// `{"tenants":[{"tenant":..,"requests_ok":..,"requests_failed":..,
    /// "bytes_in":..,"bytes_out":..,"rolled_back":..,
    /// "quota_refused":..},..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(16 + self.tenants.len() * 128);
        out.push_str("{\"tenants\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tenant\":");
            escape_into(&mut out, &t.tenant);
            let _ = write!(
                out,
                ",\"requests_ok\":{},\"requests_failed\":{},\"bytes_in\":{},\
                 \"bytes_out\":{},\"rolled_back\":{},\"quota_refused\":{}}}",
                t.requests_ok,
                t.requests_failed,
                t.bytes_in,
                t.bytes_out,
                t.rolled_back,
                t.quota_refused
            );
        }
        out.push_str("]}");
        out
    }
}

/// Serializes an arbitrary string as a standalone JSON string literal —
/// used by callers composing ad-hoc JSON around the response types.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{VersionEntry, VersionStatsEntry};

    #[test]
    fn list_json_shape() {
        let list = ListResponse {
            versions: vec![
                VersionEntry {
                    version: 1,
                    bytes: 100,
                    chunks: 3,
                },
                VersionEntry {
                    version: 2,
                    bytes: 200,
                    chunks: 5,
                },
            ],
            archival_containers: 4,
            active_containers: 1,
            hot_chunks: 9,
        };
        assert_eq!(
            list.to_json(),
            "{\"versions\":[{\"version\":1,\"bytes\":100,\"chunks\":3},\
             {\"version\":2,\"bytes\":200,\"chunks\":5}],\
             \"archival_containers\":4,\"active_containers\":1,\"hot_chunks\":9}"
        );
    }

    #[test]
    fn stats_json_shape() {
        let stats = StatsResponse {
            versions: vec![VersionStatsEntry {
                version: 1,
                bytes: 100,
                chunks: 3,
                cfl: 0.5,
                mean_kib_per_container: 12.25,
            }],
            pool_containers: 2,
            pool_chunks: 7,
            pool_live_bytes: 4096,
            out_of_line_rewritten_bytes: 512,
        };
        assert_eq!(
            stats.to_json(),
            "{\"versions\":[{\"version\":1,\"bytes\":100,\"chunks\":3,\
             \"cfl\":0.5000,\"mean_kib_per_container\":12.2500}],\
             \"pool_containers\":2,\"pool_chunks\":7,\"pool_live_bytes\":4096,\
             \"out_of_line_rewritten_bytes\":512}"
        );
    }

    #[test]
    fn tenant_json_shapes() {
        use crate::message::{TenantListEntry, TenantStatsEntry};
        let list = TenantListResponse {
            tenants: vec![
                TenantListEntry {
                    tenant: "alice".into(),
                    versions: 3,
                    logical_bytes: 4096,
                    live: true,
                },
                TenantListEntry {
                    tenant: "bob".into(),
                    versions: 0,
                    logical_bytes: 0,
                    live: false,
                },
            ],
        };
        assert_eq!(
            list.to_json(),
            "{\"tenants\":[{\"tenant\":\"alice\",\"versions\":3,\
             \"logical_bytes\":4096,\"live\":true},\
             {\"tenant\":\"bob\",\"versions\":0,\"logical_bytes\":0,\"live\":false}]}"
        );
        let stats = TenantStatsResponse {
            tenants: vec![TenantStatsEntry {
                tenant: "alice".into(),
                requests_ok: 5,
                requests_failed: 1,
                bytes_in: 100,
                bytes_out: 200,
                rolled_back: 0,
                quota_refused: 2,
            }],
        };
        assert_eq!(
            stats.to_json(),
            "{\"tenants\":[{\"tenant\":\"alice\",\"requests_ok\":5,\
             \"requests_failed\":1,\"bytes_in\":100,\"bytes_out\":200,\
             \"rolled_back\":0,\"quota_refused\":2}]}"
        );
        assert_eq!(TenantListResponse::default().to_json(), "{\"tenants\":[]}");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
