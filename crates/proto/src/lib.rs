#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Wire protocol for `hds-served`, the HiDeStore network daemon.
//!
//! The protocol is a versioned, length-prefixed binary framing over any
//! reliable byte stream (in practice TCP):
//!
//! * [`frame`] — the CRC32-guarded frame layer: `magic | type | len |
//!   payload | crc32`, with [`Limits`] bounding frame and stream sizes so a
//!   hostile or corrupt peer cannot force unbounded allocation.
//! * [`message`] — the typed payloads: [`Hello`] version negotiation,
//!   [`Request`] / [`Response`] enums covering every CLI verb
//!   (backup/restore/list/stats/prune/verify/ping/shutdown), and
//!   [`WireError`] with stable [`ErrorCode`]s.
//! * [`json`] — deterministic JSON serialization of [`ListResponse`] and
//!   [`StatsResponse`], shared by the CLI's `--json` flags so local and
//!   remote output cannot drift.
//!
//! # Connection lifecycle
//!
//! ```text
//! client                                server
//!   | -- HELLO {min,max} ------------------> |
//!   | <------------------ HELLO {v,v} ----- |   (or ERROR unsupported)
//!   | -- REQUEST Backup -------------------> |
//!   | -- DATA* ----------------------------> |
//!   | -- END ------------------------------> |
//!   | <------------ RESPONSE BackupDone ---- |   (or ERROR)
//!   | -- REQUEST Restore{v} ---------------> |
//!   | <-------- RESPONSE RestoreStarted ---- |
//!   | <---------------------------- DATA* -- |
//!   | <------------------------------ END -- |
//!   | <----------- RESPONSE RestoreDone ---- |   (mid-stream failure: ERROR)
//! ```
//!
//! Decoding is total: any byte sequence either decodes or yields a typed
//! [`DecodeError`] / [`FrameError`] — never a panic. Torn frames (a peer
//! vanishing mid-frame) surface as `UnexpectedEof` transport errors, and a
//! single flipped bit anywhere in a frame fails the CRC.

pub mod frame;
pub mod json;
pub mod message;
pub mod tenant;
pub mod wire;

pub use frame::{
    encode_frame, read_frame, write_frame, Frame, FrameError, FrameKind, Limits, FRAME_MAGIC,
    FRAME_OVERHEAD,
};
pub use message::{
    BackupSummary, ErrorCode, Hello, ListResponse, PruneSummary, Request, Response, RestoreSummary,
    SessionToken, StatsResponse, TenantListEntry, TenantListResponse, TenantStatsEntry,
    TenantStatsResponse, VerifySummary, VersionEntry, VersionStatsEntry, WireError, HELLO_MAGIC,
    MIN_PROTO_VERSION, PROTO_VERSION, TENANT_ENVELOPE_TAG,
};
pub use tenant::{TenantId, TenantIdError, DEFAULT_TENANT, MAX_TENANT_ID_LEN};
pub use wire::DecodeError;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::BackupDone(BackupSummary {
                version: 7,
                logical_bytes: 123_456,
                stored_bytes: 789,
                chunks: 42,
                unique_chunks: 17,
                cold_chunks: 5,
            }),
            Response::RestoreStarted {
                total_bytes: 1 << 33,
            },
            Response::RestoreDone(RestoreSummary {
                bytes_restored: 99,
                container_reads: 3,
                cache_hits: 2,
                cache_misses: 1,
            }),
            Response::ListOk(ListResponse {
                versions: vec![
                    VersionEntry {
                        version: 1,
                        bytes: 10,
                        chunks: 1,
                    },
                    VersionEntry {
                        version: 2,
                        bytes: 20,
                        chunks: 2,
                    },
                ],
                archival_containers: 3,
                active_containers: 1,
                hot_chunks: 8,
            }),
            Response::StatsOk(StatsResponse {
                versions: vec![VersionStatsEntry {
                    version: 1,
                    bytes: 10,
                    chunks: 1,
                    cfl: 0.75,
                    mean_kib_per_container: 3.5,
                }],
                pool_containers: 1,
                pool_chunks: 2,
                pool_live_bytes: 4096,
                out_of_line_rewritten_bytes: 99,
            }),
            Response::PruneOk(PruneSummary {
                versions_removed: 2,
                containers_dropped: 4,
                bytes_reclaimed: 1 << 20,
            }),
            Response::VerifyOk(VerifySummary {
                containers_checked: 10,
                chunks_checked: 100,
                recipes_checked: 5,
                corrupt_chunks: vec![(3, "deadbeef".into())],
            }),
            Response::ShutdownOk,
            Response::BackupAccepted { offset: 777 },
            Response::TenantListOk(TenantListResponse {
                tenants: vec![
                    TenantListEntry {
                        tenant: "alice".into(),
                        versions: 4,
                        logical_bytes: 1 << 16,
                        live: true,
                    },
                    TenantListEntry {
                        tenant: "bob".into(),
                        versions: 0,
                        logical_bytes: 0,
                        live: false,
                    },
                ],
            }),
            Response::TenantStatsOk(TenantStatsResponse {
                tenants: vec![TenantStatsEntry {
                    tenant: "alice".into(),
                    requests_ok: 12,
                    requests_failed: 3,
                    bytes_in: 1 << 20,
                    bytes_out: 1 << 21,
                    rolled_back: 1,
                    quota_refused: 2,
                }],
            }),
        ]
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Backup,
            Request::Restore { version: 3 },
            Request::List,
            Request::Stats,
            Request::Prune { keep_last: 2 },
            Request::Verify,
            Request::Shutdown,
            Request::BackupResume {
                token: [7; 16],
                total_len: 1 << 30,
            },
            Request::RestoreResume {
                version: 4,
                offset: 4096,
            },
            Request::TenantList,
            Request::TenantStats,
        ]
    }

    #[test]
    fn hello_negotiation() {
        let a = Hello {
            min_version: 1,
            max_version: 3,
        };
        let b = Hello {
            min_version: 2,
            max_version: 5,
        };
        assert_eq!(a.negotiate(&b), Some(3));
        assert_eq!(b.negotiate(&a), Some(3));
        let c = Hello {
            min_version: 4,
            max_version: 5,
        };
        assert_eq!(a.negotiate(&c), None, "disjoint ranges must not connect");
        assert_eq!(
            Hello::current().negotiate(&Hello::current()),
            Some(PROTO_VERSION)
        );
    }

    #[test]
    fn hello_round_trip_and_bad_magic() {
        let h = Hello::current();
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
        let mut bad = h.encode();
        bad[0] ^= 0xFF;
        assert_eq!(
            Hello::decode(&bad),
            Err(DecodeError::BadMagic { what: "hello" })
        );
    }

    #[test]
    fn requests_round_trip() {
        for req in sample_requests() {
            let encoded = req.encode();
            assert_eq!(Request::decode(&encoded).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in sample_responses() {
            let encoded = resp.encode();
            assert_eq!(Response::decode(&encoded).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn wire_errors_round_trip() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::Unsupported,
            ErrorCode::TooLarge,
            ErrorCode::Timeout,
            ErrorCode::NotFound,
            ErrorCode::Conflict,
            ErrorCode::Internal,
            ErrorCode::ShuttingDown,
            ErrorCode::Busy,
            ErrorCode::QuotaExceeded,
        ] {
            let err = WireError::new(code, format!("context for {code}"));
            assert_eq!(WireError::decode(&err.encode()).unwrap(), err);
        }
        // The retry hint survives a round trip, and a v1 payload (no
        // trailing hint) still decodes with hint 0.
        let busy = WireError::busy(250, "queue full");
        assert_eq!(WireError::decode(&busy.encode()).unwrap(), busy);
        let mut v1 = busy.encode();
        v1.truncate(v1.len() - 4);
        let decoded = WireError::decode(&v1).unwrap();
        assert_eq!(decoded.retry_after_ms, 0);
        assert_eq!(decoded.code, ErrorCode::Busy);
        assert!(
            ErrorCode::Busy.is_retryable() && ErrorCode::ShuttingDown.is_retryable(),
            "load-shedding and shutdown refusals must invite a retry"
        );
        assert!(!ErrorCode::Malformed.is_retryable());
        assert!(
            !ErrorCode::QuotaExceeded.is_retryable(),
            "a quota refusal repeats identically — retrying it is pure waste"
        );
    }

    #[test]
    fn tenant_envelope_round_trips() {
        let tenant = TenantId::new("alice").unwrap();
        for req in sample_requests() {
            let enveloped = req.encode_with_tenant(&tenant);
            let (decoded_tenant, decoded) = Request::decode_enveloped(&enveloped).unwrap();
            assert_eq!(decoded_tenant.as_ref(), Some(&tenant), "{req:?}");
            assert_eq!(decoded, req, "{req:?}");
            // A bare payload decodes with no tenant (the server maps it to
            // the default tenant) — exactly what v1/v2 clients send.
            let (none, bare) = Request::decode_enveloped(&req.encode()).unwrap();
            assert_eq!(none, None, "{req:?}");
            assert_eq!(bare, req, "{req:?}");
        }
    }

    #[test]
    fn hostile_tenant_ids_rejected_at_decode() {
        // Hand-build envelopes naming ids TenantId::new would refuse; the
        // decoder must reject them with the typed error before dispatch.
        for bad in ["../escape", "a/b", "a\\b", "..", "", "UPPER", "-rf", ".git"] {
            let mut payload = vec![TENANT_ENVELOPE_TAG];
            payload.extend_from_slice(&(bad.len() as u32).to_le_bytes());
            payload.extend_from_slice(bad.as_bytes());
            payload.extend_from_slice(&Request::Ping.encode());
            assert!(
                matches!(
                    Request::decode_enveloped(&payload),
                    Err(DecodeError::InvalidTenant(_))
                ),
                "{bad:?} must be rejected"
            );
        }
        // An envelope with a valid tenant but garbage inner request still
        // fails typed.
        let mut payload = vec![TENANT_ENVELOPE_TAG];
        payload.extend_from_slice(&5u32.to_le_bytes());
        payload.extend_from_slice(b"alice");
        payload.push(0xEE);
        assert!(matches!(
            Request::decode_enveloped(&payload),
            Err(DecodeError::BadTag { .. })
        ));
        // A truncated envelope (torn mid-tenant-id) is a typed EOF.
        let enveloped = Request::List.encode_with_tenant(&TenantId::new("alice").unwrap());
        assert!(matches!(
            Request::decode_enveloped(&enveloped[..3]),
            Err(DecodeError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected_at_message_layer() {
        let mut encoded = Request::Ping.encode();
        encoded.push(0);
        assert_eq!(
            Request::decode(&encoded),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
    }

    /// Fuzz-ish corrupted-frame corpus: every sample message is framed,
    /// then attacked with random byte flips, truncations, insertions, and
    /// splices. Decoding must always return a typed error or — in the
    /// astronomically unlikely case a mutation preserves the CRC — a valid
    /// message; it must never panic or misbehave.
    #[test]
    fn corrupted_frame_corpus() {
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let tenant = TenantId::new("fuzz-tenant").unwrap();
        for req in sample_requests() {
            frames.push(encode_frame(FrameKind::Request, &req.encode()));
            frames.push(encode_frame(
                FrameKind::Request,
                &req.encode_with_tenant(&tenant),
            ));
        }
        for resp in sample_responses() {
            frames.push(encode_frame(FrameKind::Response, &resp.encode()));
        }
        frames.push(encode_frame(FrameKind::Hello, &Hello::current().encode()));
        frames.push(encode_frame(FrameKind::Data, &[0xA5; 300]));
        frames.push(encode_frame(FrameKind::End, &[]));
        frames.push(encode_frame(
            FrameKind::Error,
            &WireError::new(ErrorCode::Internal, "boom").encode(),
        ));

        let limits = Limits::default();
        let mut rng = StdRng::seed_from_u64(0x1DE5_70FE);
        let mut decoded_ok = 0u32;
        let mut rejected = 0u32;
        for frame in &frames {
            for _ in 0..200 {
                let mut mutated = frame.clone();
                match rng.gen_range(0usize..4) {
                    // Byte flip.
                    0 => {
                        let at = rng.gen_range(0usize..mutated.len());
                        mutated[at] ^= rng.gen_range(1u32..256) as u8;
                    }
                    // Truncation (torn frame).
                    1 => {
                        let keep = rng.gen_range(0usize..mutated.len());
                        mutated.truncate(keep);
                    }
                    // Insertion.
                    2 => {
                        let at = rng.gen_range(0usize..mutated.len() + 1);
                        mutated.insert(at, rng.gen_range(0u32..256) as u8);
                    }
                    // Splice: overwrite a window with random bytes.
                    _ => {
                        let at = rng.gen_range(0usize..mutated.len());
                        let len = rng.gen_range(1usize..16).min(mutated.len() - at);
                        for b in &mut mutated[at..at + len] {
                            *b = rng.gen_range(0u32..256) as u8;
                        }
                    }
                }
                match read_frame(&mut &mutated[..], &limits) {
                    Ok(frame) => {
                        // Mutation happened to produce a CRC-valid frame
                        // (e.g. flipped then spliced back). The payload must
                        // still decode or reject without panicking.
                        decoded_ok += 1;
                        match frame.kind {
                            FrameKind::Request => {
                                // The enveloped decoder is what the server
                                // actually runs; it must be total too.
                                let _ = Request::decode_enveloped(&frame.payload);
                            }
                            FrameKind::Response => {
                                let _ = Response::decode(&frame.payload);
                            }
                            FrameKind::Hello => {
                                let _ = Hello::decode(&frame.payload);
                            }
                            FrameKind::Error => {
                                let _ = WireError::decode(&frame.payload);
                            }
                            FrameKind::Data | FrameKind::End => {}
                        }
                    }
                    Err(_) => rejected += 1,
                }
            }
        }
        assert!(
            rejected > decoded_ok,
            "the corpus must overwhelmingly reject corruption \
             ({rejected} rejected, {decoded_ok} survived)"
        );
    }

    /// Multiple frames on one stream decode in sequence — the reader never
    /// consumes bytes beyond its own frame.
    #[test]
    fn frames_are_self_delimiting() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(FrameKind::Request, &Request::List.encode()));
        stream.extend_from_slice(&encode_frame(FrameKind::Data, b"abc"));
        stream.extend_from_slice(&encode_frame(FrameKind::End, &[]));
        let mut cursor = &stream[..];
        let limits = Limits::default();
        assert_eq!(
            read_frame(&mut cursor, &limits).unwrap().kind,
            FrameKind::Request
        );
        let data = read_frame(&mut cursor, &limits).unwrap();
        assert_eq!(data.payload, b"abc");
        assert_eq!(
            read_frame(&mut cursor, &limits).unwrap().kind,
            FrameKind::End
        );
        assert!(cursor.is_empty());
    }
}
