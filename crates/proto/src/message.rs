//! Message layer: the typed payloads carried inside frames.
//!
//! [`Hello`] rides in HELLO frames, [`Request`] in REQUEST frames,
//! [`Response`] in RESPONSE frames, and [`WireError`] in ERROR frames.
//! Every type encodes with [`encode`](Request::encode) and decodes with a
//! typed, panic-free [`decode`](Request::decode) that accounts for every
//! byte (trailing garbage is an error).

use std::fmt;

use crate::tenant::TenantId;
use crate::wire::{ByteReader, ByteWriter, DecodeError};

/// Newest protocol version this build speaks. Version 2 adds the
/// resumable-session messages ([`Request::BackupResume`],
/// [`Request::RestoreResume`], [`Response::BackupAccepted`]) and the
/// retryable [`ErrorCode::Busy`] code. Version 3 adds the tenant
/// envelope (every request may name the tenant it targets; envelope-less
/// requests run as the default tenant), the tenant admin requests
/// ([`Request::TenantList`], [`Request::TenantStats`]) and the
/// non-retryable [`ErrorCode::QuotaExceeded`] code.
pub const PROTO_VERSION: u16 = 3;

/// Oldest protocol version this build still accepts.
pub const MIN_PROTO_VERSION: u16 = 1;

/// A client-generated idempotency token identifying one backup session.
/// The server dedupes on it: a retried `BackupResume` whose token already
/// committed is answered from the recorded summary instead of committing a
/// second version.
pub type SessionToken = [u8; 16];

/// Magic prefix inside HELLO payloads, distinguishing an `hds-served`
/// endpoint from an arbitrary TCP service.
pub const HELLO_MAGIC: [u8; 4] = *b"HDSP";

/// Version negotiation offer: the contiguous range of protocol versions the
/// sender speaks. Each side sends one; the connection proceeds at
/// [`Hello::negotiate`]'s result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Oldest version the sender accepts.
    pub min_version: u16,
    /// Newest version the sender speaks.
    pub max_version: u16,
}

impl Hello {
    /// The offer for this build.
    pub fn current() -> Self {
        Hello {
            min_version: MIN_PROTO_VERSION,
            max_version: PROTO_VERSION,
        }
    }

    /// Picks the newest version both offers share, or `None` when the
    /// ranges do not overlap (the connection must be refused).
    pub fn negotiate(&self, other: &Hello) -> Option<u16> {
        let low = self.min_version.max(other.min_version);
        let high = self.max_version.min(other.max_version);
        (low <= high).then_some(high)
    }

    /// Encodes this offer as a HELLO frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(&HELLO_MAGIC);
        w.u16(self.min_version);
        w.u16(self.max_version);
        w.into_bytes()
    }

    /// Decodes a HELLO frame payload.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] on bad magic, truncation, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(payload);
        let mut magic = [0u8; 4];
        for byte in &mut magic {
            *byte = r.u8()?;
        }
        if magic != HELLO_MAGIC {
            return Err(DecodeError::BadMagic { what: "hello" });
        }
        let min_version = r.u16()?;
        let max_version = r.u16()?;
        r.finish()?;
        Ok(Hello {
            min_version,
            max_version,
        })
    }
}

/// A client request. `Backup` is followed by a DATA stream terminated by
/// END; every other request is self-contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the server answers [`Response::Pong`].
    Ping,
    /// Back up the DATA stream that follows as the next version.
    Backup,
    /// Restore a version; the server streams DATA frames then
    /// [`Response::RestoreDone`].
    Restore {
        /// The version to restore (1-based).
        version: u32,
    },
    /// List retained versions.
    List,
    /// Per-version fragmentation statistics.
    Stats,
    /// Expire all but the newest `keep_last` versions.
    Prune {
        /// How many newest versions to retain.
        keep_last: u32,
    },
    /// Integrity scrub of every container and recipe.
    Verify,
    /// Ask the daemon to shut down gracefully after in-flight requests
    /// drain.
    Shutdown,
    /// Protocol v2: begin (or resume) an idempotent backup session. The
    /// server answers [`Response::BackupAccepted`] with the byte offset it
    /// already buffered for this token (0 for a fresh session), then the
    /// client streams DATA frames carrying `data[offset..]` and END. A
    /// token the server already committed is answered directly with the
    /// recorded [`Response::BackupDone`] — never committed twice.
    BackupResume {
        /// Client-generated idempotency token for this backup.
        token: SessionToken,
        /// Total length of the stream the client intends to upload, so the
        /// server can reject a resume whose buffered prefix cannot belong
        /// to it.
        total_len: u64,
    },
    /// Protocol v2: restore a version starting at a byte offset, so an
    /// interrupted restore re-transfers only the tail after the last
    /// chunk boundary the client acknowledged (by having received it).
    RestoreResume {
        /// The version to restore (1-based).
        version: u32,
        /// Bytes of the version the client already holds; the DATA stream
        /// starts at this offset.
        offset: u64,
    },
    /// Protocol v3: list every tenant under the server's root with its
    /// version count and logical size. Admin verb — not scoped to the
    /// enveloped tenant.
    TenantList,
    /// Protocol v3: per-tenant server counters (requests, bytes, quota
    /// refusals). Admin verb — not scoped to the enveloped tenant.
    TenantStats,
}

/// Reserved first byte of a REQUEST payload marking a tenant envelope.
/// Request tags start at 1, so a leading 0 unambiguously announces
/// `0 | tenant-id string | inner request` (protocol v3); payloads starting
/// with any other byte are bare v1/v2 requests for the default tenant.
pub const TENANT_ENVELOPE_TAG: u8 = 0;

impl Request {
    /// Short name for log lines.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Backup => "backup",
            Request::Restore { .. } => "restore",
            Request::List => "list",
            Request::Stats => "stats",
            Request::Prune { .. } => "prune",
            Request::Verify => "verify",
            Request::Shutdown => "shutdown",
            Request::BackupResume { .. } => "backup-resume",
            Request::RestoreResume { .. } => "restore-resume",
            Request::TenantList => "tenant-list",
            Request::TenantStats => "tenant-stats",
        }
    }

    /// Whether this request is only served at protocol version 2 or newer.
    pub fn needs_v2(&self) -> bool {
        matches!(
            self,
            Request::BackupResume { .. } | Request::RestoreResume { .. }
        )
    }

    /// Whether this request is only served at protocol version 3 or newer.
    pub fn needs_v3(&self) -> bool {
        matches!(self, Request::TenantList | Request::TenantStats)
    }

    /// Encodes this request as a REQUEST frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::Ping => w.u8(1),
            Request::Backup => w.u8(2),
            Request::Restore { version } => {
                w.u8(3);
                w.u32(*version);
            }
            Request::List => w.u8(4),
            Request::Stats => w.u8(5),
            Request::Prune { keep_last } => {
                w.u8(6);
                w.u32(*keep_last);
            }
            Request::Verify => w.u8(7),
            Request::Shutdown => w.u8(8),
            Request::BackupResume { token, total_len } => {
                w.u8(9);
                w.raw(token);
                w.u64(*total_len);
            }
            Request::RestoreResume { version, offset } => {
                w.u8(10);
                w.u32(*version);
                w.u64(*offset);
            }
            Request::TenantList => w.u8(11),
            Request::TenantStats => w.u8(12),
        }
        w.into_bytes()
    }

    /// Encodes this request wrapped in a protocol-v3 tenant envelope:
    /// `0 | tenant-id | bare request`. Only sent to servers that
    /// negotiated version 3 or newer.
    pub fn encode_with_tenant(&self, tenant: &TenantId) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(TENANT_ENVELOPE_TAG);
        w.string(tenant.as_str());
        w.raw(&self.encode());
        w.into_bytes()
    }

    /// Decodes a REQUEST frame payload that may carry a tenant envelope.
    /// Returns the enveloped tenant (`None` for a bare v1/v2 payload,
    /// which the server maps to the default tenant) and the request.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] on unknown tags, truncation, or trailing
    /// bytes; [`DecodeError::InvalidTenant`] when the envelope names an
    /// id that fails validation (including path-traversal attempts).
    pub fn decode_enveloped(payload: &[u8]) -> Result<(Option<TenantId>, Self), DecodeError> {
        if payload.first() != Some(&TENANT_ENVELOPE_TAG) {
            return Ok((None, Request::decode(payload)?));
        }
        let mut r = ByteReader::new(payload);
        let _ = r.u8()?;
        let name = r.string()?;
        let tenant = TenantId::new(&name).map_err(DecodeError::InvalidTenant)?;
        let request = Request::decode(r.rest())?;
        Ok((Some(tenant), request))
    }

    /// Decodes a REQUEST frame payload.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] on unknown tags, truncation, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(payload);
        let req = match r.u8()? {
            1 => Request::Ping,
            2 => Request::Backup,
            3 => Request::Restore { version: r.u32()? },
            4 => Request::List,
            5 => Request::Stats,
            6 => Request::Prune {
                keep_last: r.u32()?,
            },
            7 => Request::Verify,
            8 => Request::Shutdown,
            9 => {
                let mut token = [0u8; 16];
                for byte in &mut token {
                    *byte = r.u8()?;
                }
                Request::BackupResume {
                    token,
                    total_len: r.u64()?,
                }
            }
            10 => Request::RestoreResume {
                version: r.u32()?,
                offset: r.u64()?,
            },
            11 => Request::TenantList,
            12 => Request::TenantStats,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "request",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

/// Outcome of one remote backup, mirroring the local CLI's summary line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackupSummary {
    /// The version id the backup was assigned (1-based).
    pub version: u32,
    /// Bytes in the backed-up stream.
    pub logical_bytes: u64,
    /// Unique bytes actually stored.
    pub stored_bytes: u64,
    /// Chunks in the stream.
    pub chunks: u64,
    /// Chunks stored for the first time.
    pub unique_chunks: u64,
    /// Chunks demoted to archival containers at version end.
    pub cold_chunks: u64,
}

/// Outcome of one remote restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreSummary {
    /// Bytes streamed back to the client.
    pub bytes_restored: u64,
    /// Container reads the restore scheme issued.
    pub container_reads: u64,
    /// Restore-cache hits.
    pub cache_hits: u64,
    /// Restore-cache misses.
    pub cache_misses: u64,
}

/// One retained version in a [`ListResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionEntry {
    /// Version id (1-based).
    pub version: u32,
    /// Logical bytes of the version.
    pub bytes: u64,
    /// Chunks in the version's recipe.
    pub chunks: u64,
}

/// Everything `hidestore list` shows, in wire/JSON-serializable form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ListResponse {
    /// Retained versions, oldest first.
    pub versions: Vec<VersionEntry>,
    /// Sealed archival containers on disk.
    pub archival_containers: u64,
    /// Active (hot) containers in the pool.
    pub active_containers: u64,
    /// Chunks resident in the active pool.
    pub hot_chunks: u64,
}

/// One version's fragmentation statistics in a [`StatsResponse`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VersionStatsEntry {
    /// Version id (1-based).
    pub version: u32,
    /// Logical bytes of the version.
    pub bytes: u64,
    /// Chunks in the version's recipe.
    pub chunks: u64,
    /// Chunk-fragmentation level (containers touched / minimum possible).
    pub cfl: f64,
    /// Mean KiB of the version read per container touched.
    pub mean_kib_per_container: f64,
}

/// Everything `hidestore stats` shows, in wire/JSON-serializable form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsResponse {
    /// Per-version fragmentation rows, oldest first.
    pub versions: Vec<VersionStatsEntry>,
    /// Containers in the active pool.
    pub pool_containers: u64,
    /// Chunks in the active pool.
    pub pool_chunks: u64,
    /// Live bytes in the active pool.
    pub pool_live_bytes: u64,
    /// Bytes copied by out-of-line (reverse-dedup / recluster-style)
    /// rewriting since this server or CLI process opened the repository.
    /// Rewrite traffic, not new user data — counted separately so dedup
    /// accounting stays honest for the `revdedup`/`hybrid` schemes.
    pub out_of_line_rewritten_bytes: u64,
}

/// Outcome of one remote prune.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneSummary {
    /// Versions expired.
    pub versions_removed: u32,
    /// Archival containers whose tags fell dead and were dropped.
    pub containers_dropped: u64,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
}

/// Outcome of one remote verify (integrity scrub).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifySummary {
    /// Containers checked.
    pub containers_checked: u64,
    /// Chunks re-hashed.
    pub chunks_checked: u64,
    /// Recipes resolved.
    pub recipes_checked: u64,
    /// `(container id, fingerprint)` of each corrupt chunk found.
    pub corrupt_chunks: Vec<(u32, String)>,
}

impl VerifySummary {
    /// True when the scrub found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.corrupt_chunks.is_empty()
    }
}

/// One tenant in a [`TenantListResponse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantListEntry {
    /// The tenant's id.
    pub tenant: String,
    /// Versions the tenant's repository retains.
    pub versions: u64,
    /// Logical bytes across the tenant's retained versions.
    pub logical_bytes: u64,
    /// Whether the tenant's repository handle is currently live (resident
    /// in the server's LRU handle table).
    pub live: bool,
}

/// Answer to [`Request::TenantList`]: every tenant under the server's
/// root, sorted by id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantListResponse {
    /// Tenants sorted by id.
    pub tenants: Vec<TenantListEntry>,
}

/// One tenant's server-side counters in a [`TenantStatsResponse`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStatsEntry {
    /// The tenant's id.
    pub tenant: String,
    /// Requests answered successfully.
    pub requests_ok: u64,
    /// Requests answered with an ERROR frame.
    pub requests_failed: u64,
    /// Payload bytes received in backup streams.
    pub bytes_in: u64,
    /// Payload bytes sent in restore streams.
    pub bytes_out: u64,
    /// Failed mutations rolled back by reopening the repository.
    pub rolled_back: u64,
    /// Mutations refused because they would exceed the tenant's quota.
    pub quota_refused: u64,
}

/// Answer to [`Request::TenantStats`]: counters for every tenant that has
/// served at least one request since the daemon started, sorted by id.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStatsResponse {
    /// Per-tenant counters sorted by id.
    pub tenants: Vec<TenantStatsEntry>,
}

/// A server response. Every request gets exactly one RESPONSE (or ERROR)
/// frame; `Restore` additionally streams DATA frames before its
/// `RestoreDone`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The uploaded stream was committed as a new version.
    BackupDone(BackupSummary),
    /// Restore accepted: DATA frames follow, then END, then
    /// [`Response::RestoreDone`].
    RestoreStarted {
        /// Total bytes the stream will carry.
        total_bytes: u64,
    },
    /// The restore stream completed; accounting attached.
    RestoreDone(RestoreSummary),
    /// Answer to [`Request::List`].
    ListOk(ListResponse),
    /// Answer to [`Request::Stats`].
    StatsOk(StatsResponse),
    /// Answer to [`Request::Prune`].
    PruneOk(PruneSummary),
    /// Answer to [`Request::Verify`].
    VerifyOk(VerifySummary),
    /// The daemon acknowledged [`Request::Shutdown`] and will exit once
    /// in-flight requests drain.
    ShutdownOk,
    /// Protocol v2: a [`Request::BackupResume`] session is open. `offset`
    /// bytes are already buffered server-side for this token; the client
    /// streams the remainder.
    BackupAccepted {
        /// Bytes of the stream the server already holds (resume point).
        offset: u64,
    },
    /// Protocol v3: answer to [`Request::TenantList`].
    TenantListOk(TenantListResponse),
    /// Protocol v3: answer to [`Request::TenantStats`].
    TenantStatsOk(TenantStatsResponse),
}

impl Response {
    /// Encodes this response as a RESPONSE frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Pong => w.u8(1),
            Response::BackupDone(s) => {
                w.u8(2);
                w.u32(s.version);
                w.u64(s.logical_bytes);
                w.u64(s.stored_bytes);
                w.u64(s.chunks);
                w.u64(s.unique_chunks);
                w.u64(s.cold_chunks);
            }
            Response::RestoreStarted { total_bytes } => {
                w.u8(3);
                w.u64(*total_bytes);
            }
            Response::RestoreDone(s) => {
                w.u8(4);
                w.u64(s.bytes_restored);
                w.u64(s.container_reads);
                w.u64(s.cache_hits);
                w.u64(s.cache_misses);
            }
            Response::ListOk(list) => {
                w.u8(5);
                w.len_u32(list.versions.len());
                for v in &list.versions {
                    w.u32(v.version);
                    w.u64(v.bytes);
                    w.u64(v.chunks);
                }
                w.u64(list.archival_containers);
                w.u64(list.active_containers);
                w.u64(list.hot_chunks);
            }
            Response::StatsOk(stats) => {
                w.u8(6);
                w.len_u32(stats.versions.len());
                for v in &stats.versions {
                    w.u32(v.version);
                    w.u64(v.bytes);
                    w.u64(v.chunks);
                    w.f64(v.cfl);
                    w.f64(v.mean_kib_per_container);
                }
                w.u64(stats.pool_containers);
                w.u64(stats.pool_chunks);
                w.u64(stats.pool_live_bytes);
                w.u64(stats.out_of_line_rewritten_bytes);
            }
            Response::PruneOk(s) => {
                w.u8(7);
                w.u32(s.versions_removed);
                w.u64(s.containers_dropped);
                w.u64(s.bytes_reclaimed);
            }
            Response::VerifyOk(s) => {
                w.u8(8);
                w.u64(s.containers_checked);
                w.u64(s.chunks_checked);
                w.u64(s.recipes_checked);
                w.len_u32(s.corrupt_chunks.len());
                for (cid, fp) in &s.corrupt_chunks {
                    w.u32(*cid);
                    w.string(fp);
                }
            }
            Response::ShutdownOk => w.u8(9),
            Response::BackupAccepted { offset } => {
                w.u8(10);
                w.u64(*offset);
            }
            Response::TenantListOk(list) => {
                w.u8(11);
                w.len_u32(list.tenants.len());
                for t in &list.tenants {
                    w.string(&t.tenant);
                    w.u64(t.versions);
                    w.u64(t.logical_bytes);
                    w.u8(u8::from(t.live));
                }
            }
            Response::TenantStatsOk(stats) => {
                w.u8(12);
                w.len_u32(stats.tenants.len());
                for t in &stats.tenants {
                    w.string(&t.tenant);
                    w.u64(t.requests_ok);
                    w.u64(t.requests_failed);
                    w.u64(t.bytes_in);
                    w.u64(t.bytes_out);
                    w.u64(t.rolled_back);
                    w.u64(t.quota_refused);
                }
            }
        }
        w.into_bytes()
    }

    /// Decodes a RESPONSE frame payload.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] on unknown tags, truncation, or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(payload);
        let resp = match r.u8()? {
            1 => Response::Pong,
            2 => Response::BackupDone(BackupSummary {
                version: r.u32()?,
                logical_bytes: r.u64()?,
                stored_bytes: r.u64()?,
                chunks: r.u64()?,
                unique_chunks: r.u64()?,
                cold_chunks: r.u64()?,
            }),
            3 => Response::RestoreStarted {
                total_bytes: r.u64()?,
            },
            4 => Response::RestoreDone(RestoreSummary {
                bytes_restored: r.u64()?,
                container_reads: r.u64()?,
                cache_hits: r.u64()?,
                cache_misses: r.u64()?,
            }),
            5 => {
                let n = r.seq_len()?;
                let mut versions = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    versions.push(VersionEntry {
                        version: r.u32()?,
                        bytes: r.u64()?,
                        chunks: r.u64()?,
                    });
                }
                Response::ListOk(ListResponse {
                    versions,
                    archival_containers: r.u64()?,
                    active_containers: r.u64()?,
                    hot_chunks: r.u64()?,
                })
            }
            6 => {
                let n = r.seq_len()?;
                let mut versions = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    versions.push(VersionStatsEntry {
                        version: r.u32()?,
                        bytes: r.u64()?,
                        chunks: r.u64()?,
                        cfl: r.f64()?,
                        mean_kib_per_container: r.f64()?,
                    });
                }
                Response::StatsOk(StatsResponse {
                    versions,
                    pool_containers: r.u64()?,
                    pool_chunks: r.u64()?,
                    pool_live_bytes: r.u64()?,
                    out_of_line_rewritten_bytes: r.u64()?,
                })
            }
            7 => Response::PruneOk(PruneSummary {
                versions_removed: r.u32()?,
                containers_dropped: r.u64()?,
                bytes_reclaimed: r.u64()?,
            }),
            8 => {
                let containers_checked = r.u64()?;
                let chunks_checked = r.u64()?;
                let recipes_checked = r.u64()?;
                let n = r.seq_len()?;
                let mut corrupt_chunks = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let cid = r.u32()?;
                    let fp = r.string()?;
                    corrupt_chunks.push((cid, fp));
                }
                Response::VerifyOk(VerifySummary {
                    containers_checked,
                    chunks_checked,
                    recipes_checked,
                    corrupt_chunks,
                })
            }
            9 => Response::ShutdownOk,
            10 => Response::BackupAccepted { offset: r.u64()? },
            11 => {
                let n = r.seq_len()?;
                let mut tenants = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tenants.push(TenantListEntry {
                        tenant: r.string()?,
                        versions: r.u64()?,
                        logical_bytes: r.u64()?,
                        live: r.u8()? != 0,
                    });
                }
                Response::TenantListOk(TenantListResponse { tenants })
            }
            12 => {
                let n = r.seq_len()?;
                let mut tenants = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    tenants.push(TenantStatsEntry {
                        tenant: r.string()?,
                        requests_ok: r.u64()?,
                        requests_failed: r.u64()?,
                        bytes_in: r.u64()?,
                        bytes_out: r.u64()?,
                        rolled_back: r.u64()?,
                        quota_refused: r.u64()?,
                    });
                }
                Response::TenantStatsOk(TenantStatsResponse { tenants })
            }
            tag => {
                return Err(DecodeError::BadTag {
                    what: "response",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Machine-readable failure classes carried in ERROR frames. The numeric
/// wire value is stable across protocol versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer sent bytes that do not decode (bad frame, bad tag, CRC).
    Malformed,
    /// Version negotiation failed or the request is not served at the
    /// negotiated version.
    Unsupported,
    /// A frame or stream exceeded the server's size limits.
    TooLarge,
    /// The peer was silent past the read/write deadline.
    Timeout,
    /// The requested version does not exist.
    NotFound,
    /// The request conflicts with repository state (e.g. pruning every
    /// version).
    Conflict,
    /// The repository operation itself failed; the mutation was rolled
    /// back.
    Internal,
    /// The daemon is draining for shutdown and accepts no new requests.
    /// Retryable: the operator is restarting the daemon, not removing it.
    ShuttingDown,
    /// The daemon's admission gate is full and shed this connection.
    /// Retryable after the hint in [`WireError::retry_after_ms`].
    Busy,
    /// The mutation would exceed the tenant's quota (max bytes or max
    /// versions). Not retryable: the request will fail identically until
    /// the tenant prunes data or the operator raises the quota.
    QuotaExceeded,
}

impl ErrorCode {
    /// Wire value of this code.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Unsupported => 2,
            ErrorCode::TooLarge => 3,
            ErrorCode::Timeout => 4,
            ErrorCode::NotFound => 5,
            ErrorCode::Conflict => 6,
            ErrorCode::Internal => 7,
            ErrorCode::ShuttingDown => 8,
            ErrorCode::Busy => 9,
            ErrorCode::QuotaExceeded => 10,
        }
    }

    /// Parses a wire value.
    pub fn from_u16(v: u16) -> Result<Self, DecodeError> {
        Ok(match v {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::Unsupported,
            3 => ErrorCode::TooLarge,
            4 => ErrorCode::Timeout,
            5 => ErrorCode::NotFound,
            6 => ErrorCode::Conflict,
            7 => ErrorCode::Internal,
            8 => ErrorCode::ShuttingDown,
            9 => ErrorCode::Busy,
            10 => ErrorCode::QuotaExceeded,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "error code",
                    tag: tag as u8,
                })
            }
        })
    }

    /// Whether a client may safely retry the request after receiving this
    /// code. `ShuttingDown` and `Busy` are transient server states;
    /// `Timeout` means the server gave up waiting and nothing committed.
    /// Everything else — including `QuotaExceeded`, which only clears
    /// when the tenant prunes or the quota is raised — reflects the
    /// request itself and will fail again.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::ShuttingDown | ErrorCode::Busy | ErrorCode::Timeout
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::NotFound => "not-found",
            ErrorCode::Conflict => "conflict",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::Busy => "busy",
            ErrorCode::QuotaExceeded => "quota-exceeded",
        };
        f.write_str(name)
    }
}

/// A typed error travelling in an ERROR frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail (never parsed by clients).
    pub message: String,
    /// Backoff hint in milliseconds for retryable codes (0 = no hint). A
    /// shedding server sets this on [`ErrorCode::Busy`] so clients spread
    /// their retries instead of stampeding.
    pub retry_after_ms: u32,
}

impl WireError {
    /// Builds an error with a formatted message and no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            retry_after_ms: 0,
        }
    }

    /// Builds a retryable `Busy` error carrying a backoff hint.
    pub fn busy(retry_after_ms: u32, message: impl Into<String>) -> Self {
        WireError {
            code: ErrorCode::Busy,
            message: message.into(),
            retry_after_ms,
        }
    }

    /// Encodes this error as an ERROR frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u16(self.code.as_u16());
        w.string(&self.message);
        w.u32(self.retry_after_ms);
        w.into_bytes()
    }

    /// Decodes an ERROR frame payload. The trailing retry hint was added
    /// in protocol v2; a v1 payload without it decodes with hint 0, so the
    /// error taxonomy stays readable across versions.
    ///
    /// # Errors
    ///
    /// Typed [`DecodeError`] on unknown codes, truncation, or trailing
    /// bytes.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(payload);
        let code = ErrorCode::from_u16(r.u16()?)?;
        let message = r.string()?;
        let retry_after_ms = if r.remaining() > 0 { r.u32()? } else { 0 };
        r.finish()?;
        Ok(WireError {
            code,
            message,
            retry_after_ms,
        })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}
