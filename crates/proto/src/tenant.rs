//! Tenant identifiers: the protocol-level names of isolated repositories.
//!
//! A tenant id doubles as a directory name under the server's tenant root,
//! so validation is a security boundary: every id accepted here must be
//! safe to join onto a path without escaping it. The grammar is therefore
//! deliberately narrow — lowercase ASCII alphanumerics plus `-`, `_` and
//! `.`, starting with an alphanumeric, at most [`MAX_TENANT_ID_LEN`]
//! bytes. That excludes `..`, path separators, hidden-file prefixes,
//! flag-like leading dashes, and (by forbidding uppercase) aliasing on
//! case-insensitive filesystems. Validation happens at decode time: a
//! request carrying a bad tenant id never reaches dispatch.

use std::fmt;

/// Maximum length of a tenant id in bytes.
pub const MAX_TENANT_ID_LEN: usize = 64;

/// Name of the implicit tenant that protocol v1/v2 clients (which cannot
/// name a tenant) are mapped to.
pub const DEFAULT_TENANT: &str = "default";

/// Why a candidate tenant id was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantIdError {
    /// The id was empty.
    Empty,
    /// The id exceeded [`MAX_TENANT_ID_LEN`] bytes.
    TooLong {
        /// Length of the rejected id.
        len: usize,
    },
    /// The first character was not a lowercase ASCII alphanumeric.
    BadStart {
        /// The offending character.
        ch: char,
    },
    /// A character outside `[a-z0-9._-]` appeared.
    BadChar {
        /// The offending character.
        ch: char,
    },
}

impl fmt::Display for TenantIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantIdError::Empty => write!(f, "tenant id is empty"),
            TenantIdError::TooLong { len } => write!(
                f,
                "tenant id is {len} bytes, maximum is {MAX_TENANT_ID_LEN}"
            ),
            TenantIdError::BadStart { ch } => write!(
                f,
                "tenant id must start with a lowercase letter or digit, not {ch:?}"
            ),
            TenantIdError::BadChar { ch } => {
                write!(f, "tenant id may only contain [a-z0-9._-], found {ch:?}")
            }
        }
    }
}

impl std::error::Error for TenantIdError {}

/// A validated tenant id. Constructing one is the *only* way a tenant name
/// enters the system: [`TenantId::new`] enforces the grammar, so any
/// `TenantId` value is safe to use as a single path component.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// Validates `s` as a tenant id.
    ///
    /// # Errors
    ///
    /// Typed [`TenantIdError`] naming the first rule violated.
    pub fn new(s: &str) -> Result<Self, TenantIdError> {
        let mut chars = s.chars();
        let first = chars.next().ok_or(TenantIdError::Empty)?;
        if s.len() > MAX_TENANT_ID_LEN {
            return Err(TenantIdError::TooLong { len: s.len() });
        }
        if !first.is_ascii_lowercase() && !first.is_ascii_digit() {
            return Err(TenantIdError::BadStart { ch: first });
        }
        for ch in chars {
            let ok =
                ch.is_ascii_lowercase() || ch.is_ascii_digit() || matches!(ch, '-' | '_' | '.');
            if !ok {
                return Err(TenantIdError::BadChar { ch });
            }
        }
        Ok(TenantId(s.to_string()))
    }

    /// The implicit tenant v1/v2 clients are served as.
    #[must_use]
    pub fn default_tenant() -> Self {
        TenantId(DEFAULT_TENANT.to_string())
    }

    /// The id as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this is the implicit [`DEFAULT_TENANT`].
    #[must_use]
    pub fn is_default(&self) -> bool {
        self.0 == DEFAULT_TENANT
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TenantId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::str::FromStr for TenantId {
    type Err = TenantIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        TenantId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_reasonable_ids() {
        for ok in [
            "default",
            "a",
            "0",
            "alice",
            "tenant-7",
            "acme_corp.backups",
            "a.b-c_d9",
            &"x".repeat(MAX_TENANT_ID_LEN),
        ] {
            assert!(TenantId::new(ok).is_ok(), "{ok:?} should be accepted");
        }
        assert!(TenantId::default_tenant().is_default());
        assert!(!TenantId::new("alice").unwrap().is_default());
    }

    #[test]
    fn rejects_traversal_and_hostile_ids() {
        assert_eq!(TenantId::new(""), Err(TenantIdError::Empty));
        assert_eq!(
            TenantId::new(&"x".repeat(MAX_TENANT_ID_LEN + 1)),
            Err(TenantIdError::TooLong {
                len: MAX_TENANT_ID_LEN + 1
            })
        );
        // Traversal and separators can never survive validation.
        assert_eq!(
            TenantId::new(".."),
            Err(TenantIdError::BadStart { ch: '.' })
        );
        assert_eq!(TenantId::new("."), Err(TenantIdError::BadStart { ch: '.' }));
        assert_eq!(
            TenantId::new("../escape"),
            Err(TenantIdError::BadStart { ch: '.' })
        );
        assert_eq!(
            TenantId::new("a/../b"),
            Err(TenantIdError::BadChar { ch: '/' })
        );
        assert_eq!(
            TenantId::new("a\\b"),
            Err(TenantIdError::BadChar { ch: '\\' })
        );
        assert_eq!(
            TenantId::new("a..b"),
            Ok(TenantId("a..b".into())),
            "interior dots are harmless once separators are impossible"
        );
        // Flag-like, hidden, uppercase, spaced, and NUL-bearing ids.
        assert_eq!(
            TenantId::new("-rf"),
            Err(TenantIdError::BadStart { ch: '-' })
        );
        assert_eq!(
            TenantId::new(".hidden"),
            Err(TenantIdError::BadStart { ch: '.' })
        );
        assert_eq!(
            TenantId::new("Alice"),
            Err(TenantIdError::BadStart { ch: 'A' })
        );
        assert_eq!(
            TenantId::new("a b"),
            Err(TenantIdError::BadChar { ch: ' ' })
        );
        assert_eq!(
            TenantId::new("a\0b"),
            Err(TenantIdError::BadChar { ch: '\0' })
        );
        assert_eq!(
            TenantId::new("año"),
            Err(TenantIdError::BadChar { ch: 'ñ' })
        );
    }
}
