//! Little-endian byte-level encoding helpers shared by every protocol
//! message.
//!
//! All multi-byte integers on the wire are little-endian, matching the
//! repository's on-disk container and journal encodings. Strings are
//! `u32` length + UTF-8 bytes; sequences are `u32` count + elements.
//! Floats travel as their IEEE-754 bit pattern (`f64::to_bits`).

use std::fmt;

use crate::tenant::TenantIdError;

/// Typed decoding failure. Every malformed input maps to one of these —
/// decoding never panics, whatever the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the announced structure was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// The message kind being decoded (for diagnostics).
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A magic prefix did not match.
    BadMagic {
        /// The structure whose magic was wrong.
        what: &'static str,
    },
    /// A length field exceeded the permitted maximum.
    TooLong {
        /// The structure whose length was excessive.
        what: &'static str,
        /// The announced length.
        announced: u64,
        /// The permitted maximum.
        max: u64,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A tenant envelope named a tenant id that fails validation (empty,
    /// too long, path traversal, bad characters). Rejected here so a
    /// hostile id never reaches dispatch, let alone the filesystem.
    InvalidTenant(TenantIdError),
    /// Trailing bytes remained after a complete message was decoded.
    TrailingBytes {
        /// How many bytes were left over.
        remaining: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} more bytes, {remaining} left"
                )
            }
            DecodeError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            DecodeError::BadMagic { what } => write!(f, "bad {what} magic"),
            DecodeError::TooLong {
                what,
                announced,
                max,
            } => write!(f, "{what} length {announced} exceeds maximum {max}"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::InvalidTenant(err) => write!(f, "invalid tenant id: {err}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum encoded length accepted for a string field. Keeps a corrupt
/// length field from asking the decoder to allocate gigabytes.
pub const MAX_STRING_LEN: u32 = 1 << 20;

/// Maximum element count accepted for a sequence field.
pub const MAX_SEQ_LEN: u32 = 1 << 20;

/// Appends little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes with no length prefix.
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `usize` length or count as a `u32`, saturating instead of
    /// truncating on overflow. A saturated value always exceeds
    /// [`MAX_STRING_LEN`]/[`MAX_SEQ_LEN`], so the decoder rejects the frame
    /// with [`DecodeError::TooLong`] rather than silently reading a
    /// wrapped-around length (fail closed).
    pub fn len_u32(&mut self, n: usize) {
        self.u32(u32::try_from(n).unwrap_or(u32::MAX));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.len_u32(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Reads little-endian primitives from a byte slice, tracking position.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps `bytes` for sequential decoding.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails with [`DecodeError::TrailingBytes`] unless everything was
    /// consumed — decoding a complete message must account for every byte.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` little-endian.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a `u32` little-endian.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64` little-endian.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()?;
        if len > MAX_STRING_LEN {
            return Err(DecodeError::TooLong {
                what: "string",
                announced: len as u64,
                max: MAX_STRING_LEN as u64,
            });
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Consumes and returns every remaining byte. Used by envelope
    /// decoders that strip a prefix and hand the rest to an inner decoder.
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        slice
    }

    /// Reads a sequence length prefix, bounded by [`MAX_SEQ_LEN`].
    pub fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let len = self.u32()?;
        if len > MAX_SEQ_LEN {
            return Err(DecodeError::TooLong {
                what: "sequence",
                announced: len as u64,
                max: MAX_SEQ_LEN as u64,
            });
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(0x0123_4567_89AB_CDEF);
        w.f64(1.25);
        w.string("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.f64().unwrap(), 1.25);
        assert_eq!(r.string().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn eof_is_typed() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.u32(), Err(DecodeError::UnexpectedEof { .. })));
    }

    #[test]
    fn oversized_string_rejected() {
        let mut w = ByteWriter::new();
        w.u32(MAX_STRING_LEN + 1);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.string(), Err(DecodeError::TooLong { .. })));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = ByteWriter::new();
        w.u32(2);
        w.raw(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.string(), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let r = ByteReader::new(&[0]);
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes { remaining: 1 }));
    }
}
