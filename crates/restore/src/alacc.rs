//! ALACC — Adaptive Look-Ahead Chunk Caching (Cao, Wen, Xie, Du; FAST'18).

use std::collections::{HashMap, HashSet};
use std::io::Write;

use bytes::Bytes;
use hidestore_hash::Fingerprint;
use hidestore_storage::ContainerStore;

use crate::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};

/// FAA combined with a look-ahead-managed chunk cache.
///
/// Like [`crate::Faa`], the plan is assembled area by area. Two additions,
/// following the FAST'18 design:
///
/// 1. **Chunk cache** — slots whose chunks are already cached are filled
///    without touching the store.
/// 2. **Look-ahead window** — when a container *is* read for the current
///    area, the window (the plan beyond the area) is consulted: chunks of
///    this container that will be needed again soon are copied into the
///    cache, so the later area won't re-read the container.
///
/// The memory split between assembly area and chunk cache adapts: when the
/// cache produced few hits in recent areas its budget shrinks in favour of a
/// larger area, and vice versa — the "adaptive" part of ALACC.
#[derive(Debug)]
pub struct Alacc {
    area_bytes: usize,
    cache_budget: usize,
    /// Total memory envelope (area + cache); the adaptive split preserves it.
    total_budget: usize,
    adaptive: bool,
    cache: HashMap<Fingerprint, Bytes>,
    order: Vec<Fingerprint>,
    cached_bytes: usize,
    /// Hits in the area being assembled (drives adaptation).
    area_hits: u64,
    hits_total: u64,
    /// Number of times the area/cache split actually changed.
    adaptations: u64,
}

impl Alacc {
    /// Creates an ALACC restorer with the given assembly-area size and chunk
    /// cache budget (bytes). Adaptation is enabled by default.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(area_bytes: usize, cache_budget: usize) -> Self {
        assert!(area_bytes > 0, "assembly area must be non-zero");
        assert!(cache_budget > 0, "cache budget must be non-zero");
        Alacc {
            area_bytes,
            cache_budget,
            total_budget: area_bytes + cache_budget,
            adaptive: true,
            cache: HashMap::new(),
            order: Vec::new(),
            cached_bytes: 0,
            area_hits: 0,
            hits_total: 0,
            adaptations: 0,
        }
    }

    /// Disables the adaptive area/cache split (fixed configuration).
    pub fn with_fixed_split(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// Chunk-cache hits observed during the last restore.
    pub fn cache_hits(&self) -> u64 {
        self.hits_total
    }

    /// The current assembly-area size (moves under adaptation).
    pub fn area_bytes(&self) -> usize {
        self.area_bytes
    }

    /// How many times the adaptive policy changed the area/cache split
    /// during the last restore.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    fn cache_insert(&mut self, fp: Fingerprint, data: Bytes) {
        if self.cache.contains_key(&fp) {
            return;
        }
        self.cached_bytes += data.len();
        self.cache.insert(fp, data);
        self.order.push(fp);
        while self.cached_bytes > self.cache_budget && self.order.len() > 1 {
            let evict = self.order.remove(0);
            if let Some(old) = self.cache.remove(&evict) {
                self.cached_bytes -= old.len();
            }
        }
    }

    fn adapt(&mut self) {
        if !self.adaptive {
            return;
        }
        // Heuristic from the paper's adaptive algorithm: a productive cache
        // earns more memory, an idle cache cedes it to the assembly area.
        let min_part = self.total_budget / 8;
        let before = self.cache_budget;
        if self.area_hits >= 4 {
            self.cache_budget =
                (self.cache_budget + self.total_budget / 16).min(self.total_budget - min_part);
        } else if self.area_hits == 0 {
            self.cache_budget = self
                .cache_budget
                .saturating_sub(self.total_budget / 16)
                .max(min_part);
        }
        if self.cache_budget != before {
            self.adaptations += 1;
        }
        self.area_bytes = self.total_budget - self.cache_budget;
        self.area_hits = 0;
    }

    fn split_area<'a>(&self, plan: &'a [RestoreEntry], start: usize) -> &'a [RestoreEntry] {
        let mut acc = 0usize;
        let mut end = start;
        while end < plan.len() {
            let sz = plan[end].size as usize;
            if acc + sz > self.area_bytes && end > start {
                break;
            }
            acc += sz;
            end += 1;
        }
        &plan[start..end]
    }
}

impl RestoreCache for Alacc {
    fn restore(
        &mut self,
        plan: &[RestoreEntry],
        store: &mut dyn ContainerStore,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, RestoreError> {
        self.cache.clear();
        self.order.clear();
        self.cached_bytes = 0;
        self.hits_total = 0;
        self.area_hits = 0;
        self.adaptations = 0;
        let reads_before = store.stats().container_reads;
        let mut bytes = 0u64;
        let mut pos = 0usize;
        while pos < plan.len() {
            let area = self.split_area(plan, pos);
            let area_len = area.len();
            // Look-ahead window: as much of the following plan as two areas.
            let window_end = (pos + area_len + 2 * area_len.max(16)).min(plan.len());
            let lookahead: HashSet<Fingerprint> = plan[pos + area_len..window_end]
                .iter()
                .map(|e| e.fingerprint)
                .collect();

            let mut offsets = Vec::with_capacity(area.len());
            let mut total = 0usize;
            for entry in area {
                offsets.push(total);
                total += entry.size as usize;
            }
            let mut buffer = vec![0u8; total];
            let mut unfilled: Vec<usize> = Vec::new();
            for (i, entry) in area.iter().enumerate() {
                if let Some(data) = self.cache.get(&entry.fingerprint) {
                    buffer[offsets[i]..offsets[i] + data.len()].copy_from_slice(data);
                    self.area_hits += 1;
                    self.hits_total += 1;
                } else {
                    unfilled.push(i);
                }
            }
            // Group remaining slots by container, read each once.
            let mut order_of_need: Vec<hidestore_storage::ContainerId> = Vec::new();
            let mut by_container: HashMap<hidestore_storage::ContainerId, Vec<usize>> =
                HashMap::new();
            for &i in &unfilled {
                let cid = area[i].container;
                if !by_container.contains_key(&cid) {
                    order_of_need.push(cid);
                }
                by_container.entry(cid).or_default().push(i);
            }
            for cid in order_of_need {
                let container = store.read(cid)?;
                for &slot in &by_container[&cid] {
                    let entry = &area[slot];
                    let data =
                        container
                            .get(&entry.fingerprint)
                            .ok_or(RestoreError::MissingChunk {
                                fingerprint: entry.fingerprint,
                                container: cid,
                            })?;
                    buffer[offsets[slot]..offsets[slot] + data.len()].copy_from_slice(data);
                }
                // Look-ahead: keep this container's soon-needed chunks.
                for (fp, data) in container.iter() {
                    if lookahead.contains(&fp) {
                        self.cache_insert(fp, Bytes::copy_from_slice(data));
                    }
                }
            }
            out.write_all(&buffer)?;
            bytes += total as u64;
            pos += area_len;
            self.adapt();
        }
        let reads = store.stats().container_reads - reads_before;
        Ok(RestoreReport {
            bytes_restored: bytes,
            container_reads: reads,
            cache_hits: self.hits_total,
            cache_misses: reads,
            ..RestoreReport::default()
        })
    }

    fn name(&self) -> &'static str {
        "alacc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{interleaved_fixture, sequential_fixture};
    use crate::Faa;

    #[test]
    fn beats_faa_on_cross_area_reuse() {
        // Interleaved plan with small areas: FAA re-reads containers every
        // area; ALACC's look-ahead cache retains upcoming chunks.
        let (mut store_a, plan, _) = interleaved_fixture(8, 16, 256);
        let (mut store_b, _, _) = interleaved_fixture(8, 16, 256);
        let area = 8 * 256; // one interleaved row per area
        let faa_reads = Faa::new(area)
            .restore(&plan, &mut store_a, &mut Vec::new())
            .unwrap()
            .container_reads;
        let alacc_reads = Alacc::new(area, 1 << 20)
            .with_fixed_split()
            .restore(&plan, &mut store_b, &mut Vec::new())
            .unwrap()
            .container_reads;
        assert!(
            alacc_reads < faa_reads,
            "alacc {alacc_reads} reads vs faa {faa_reads}"
        );
    }

    #[test]
    fn cache_hits_counted() {
        let (mut store, plan, _) = interleaved_fixture(4, 16, 256);
        let mut alacc = Alacc::new(4 * 256, 1 << 20).with_fixed_split();
        alacc.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert!(alacc.cache_hits() > 0);
    }

    #[test]
    fn adaptation_moves_the_split() {
        let (mut store, plan, _) = interleaved_fixture(8, 32, 256);
        let mut alacc = Alacc::new(8 * 256, 8 * 256);
        alacc.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        // The run mixes hit-rich and hit-free areas, so the adaptive policy
        // must have moved the split at least once.
        assert!(alacc.adaptations() > 0);
    }

    #[test]
    fn exact_output_with_adaptation() {
        let (mut store, plan, expect) = interleaved_fixture(6, 20, 128);
        let mut alacc = Alacc::new(1024, 2048);
        let mut out = Vec::new();
        alacc.restore(&plan, &mut store, &mut out).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn sequential_degenerates_to_faa() {
        let (mut store, plan, _) = sequential_fixture(8, 16, 256);
        let report = Alacc::new(1 << 20, 1 << 20)
            .restore(&plan, &mut store, &mut Vec::new())
            .unwrap();
        assert_eq!(report.container_reads, 8);
    }
}
