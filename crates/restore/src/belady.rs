//! Belady's optimal container cache — an offline upper bound on what any
//! container-granular caching scheme can achieve, used as a reference line
//! in restore experiments.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io::Write;
use std::sync::Arc;

use hidestore_storage::{Container, ContainerId, ContainerStore};

use crate::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};

/// Optimal (clairvoyant) container cache.
///
/// Holds up to `capacity` containers and, when full, evicts the container
/// whose next use in the remaining plan is farthest away (never-used-again
/// first) — Belady's MIN algorithm, realizable here because the restore
/// plan is fully known in advance from the recipe. No online scheme
/// (LRU, chunk cache, FAA at equal memory) can need fewer reads, so this
/// gives experiments a floor on container reads at each cache size.
#[derive(Debug)]
pub struct BeladyCache {
    capacity: usize,
}

impl BeladyCache {
    /// Creates the optimal cache holding up to `capacity` containers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache must hold at least one container");
        BeladyCache { capacity }
    }
}

impl RestoreCache for BeladyCache {
    fn restore(
        &mut self,
        plan: &[RestoreEntry],
        store: &mut dyn ContainerStore,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, RestoreError> {
        let reads_before = store.stats().container_reads;
        // Precompute, for each container, the queue of positions at which it
        // is needed.
        let mut uses: HashMap<ContainerId, VecDeque<usize>> = HashMap::new();
        for (i, entry) in plan.iter().enumerate() {
            uses.entry(entry.container).or_default().push_back(i);
        }
        // Cache state plus an index of (next_use, container) for O(log n)
        // farthest-victim selection.
        let mut cached: HashMap<ContainerId, Arc<Container>> = HashMap::new();
        let mut next_use: BTreeSet<(usize, ContainerId)> = BTreeSet::new();
        const NEVER: usize = usize::MAX;

        let mut bytes = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (i, entry) in plan.iter().enumerate() {
            // Advance this container's use queue past position i.
            let queue = uses.entry(entry.container).or_default();
            while queue.front().is_some_and(|&p| p <= i) {
                queue.pop_front();
            }
            let upcoming = queue.front().copied().unwrap_or(NEVER);

            let container = if let Some(c) = cached.get(&entry.container) {
                hits += 1;
                // Re-key its position in the eviction index.
                if let Some(old_key) = next_use
                    .iter()
                    .find(|&&(_, c2)| c2 == entry.container)
                    .copied()
                {
                    next_use.remove(&old_key);
                }
                next_use.insert((upcoming, entry.container));
                Arc::clone(c)
            } else {
                misses += 1;
                let c = store.read(entry.container)?;
                if cached.len() >= self.capacity {
                    // Evict the farthest-in-future container.
                    if let Some(victim) = next_use.iter().next_back().copied() {
                        next_use.remove(&victim);
                        cached.remove(&victim.1);
                    }
                }
                cached.insert(entry.container, Arc::clone(&c));
                next_use.insert((upcoming, entry.container));
                c
            };
            let data = container
                .get(&entry.fingerprint)
                .ok_or(RestoreError::MissingChunk {
                    fingerprint: entry.fingerprint,
                    container: entry.container,
                })?;
            out.write_all(data)?;
            bytes += data.len() as u64;
        }
        Ok(RestoreReport {
            bytes_restored: bytes,
            container_reads: store.stats().container_reads - reads_before,
            cache_hits: hits,
            cache_misses: misses,
            ..RestoreReport::default()
        })
    }

    fn name(&self) -> &'static str {
        "belady"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{interleaved_fixture, sequential_fixture};
    use crate::ContainerLru;

    #[test]
    fn restores_exact_bytes() {
        let (mut store, plan, expect) = interleaved_fixture(6, 10, 256);
        let mut out = Vec::new();
        BeladyCache::new(3)
            .restore(&plan, &mut store, &mut out)
            .unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn never_worse_than_lru_at_equal_capacity() {
        for capacity in [2usize, 3, 4, 6] {
            let (mut s1, plan, _) = interleaved_fixture(8, 12, 128);
            let (mut s2, _, _) = interleaved_fixture(8, 12, 128);
            let opt = BeladyCache::new(capacity)
                .restore(&plan, &mut s1, &mut Vec::new())
                .unwrap()
                .container_reads;
            let lru = ContainerLru::new(capacity)
                .restore(&plan, &mut s2, &mut Vec::new())
                .unwrap()
                .container_reads;
            assert!(opt <= lru, "capacity {capacity}: belady {opt} > lru {lru}");
        }
    }

    #[test]
    fn sequential_plan_is_one_read_per_container() {
        let (mut store, plan, _) = sequential_fixture(5, 8, 128);
        let report = BeladyCache::new(1)
            .restore(&plan, &mut store, &mut Vec::new())
            .unwrap();
        assert_eq!(report.container_reads, 5);
    }

    #[test]
    fn full_capacity_reads_each_container_once() {
        let (mut store, plan, _) = interleaved_fixture(8, 12, 128);
        let report = BeladyCache::new(8)
            .restore(&plan, &mut store, &mut Vec::new())
            .unwrap();
        assert_eq!(report.container_reads, 8);
    }

    #[test]
    fn classic_belady_beats_lru_on_cyclic_access() {
        // Cyclic sweep over k+1 containers with a k-sized cache: LRU misses
        // every access, Belady does far better.
        let (mut s1, plan, _) = interleaved_fixture(4, 16, 64);
        let (mut s2, _, _) = interleaved_fixture(4, 16, 64);
        let opt = BeladyCache::new(3)
            .restore(&plan, &mut s1, &mut Vec::new())
            .unwrap()
            .container_reads;
        let lru = ContainerLru::new(3)
            .restore(&plan, &mut s2, &mut Vec::new())
            .unwrap()
            .container_reads;
        assert!(opt < lru, "belady {opt} vs lru {lru}");
    }
}
