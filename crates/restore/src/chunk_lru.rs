//! Chunk-granular LRU restore cache.

use std::collections::HashMap;
use std::io::Write;

use bytes::Bytes;
use hidestore_hash::Fingerprint;
use hidestore_storage::ContainerStore;

use crate::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};

/// Chunk-by-chunk restore with an LRU cache of individual chunks.
///
/// On a miss the whole container is read (one counted read) and *all* its
/// chunks are inserted, evicting least-recently-used chunks once the byte
/// budget is exceeded. Compared with [`crate::ContainerLru`], memory is spent
/// on chunks rather than container slots, which tolerates fragmentation
/// better — the paper's §2.3 cites this family as the chunk-based caching
/// baseline.
#[derive(Debug)]
pub struct ChunkLru {
    capacity_bytes: usize,
    cache: HashMap<Fingerprint, Bytes>,
    order: Vec<Fingerprint>,
    cached_bytes: usize,
}

impl ChunkLru {
    /// Creates a chunk cache with the given byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes == 0`.
    pub fn new(capacity_bytes: usize) -> Self {
        assert!(capacity_bytes > 0, "cache budget must be non-zero");
        ChunkLru {
            capacity_bytes,
            cache: HashMap::new(),
            order: Vec::new(),
            cached_bytes: 0,
        }
    }

    fn touch(&mut self, fp: Fingerprint) {
        if let Some(pos) = self.order.iter().position(|&f| f == fp) {
            self.order.remove(pos);
        }
        self.order.push(fp);
    }

    fn insert(&mut self, fp: Fingerprint, data: Bytes) {
        if self.cache.contains_key(&fp) {
            self.touch(fp);
            return;
        }
        self.cached_bytes += data.len();
        self.cache.insert(fp, data);
        self.touch(fp);
        while self.cached_bytes > self.capacity_bytes && self.order.len() > 1 {
            let evict = self.order.remove(0);
            if let Some(old) = self.cache.remove(&evict) {
                self.cached_bytes -= old.len();
            }
        }
    }
}

impl RestoreCache for ChunkLru {
    fn restore(
        &mut self,
        plan: &[RestoreEntry],
        store: &mut dyn ContainerStore,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, RestoreError> {
        self.cache.clear();
        self.order.clear();
        self.cached_bytes = 0;
        let reads_before = store.stats().container_reads;
        let mut bytes = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for entry in plan {
            let data = if let Some(data) = self.cache.get(&entry.fingerprint).cloned() {
                self.touch(entry.fingerprint);
                hits += 1;
                data
            } else {
                misses += 1;
                let container = store.read(entry.container)?;
                let needed = container
                    .get(&entry.fingerprint)
                    .map(Bytes::copy_from_slice)
                    .ok_or(RestoreError::MissingChunk {
                        fingerprint: entry.fingerprint,
                        container: entry.container,
                    })?;
                for (fp, chunk) in container.iter() {
                    self.insert(fp, Bytes::copy_from_slice(chunk));
                }
                needed
            };
            out.write_all(&data)?;
            bytes += data.len() as u64;
        }
        Ok(RestoreReport {
            bytes_restored: bytes,
            container_reads: store.stats().container_reads - reads_before,
            cache_hits: hits,
            cache_misses: misses,
            ..RestoreReport::default()
        })
    }

    fn name(&self) -> &'static str {
        "chunk-lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{interleaved_fixture, sequential_fixture};

    #[test]
    fn holds_hot_chunks_across_container_evictions() {
        // Interleaved plan, cache large enough for all chunks: one read per
        // container even though access order thrashes container caches.
        let (mut store, plan, _) = interleaved_fixture(8, 8, 256);
        let mut cache = ChunkLru::new(8 * 8 * 256 + 1024);
        let report = cache.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert_eq!(report.container_reads, 8);
    }

    #[test]
    fn tiny_budget_still_correct() {
        let (mut store, plan, expect) = interleaved_fixture(4, 8, 256);
        let mut cache = ChunkLru::new(300); // barely more than one chunk
        let mut out = Vec::new();
        cache.restore(&plan, &mut store, &mut out).unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn eviction_respects_budget() {
        let (mut store, plan, _) = sequential_fixture(4, 8, 256);
        let mut cache = ChunkLru::new(1024);
        cache.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert!(cache.cached_bytes <= 1024 || cache.order.len() == 1);
    }

    #[test]
    fn repeated_chunk_in_plan_hits_cache() {
        let (mut store, mut plan, _) = sequential_fixture(1, 4, 256);
        // Restore the same chunk many times.
        let first = plan[0];
        plan.extend(std::iter::repeat_n(first, 50));
        let mut cache = ChunkLru::new(1 << 20);
        let report = cache.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert_eq!(report.container_reads, 1);
        assert_eq!(report.bytes_restored, (4 + 50) as u64 * 256);
    }
}
