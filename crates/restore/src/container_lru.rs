//! Container-granular LRU restore cache — the classic scheme the paper's
//! §2.3 describes first.

use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;

use hidestore_storage::{Container, ContainerId, ContainerStore};

use crate::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};

/// Chunk-by-chunk restore with an LRU cache of whole containers.
///
/// Exploits the logical locality of backup streams: a container read for one
/// chunk probably holds the next several chunks too. Its weakness — the one
/// motivating the paper — is that as fragmentation grows, each cached
/// container contributes only a few useful chunks, so cache slots are wasted
/// on mostly-irrelevant data.
///
/// # Examples
///
/// ```
/// use hidestore_restore::{ContainerLru, RestoreCache};
///
/// let cache = ContainerLru::new(64);
/// assert_eq!(cache.name(), "container-lru");
/// ```
#[derive(Debug)]
pub struct ContainerLru {
    capacity: usize,
    cache: HashMap<ContainerId, Arc<Container>>,
    order: Vec<ContainerId>,
    hits: u64,
    misses: u64,
}

impl ContainerLru {
    /// Creates a cache holding up to `capacity` containers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache must hold at least one container");
        ContainerLru {
            capacity,
            cache: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, id: ContainerId) {
        if let Some(pos) = self.order.iter().position(|&c| c == id) {
            self.order.remove(pos);
        }
        self.order.push(id);
    }

    fn fetch(
        &mut self,
        id: ContainerId,
        store: &mut dyn ContainerStore,
    ) -> Result<Arc<Container>, RestoreError> {
        if let Some(c) = self.cache.get(&id).cloned() {
            self.touch(id);
            self.hits += 1;
            return Ok(c);
        }
        self.misses += 1;
        let container = store.read(id)?;
        self.cache.insert(id, Arc::clone(&container));
        self.touch(id);
        while self.cache.len() > self.capacity {
            let evict = self.order.remove(0);
            self.cache.remove(&evict);
        }
        Ok(container)
    }
}

impl RestoreCache for ContainerLru {
    fn restore(
        &mut self,
        plan: &[RestoreEntry],
        store: &mut dyn ContainerStore,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, RestoreError> {
        self.cache.clear();
        self.order.clear();
        self.hits = 0;
        self.misses = 0;
        let reads_before = store.stats().container_reads;
        let mut bytes = 0u64;
        for entry in plan {
            let container = self.fetch(entry.container, store)?;
            let data = container
                .get(&entry.fingerprint)
                .ok_or(RestoreError::MissingChunk {
                    fingerprint: entry.fingerprint,
                    container: entry.container,
                })?;
            out.write_all(data)?;
            bytes += data.len() as u64;
        }
        Ok(RestoreReport {
            bytes_restored: bytes,
            container_reads: store.stats().container_reads - reads_before,
            cache_hits: self.hits,
            cache_misses: self.misses,
            ..RestoreReport::default()
        })
    }

    fn name(&self) -> &'static str {
        "container-lru"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{interleaved_fixture, sequential_fixture};

    #[test]
    fn cache_hit_avoids_rereads() {
        let (mut store, plan, _) = sequential_fixture(4, 8, 256);
        let mut cache = ContainerLru::new(4);
        let report = cache.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert_eq!(report.container_reads, 4);
    }

    #[test]
    fn thrashing_when_cache_too_small() {
        // Interleaved access across 8 containers with a 2-container cache:
        // nearly every access misses.
        let (mut store, plan, _) = interleaved_fixture(8, 8, 256);
        let mut cache = ContainerLru::new(2);
        let report = cache.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert!(
            report.container_reads > 32,
            "expected thrashing, got {} reads",
            report.container_reads
        );
    }

    #[test]
    fn big_cache_fixes_interleaving() {
        let (mut store, plan, _) = interleaved_fixture(8, 8, 256);
        let mut cache = ContainerLru::new(8);
        let report = cache.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert_eq!(report.container_reads, 8);
    }

    #[test]
    fn reuse_across_restores_resets_state() {
        let (mut store, plan, expect) = sequential_fixture(2, 4, 128);
        let mut cache = ContainerLru::new(2);
        for _ in 0..2 {
            let mut out = Vec::new();
            cache.restore(&plan, &mut store, &mut out).unwrap();
            assert_eq!(out, expect);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        ContainerLru::new(0);
    }
}
