//! The staged concurrent restore engine.
//!
//! Restore is I/O-bound: every scheme in this crate spends its time waiting
//! for whole-container reads. The engine overlaps that latency with assembly
//! by splitting a restore into two stages connected by a bounded queue:
//!
//! * **Prefetcher** — 1..N I/O threads walk the restore plan's container
//!   *transition sequence* (consecutive duplicates collapsed) ahead of the
//!   consumer, read each container from the shared store, and push it into a
//!   [`BoundedQueue`] whose depth bounds how far ahead they run.
//! * **Assembly** — the calling thread runs the chosen [`RestoreCache`]
//!   scheme *unchanged* against a [`ContainerStore`] view that serves reads
//!   from the prefetched stream when possible and falls back to a direct
//!   (locked) store read otherwise.
//!
//! # Serial equivalence
//!
//! Every scheme is a deterministic function of the plan and the container
//! bytes it reads. The view returns, for each `read(id)`, exactly the bytes
//! the underlying store would return, and counts exactly one container read
//! in its *own* [`IoStats`] — the same accounting a serial restore observes
//! on the raw store. Whether a given container arrived via the prefetch
//! stream or the direct fallback changes only the [`RestoreStageCounters`],
//! never the data, so restored bytes, `container_reads`, and cache hit/miss
//! counters are byte/count-identical to the serial path at every thread
//! count (asserted by `tests/restore_differential.rs`).
//!
//! Error paths preserve equivalence too: a *failed* prefetch read is pushed
//! as an empty slot, not raised — a scheme whose cache absorbs that request
//! would never have issued it serially. Only when the scheme actually
//! requests the container does the fallback read reproduce the store's
//! error. On any assembly error the queue is cancelled, which unblocks every
//! prefetcher so the scope join cannot hang.

use std::collections::{BTreeMap, HashMap};
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use hidestore_storage::{Container, ContainerId, ContainerStore, IoStats, StorageError};
use hidestore_sync::{BoundedQueue, CancelGuard, ProducerGuard};

use crate::{RestoreCache, RestoreEntry, RestoreError, RestoreReport, RestoreStageCounters};
use std::sync::Arc;

/// Concurrency settings of the staged restore engine.
///
/// `threads <= 1` selects the serial path (the scheme runs directly against
/// the store); `threads >= 2` runs `threads - 1` prefetcher I/O threads with
/// assembly on the calling thread; `0` auto-detects from the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreConcurrency {
    /// Total restore threads: `0` = auto-detect, `1` = serial, `n >= 2` =
    /// `n - 1` prefetchers plus the assembling caller.
    pub threads: usize,
    /// Bounded depth of the prefetch queue (containers in flight).
    pub queue_depth: usize,
    /// Maximum prefetched containers the assembly stage parks while looking
    /// for the one a scheme requested; past this, requests fall back to
    /// direct reads.
    pub readahead_containers: usize,
}

impl Default for RestoreConcurrency {
    fn default() -> Self {
        RestoreConcurrency {
            threads: 1,
            queue_depth: 4,
            readahead_containers: 8,
        }
    }
}

impl RestoreConcurrency {
    /// The serial configuration (no prefetch threads).
    pub fn serial() -> Self {
        RestoreConcurrency::default()
    }

    /// Configuration with the given total thread count.
    pub fn threads(threads: usize) -> Self {
        RestoreConcurrency {
            threads,
            ..RestoreConcurrency::default()
        }
    }

    /// Variant with the given prefetch queue depth.
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Variant with the given readahead window (parked containers).
    pub fn with_readahead(mut self, readahead_containers: usize) -> Self {
        self.readahead_containers = readahead_containers;
        self
    }

    /// The concrete thread count after resolving `0` = auto.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            hidestore_hash::default_hash_threads()
        } else {
            self.threads
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` or `readahead_containers` is zero.
    pub fn validate(&self) {
        assert!(
            self.queue_depth >= 1,
            "restore queue depth must be at least 1"
        );
        assert!(
            self.readahead_containers >= 1,
            "restore readahead must be at least 1 container"
        );
    }
}

/// One prefetched slot: position in the transition sequence, the container
/// ID, and the container (`None` when the prefetch read failed — the direct
/// fallback read reproduces the error iff the scheme requests the ID).
type PrefetchItem = (usize, ContainerId, Option<Arc<Container>>);

fn lock<'m, T>(m: &'m Mutex<T>) -> MutexGuard<'m, T> {
    // The store behind the mutex is plain data; a panic in another stage
    // cannot leave it inconsistent, so a poisoned lock is safe to re-enter.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The assembly stage's [`ContainerStore`] view: serves scheme reads from
/// the prefetch stream, falling back to direct (locked) store reads, while
/// keeping its own serial-equivalent I/O statistics.
struct PrefetchView<'q, 'st, 's, S> {
    queue: &'q BoundedQueue<PrefetchItem>,
    store: &'st Mutex<&'s mut S>,
    /// Prefetched containers pulled off the stream but not yet requested.
    window: HashMap<ContainerId, Arc<Container>>,
    /// Reorder buffer: prefetchers finish out of order, the stream is
    /// consumed in sequence order.
    pending: BTreeMap<usize, (ContainerId, Option<Arc<Container>>)>,
    next_seq: usize,
    readahead: usize,
    stream_done: bool,
    stats: IoStats,
    hits: u64,
    misses: u64,
}

impl<S: ContainerStore> PrefetchView<'_, '_, '_, S> {
    /// The next prefetched slot in transition-sequence order, or `None` once
    /// the stream has ended.
    fn next_in_order(&mut self) -> Option<(ContainerId, Option<Arc<Container>>)> {
        loop {
            if let Some(slot) = self.pending.remove(&self.next_seq) {
                self.next_seq += 1;
                return Some(slot);
            }
            if self.stream_done {
                return None;
            }
            match self.queue.pop() {
                Some((seq, cid, payload)) => {
                    self.pending.insert(seq, (cid, payload));
                }
                None => self.stream_done = true,
            }
        }
    }
}

impl<S: ContainerStore> ContainerStore for PrefetchView<'_, '_, '_, S> {
    fn write(&mut self, container: Container) -> Result<(), StorageError> {
        Err(StorageError::Corrupt(format!(
            "restore view is read-only; attempted write of container {}",
            container.id()
        )))
    }

    fn read(&mut self, id: ContainerId) -> Result<Arc<Container>, StorageError> {
        // One counted read per request, exactly like the serial path.
        self.stats.container_reads += 1;
        if let Some(c) = self.window.remove(&id) {
            self.hits += 1;
            self.stats.bytes_read += c.used_bytes() as u64;
            return Ok(c);
        }
        // Pull the stream forward while the readahead window has room.
        while self.window.len() < self.readahead {
            match self.next_in_order() {
                None => break,
                Some((cid, Some(c))) if cid == id => {
                    self.hits += 1;
                    self.stats.bytes_read += c.used_bytes() as u64;
                    return Ok(c);
                }
                Some((cid, Some(c))) => {
                    self.window.insert(cid, c);
                }
                // Failed prefetch: not an error yet. The fallback below
                // reproduces it deterministically if this ID is requested.
                Some((_, None)) => {}
            }
        }
        self.misses += 1;
        let c = lock(self.store).read(id)?;
        self.stats.bytes_read += c.used_bytes() as u64;
        Ok(c)
    }

    fn contains(&self, id: ContainerId) -> bool {
        lock(self.store).contains(id)
    }

    fn remove(&mut self, id: ContainerId) -> Result<(), StorageError> {
        Err(StorageError::Corrupt(format!(
            "restore view is read-only; attempted removal of container {id}"
        )))
    }

    fn replace(&mut self, container: Container) -> Result<(), StorageError> {
        Err(StorageError::Corrupt(format!(
            "restore view is read-only; attempted replace of container {}",
            container.id()
        )))
    }

    fn ids(&self) -> Vec<ContainerId> {
        lock(self.store).ids()
    }

    fn stats(&self) -> IoStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }
}

/// Runs `scheme` over `plan` with the staged concurrent engine.
///
/// With `conc.threads <= 1` (or an empty plan) this is exactly
/// `scheme.restore(plan, store, out)`; otherwise `threads - 1` prefetcher
/// threads feed the assembling caller through a bounded queue. Restored
/// bytes, `container_reads`, and cache hit/miss counters are identical at
/// every thread count; the staged path additionally fills
/// [`RestoreReport::stage`].
///
/// # Errors
///
/// Exactly the errors of the serial restore: missing chunks/containers or
/// store failures surface as typed [`RestoreError`]s after every prefetch
/// thread has been unblocked and joined.
///
/// # Panics
///
/// Panics if `conc` is invalid (see [`RestoreConcurrency::validate`]).
pub fn restore_staged<S: ContainerStore + Send>(
    scheme: &mut dyn RestoreCache,
    plan: &[RestoreEntry],
    store: &mut S,
    out: &mut dyn Write,
    conc: &RestoreConcurrency,
) -> Result<RestoreReport, RestoreError> {
    conc.validate();
    let threads = conc.effective_threads();
    if threads <= 1 || plan.is_empty() {
        return scheme.restore(plan, store, out);
    }

    // The plan's container transition sequence: the order containers are
    // first needed in, with consecutive repeats collapsed.
    let mut sequence: Vec<ContainerId> = Vec::new();
    for entry in plan {
        if sequence.last() != Some(&entry.container) {
            sequence.push(entry.container);
        }
    }
    let prefetchers = (threads - 1).min(sequence.len()).max(1);
    let queue: BoundedQueue<PrefetchItem> = BoundedQueue::new(conc.queue_depth, prefetchers);
    let cursor = AtomicUsize::new(0);
    let prefetched = AtomicU64::new(0);
    let shared = Mutex::new(store);

    let (result, hits, misses) = std::thread::scope(|scope| {
        for _ in 0..prefetchers {
            scope.spawn(|| {
                let _done = ProducerGuard(&queue);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= sequence.len() {
                        break;
                    }
                    let id = sequence[i];
                    let payload = lock(&shared).read(id).ok();
                    if payload.is_some() {
                        prefetched.fetch_add(1, Ordering::Relaxed);
                    }
                    if queue.push((i, id, payload)).is_err() {
                        break; // cancelled: assembly errored out or finished
                    }
                }
            });
        }
        // Cancel on every exit from this block — scheme error, early return
        // with a cache-satisfied plan, or a panic unwinding through the
        // scheme — so blocked prefetchers always release before the join.
        let _cancel = CancelGuard(&queue);
        let mut view = PrefetchView {
            queue: &queue,
            store: &shared,
            window: HashMap::new(),
            pending: BTreeMap::new(),
            next_seq: 0,
            readahead: conc.readahead_containers,
            stream_done: false,
            stats: IoStats::default(),
            hits: 0,
            misses: 0,
        };
        let result = scheme.restore(plan, &mut view, out);
        (result, view.hits, view.misses)
    });

    let (blocked_full, blocked_empty) = queue.blocked_counts();
    let prefetched = prefetched.load(Ordering::Relaxed);
    result.map(|mut report| {
        report.stage = RestoreStageCounters {
            containers_prefetched: prefetched,
            prefetch_hits: hits,
            prefetch_misses: misses,
            prefetch_wasted: prefetched.saturating_sub(hits),
            blocked_full,
            blocked_empty,
            bytes_assembled: report.bytes_restored,
        };
        report
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{interleaved_fixture, sequential_fixture};
    use crate::{Alacc, BeladyCache, ChunkLru, ContainerLru, Faa};
    use hidestore_hash::Fingerprint;

    /// Fresh scheme instances per call: Alacc's adaptive split is carried
    /// state, so serial/staged comparisons must each start from new().
    fn all_schemes() -> Vec<fn() -> Box<dyn RestoreCache>> {
        vec![
            || Box::new(ContainerLru::new(4)),
            || Box::new(ChunkLru::new(1 << 20)),
            || Box::new(Faa::new(1 << 14)),
            || Box::new(Alacc::new(1 << 14, 1 << 14)),
            || Box::new(BeladyCache::new(4)),
        ]
    }

    /// Reports must match the serial ones in every field except `stage`.
    fn assert_equivalent(serial: &RestoreReport, staged: &RestoreReport, tag: &str) {
        let mut stripped = *staged;
        stripped.stage = RestoreStageCounters::default();
        assert_eq!(serial, &stripped, "{tag}");
    }

    #[test]
    fn staged_matches_serial_for_every_scheme_and_thread_count() {
        for threads in [2usize, 4, 9] {
            for make in all_schemes() {
                let mut serial_scheme = make();
                let tag = format!("{}@{threads}", serial_scheme.name());
                let (mut s1, plan, expect) = interleaved_fixture(8, 16, 512);
                let serial = serial_scheme
                    .restore(&plan, &mut s1, &mut Vec::new())
                    .unwrap();

                let mut staged_scheme = make();
                let (mut s2, _, _) = interleaved_fixture(8, 16, 512);
                let mut out = Vec::new();
                let conc = RestoreConcurrency::threads(threads).with_queue_depth(2);
                let staged =
                    restore_staged(staged_scheme.as_mut(), &plan, &mut s2, &mut out, &conc)
                        .unwrap();
                assert_eq!(out, expect, "{tag}: bytes differ");
                assert_equivalent(&serial, &staged, &tag);
            }
        }
    }

    #[test]
    fn serial_config_is_passthrough_with_zero_stage_counters() {
        let (mut store, plan, expect) = sequential_fixture(4, 8, 256);
        let mut out = Vec::new();
        let report = restore_staged(
            &mut Faa::new(1 << 14),
            &plan,
            &mut store,
            &mut out,
            &RestoreConcurrency::serial(),
        )
        .unwrap();
        assert_eq!(out, expect);
        assert_eq!(report.stage, RestoreStageCounters::default());
    }

    #[test]
    fn staged_records_prefetch_activity() {
        let (mut store, plan, _) = sequential_fixture(8, 8, 256);
        let conc = RestoreConcurrency::threads(2).with_queue_depth(2);
        let report = restore_staged(
            &mut Faa::new(1 << 20),
            &plan,
            &mut store,
            &mut Vec::new(),
            &conc,
        )
        .unwrap();
        assert!(report.stage.containers_prefetched > 0);
        assert_eq!(
            report.stage.prefetch_hits + report.stage.prefetch_misses,
            report.container_reads
        );
        assert_eq!(report.stage.bytes_assembled, report.bytes_restored);
        assert_eq!(
            report.stage.prefetch_wasted,
            report.stage.containers_prefetched - report.stage.prefetch_hits
        );
    }

    #[test]
    fn empty_plan_is_trivial_at_any_thread_count() {
        for threads in [1usize, 2, 8] {
            let (mut store, _, _) = sequential_fixture(1, 1, 64);
            let report = restore_staged(
                &mut Faa::new(1 << 14),
                &[],
                &mut store,
                &mut Vec::new(),
                &RestoreConcurrency::threads(threads),
            )
            .unwrap();
            assert_eq!(report, RestoreReport::default());
        }
    }

    #[test]
    fn missing_container_cancels_and_errors_at_every_thread_count() {
        for threads in [2usize, 8] {
            let (mut store, _, _) = sequential_fixture(2, 4, 128);
            let plan = vec![RestoreEntry::new(
                Fingerprint::synthetic(1),
                64,
                ContainerId::new(99),
            )];
            for make in all_schemes() {
                let mut scheme = make();
                let err = restore_staged(
                    scheme.as_mut(),
                    &plan,
                    &mut store,
                    &mut Vec::new(),
                    &RestoreConcurrency::threads(threads),
                )
                .unwrap_err();
                assert!(
                    matches!(err, RestoreError::Storage(_)),
                    "{}@{threads}: {err}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn missing_chunk_surfaces_through_the_staged_path() {
        let (mut store, mut plan, _) = sequential_fixture(2, 4, 128);
        plan[0].fingerprint = Fingerprint::synthetic(u64::MAX);
        let err = restore_staged(
            &mut Faa::new(1 << 14),
            &plan,
            &mut store,
            &mut Vec::new(),
            &RestoreConcurrency::threads(4),
        )
        .unwrap_err();
        assert!(matches!(err, RestoreError::MissingChunk { .. }), "{err}");
    }

    #[test]
    fn tiny_queue_and_readahead_still_equivalent() {
        let (mut s1, plan, expect) = interleaved_fixture(6, 12, 256);
        let mut scheme = ContainerLru::new(2);
        let serial = scheme.restore(&plan, &mut s1, &mut Vec::new()).unwrap();
        let (mut s2, _, _) = interleaved_fixture(6, 12, 256);
        let mut out = Vec::new();
        let conc = RestoreConcurrency::threads(3)
            .with_queue_depth(1)
            .with_readahead(1);
        let staged = restore_staged(&mut scheme, &plan, &mut s2, &mut out, &conc).unwrap();
        assert_eq!(out, expect);
        assert_equivalent(&serial, &staged, "container-lru@3 depth1 ra1");
    }

    #[test]
    fn effective_threads_resolve() {
        assert_eq!(RestoreConcurrency::serial().effective_threads(), 1);
        assert_eq!(RestoreConcurrency::threads(8).effective_threads(), 8);
        assert_eq!(
            RestoreConcurrency::threads(0).effective_threads(),
            hidestore_hash::default_hash_threads()
        );
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_rejected() {
        RestoreConcurrency::serial().with_queue_depth(0).validate();
    }

    #[test]
    #[should_panic(expected = "readahead")]
    fn zero_readahead_rejected() {
        RestoreConcurrency::serial().with_readahead(0).validate();
    }
}
