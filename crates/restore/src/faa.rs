//! Forward Assembly Area (Lillibridge, Eshghi & Bhagwat, FAST'13).

use std::collections::HashMap;
use std::io::Write;

use hidestore_storage::{ContainerId, ContainerStore};

use crate::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};

/// Forward-assembly restore.
///
/// The plan is processed in *areas* of up to `area_bytes` of output. For
/// each area, the recipe tells in advance which chunk goes at which offset,
/// so each needed container is read **exactly once per area** and every slot
/// it can fill is filled on that single read. This look-ahead is why FAA
/// beats plain LRU caching and why Destor uses it as the default restore
/// algorithm (the paper runs all non-ALACC schemes with FAA).
#[derive(Debug, Clone)]
pub struct Faa {
    area_bytes: usize,
}

impl Faa {
    /// Creates an FAA with the given assembly-area size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `area_bytes == 0`.
    pub fn new(area_bytes: usize) -> Self {
        assert!(area_bytes > 0, "assembly area must be non-zero");
        Faa { area_bytes }
    }

    /// The configured assembly-area size.
    pub fn area_bytes(&self) -> usize {
        self.area_bytes
    }

    /// Splits the plan into areas of at most `area_bytes` (a chunk larger
    /// than the area gets an area of its own).
    fn areas<'a>(&self, plan: &'a [RestoreEntry]) -> Vec<&'a [RestoreEntry]> {
        let mut areas = Vec::new();
        let mut start = 0;
        let mut acc = 0usize;
        for (i, entry) in plan.iter().enumerate() {
            if acc + entry.size as usize > self.area_bytes && i > start {
                areas.push(&plan[start..i]);
                start = i;
                acc = 0;
            }
            acc += entry.size as usize;
        }
        if start < plan.len() {
            areas.push(&plan[start..]);
        }
        areas
    }
}

impl RestoreCache for Faa {
    fn restore(
        &mut self,
        plan: &[RestoreEntry],
        store: &mut dyn ContainerStore,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, RestoreError> {
        let reads_before = store.stats().container_reads;
        let mut bytes = 0u64;
        for area in self.areas(plan) {
            // Slot layout of the area.
            let mut offsets = Vec::with_capacity(area.len());
            let mut total = 0usize;
            let mut by_container: HashMap<ContainerId, Vec<usize>> = HashMap::new();
            for (i, entry) in area.iter().enumerate() {
                offsets.push(total);
                total += entry.size as usize;
                by_container.entry(entry.container).or_default().push(i);
            }
            let mut buffer = vec![0u8; total];
            // Read containers in order of first need.
            let mut order: Vec<ContainerId> = Vec::new();
            for entry in area {
                if !order.contains(&entry.container) {
                    order.push(entry.container);
                }
            }
            for cid in order {
                let container = store.read(cid)?;
                for &slot in &by_container[&cid] {
                    let entry = &area[slot];
                    let data =
                        container
                            .get(&entry.fingerprint)
                            .ok_or(RestoreError::MissingChunk {
                                fingerprint: entry.fingerprint,
                                container: cid,
                            })?;
                    debug_assert_eq!(data.len(), entry.size as usize);
                    buffer[offsets[slot]..offsets[slot] + data.len()].copy_from_slice(data);
                }
            }
            out.write_all(&buffer)?;
            bytes += total as u64;
        }
        let reads = store.stats().container_reads - reads_before;
        Ok(RestoreReport {
            bytes_restored: bytes,
            container_reads: reads,
            // FAA keeps no cache across areas: every counted read is a miss.
            cache_hits: 0,
            cache_misses: reads,
            ..RestoreReport::default()
        })
    }

    fn name(&self) -> &'static str {
        "faa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{interleaved_fixture, sequential_fixture};

    #[test]
    fn interleaved_plan_one_read_per_container_per_area() {
        // All 8*8 chunks fit in one area: interleaving costs nothing.
        let (mut store, plan, _) = interleaved_fixture(8, 8, 256);
        let mut faa = Faa::new(8 * 8 * 256);
        let report = faa.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert_eq!(report.container_reads, 8);
    }

    #[test]
    fn small_area_rereads_containers() {
        // Area of one interleaved row: every area needs all 8 containers.
        let (mut store, plan, _) = interleaved_fixture(8, 8, 256);
        let mut faa = Faa::new(8 * 256);
        let report = faa.restore(&plan, &mut store, &mut Vec::new()).unwrap();
        assert_eq!(report.container_reads, 8 * 8);
    }

    #[test]
    fn areas_split_respects_byte_budget() {
        let (_, plan, _) = sequential_fixture(4, 4, 100);
        let faa = Faa::new(250);
        let areas = faa.areas(&plan);
        for area in &areas {
            let total: usize = area.iter().map(|e| e.size as usize).sum();
            assert!(total <= 250 || area.len() == 1);
        }
        let covered: usize = areas.iter().map(|a| a.len()).sum();
        assert_eq!(covered, plan.len());
    }

    #[test]
    fn oversized_chunk_gets_own_area() {
        let (_, plan, _) = sequential_fixture(1, 3, 1000);
        let faa = Faa::new(500);
        let areas = faa.areas(&plan);
        assert_eq!(areas.len(), 3);
        assert!(areas.iter().all(|a| a.len() == 1));
    }

    #[test]
    fn output_order_preserved_with_tiny_area() {
        let (mut store, plan, expect) = interleaved_fixture(4, 8, 128);
        let mut faa = Faa::new(300);
        let mut out = Vec::new();
        faa.restore(&plan, &mut store, &mut out).unwrap();
        assert_eq!(out, expect);
    }
}
