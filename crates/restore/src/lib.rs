#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Restore-phase caching schemes.
//!
//! Restoring a backup reads its recipe and fetches every chunk from the
//! container store. Because fragmented chunks scatter across many containers
//! (paper §2.3), the number of **container reads** dominates restore time;
//! the paper's §5.3 metric is the *speed factor* — mean MB restored per
//! container read — and all schemes here report it via [`RestoreReport`].
//!
//! Implemented schemes, matching the paper's comparison set:
//!
//! * [`ContainerLru`] — classic container-granular LRU cache.
//! * [`ChunkLru`] — chunk-granular LRU (holds hot chunks, not whole
//!   containers).
//! * [`Faa`] — Forward Assembly Area (Lillibridge et al., FAST'13): restores
//!   in fixed-size areas, reading each needed container exactly once per
//!   area. Destor's default restore algorithm, used by the paper for every
//!   scheme except ALACC.
//! * [`Alacc`] — Cao et al. (FAST'18): FAA plus an adaptive look-ahead
//!   chunk cache that retains chunks needed again beyond the current area.
//!
//! # Examples
//!
//! ```
//! use hidestore_restore::{Faa, RestoreCache, RestoreEntry};
//! use hidestore_storage::{Container, ContainerId, ContainerStore, MemoryContainerStore};
//! use hidestore_hash::Fingerprint;
//!
//! let mut store = MemoryContainerStore::new();
//! let mut c = Container::new(ContainerId::new(1), 4096);
//! let fp = Fingerprint::of(b"data");
//! c.try_add(fp, b"data");
//! store.write(c)?;
//!
//! let plan = vec![RestoreEntry::new(fp, 4, ContainerId::new(1))];
//! let mut out = Vec::new();
//! let report = Faa::new(1 << 20).restore(&plan, &mut store, &mut out)?;
//! assert_eq!(out, b"data");
//! assert_eq!(report.container_reads, 1);
//! # Ok::<(), hidestore_restore::RestoreError>(())
//! ```

mod alacc;
mod belady;
mod chunk_lru;
mod container_lru;
mod engine;
mod faa;
mod verify;

pub use alacc::Alacc;
pub use belady::BeladyCache;
pub use chunk_lru::ChunkLru;
pub use container_lru::ContainerLru;
pub use engine::{restore_staged, RestoreConcurrency};
pub use faa::Faa;
pub use verify::VerifyingRestore;

use std::fmt;
use std::io::Write;

use hidestore_hash::Fingerprint;
use hidestore_storage::{ContainerId, ContainerStore, StorageError};

/// One entry of a *resolved* restore plan: the chunk and the container that
/// physically holds it. (HiDeStore's recipe chains are resolved into this
/// form before restore; baseline recipes already are.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreEntry {
    /// Chunk fingerprint.
    pub fingerprint: Fingerprint,
    /// Chunk size in bytes.
    pub size: u32,
    /// Container physically holding the chunk.
    pub container: ContainerId,
}

impl RestoreEntry {
    /// Convenience constructor.
    pub fn new(fingerprint: Fingerprint, size: u32, container: ContainerId) -> Self {
        RestoreEntry {
            fingerprint,
            size,
            container,
        }
    }
}

/// Outcome of a restore run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RestoreReport {
    /// Logical bytes written to the output stream.
    pub bytes_restored: u64,
    /// Whole-container reads issued to the store.
    pub container_reads: u64,
    /// Chunk requests the scheme served from its own cached state without
    /// touching the store (scheme-defined: cached containers for
    /// [`ContainerLru`]/[`BeladyCache`], cached chunks for
    /// [`ChunkLru`]/[`Alacc`]; always zero for the cache-less [`Faa`]).
    pub cache_hits: u64,
    /// Cache misses — each one cost a container read, so this always equals
    /// [`RestoreReport::container_reads`] for the built-in schemes.
    pub cache_misses: u64,
    /// Per-stage counters of the staged concurrent engine; all zero for a
    /// serial (`threads <= 1`) restore.
    pub stage: RestoreStageCounters,
}

impl RestoreReport {
    /// The paper's §5.3 metric: mean MB restored per container read.
    /// Higher is better. Returns infinity for a zero-read restore.
    pub fn speed_factor(&self) -> f64 {
        if self.container_reads == 0 {
            return f64::INFINITY;
        }
        (self.bytes_restored as f64 / (1024.0 * 1024.0)) / self.container_reads as f64
    }
}

/// Per-stage counters of the staged concurrent restore engine (see
/// [`restore_staged`]). Scheduling-dependent (`blocked_*` vary run to run);
/// everything the correctness tests compare lives outside this struct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoreStageCounters {
    /// Containers the prefetcher stage read ahead of the assembly stage.
    pub containers_prefetched: u64,
    /// Scheme container requests served from prefetched data.
    pub prefetch_hits: u64,
    /// Scheme container requests that fell back to a direct store read
    /// (container not prefetched in time, or outside the readahead window).
    pub prefetch_misses: u64,
    /// Containers prefetched but never consumed by the assembly stage.
    pub prefetch_wasted: u64,
    /// Times a prefetcher sat blocked on a full queue (backpressure).
    pub blocked_full: u64,
    /// Times the assembly stage sat blocked on an empty queue.
    pub blocked_empty: u64,
    /// Bytes assembled into the output stream by the staged engine.
    pub bytes_assembled: u64,
}

/// Errors during restore.
#[derive(Debug)]
pub enum RestoreError {
    /// A chunk was not present in the container the plan named.
    MissingChunk {
        /// The missing chunk.
        fingerprint: Fingerprint,
        /// The container that was expected to hold it.
        container: ContainerId,
    },
    /// The container store failed.
    Storage(StorageError),
    /// Writing the output stream failed.
    Io(std::io::Error),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::MissingChunk {
                fingerprint,
                container,
            } => {
                write!(f, "chunk {fingerprint} not found in container {container}")
            }
            RestoreError::Storage(e) => write!(f, "container store error: {e}"),
            RestoreError::Io(e) => write!(f, "output write error: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Storage(e) => Some(e),
            RestoreError::Io(e) => Some(e),
            RestoreError::MissingChunk { .. } => None,
        }
    }
}

impl From<StorageError> for RestoreError {
    fn from(e: StorageError) -> Self {
        RestoreError::Storage(e)
    }
}

impl From<std::io::Error> for RestoreError {
    fn from(e: std::io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// A restore algorithm: assembles the stream described by `plan` from
/// `store` into `out`, minimizing container reads.
pub trait RestoreCache {
    /// Runs the restore.
    ///
    /// # Errors
    ///
    /// Fails if a container or chunk named by the plan is missing, or if
    /// writing to `out` fails. Bytes may have been partially written.
    fn restore(
        &mut self,
        plan: &[RestoreEntry],
        store: &mut dyn ContainerStore,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, RestoreError>;

    /// Short scheme name for reports (e.g. `"faa"`).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use hidestore_storage::{Container, MemoryContainerStore};

    /// Builds a store with `n_containers`, each holding `chunks_per`
    /// deterministic chunks, and the full sequential plan.
    pub fn sequential_fixture(
        n_containers: u32,
        chunks_per: u32,
        chunk_size: usize,
    ) -> (MemoryContainerStore, Vec<RestoreEntry>, Vec<u8>) {
        let mut store = MemoryContainerStore::new();
        let mut plan = Vec::new();
        let mut expect = Vec::new();
        for c in 1..=n_containers {
            let mut container =
                Container::new(ContainerId::new(c), chunks_per as usize * chunk_size);
            for i in 0..chunks_per {
                let data = vec![(c * 100 + i) as u8; chunk_size];
                let fp = Fingerprint::of(&data);
                container.try_add(fp, &data);
                plan.push(RestoreEntry::new(
                    fp,
                    chunk_size as u32,
                    ContainerId::new(c),
                ));
                expect.extend_from_slice(&data);
            }
            store.write(container).unwrap();
        }
        (store, plan, expect)
    }

    /// A fragmented plan: chunks alternate across all containers.
    pub fn interleaved_fixture(
        n_containers: u32,
        chunks_per: u32,
        chunk_size: usize,
    ) -> (MemoryContainerStore, Vec<RestoreEntry>, Vec<u8>) {
        let (store, mut plan, _) = sequential_fixture(n_containers, chunks_per, chunk_size);
        // Reorder: round-robin across containers.
        let mut reordered = Vec::with_capacity(plan.len());
        for i in 0..chunks_per as usize {
            for c in 0..n_containers as usize {
                reordered.push(plan[c * chunks_per as usize + i]);
            }
        }
        plan = reordered;
        // Rebuild the expected output by reading containers directly.
        let mut store = store;
        let mut expect = Vec::new();
        for e in &plan {
            let c = store.read(e.container).unwrap();
            expect.extend_from_slice(c.get(&e.fingerprint).unwrap());
        }
        store.reset_stats();
        (store, plan, expect)
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;

    fn all_schemes() -> Vec<Box<dyn RestoreCache>> {
        vec![
            Box::new(ContainerLru::new(4)),
            Box::new(ChunkLru::new(1 << 20)),
            Box::new(Faa::new(1 << 20)),
            Box::new(Alacc::new(1 << 20, 1 << 20)),
        ]
    }

    #[test]
    fn every_scheme_restores_exact_bytes_sequential() {
        for mut scheme in all_schemes() {
            let (mut store, plan, expect) = sequential_fixture(8, 16, 512);
            let mut out = Vec::new();
            let report = scheme.restore(&plan, &mut store, &mut out).unwrap();
            assert_eq!(out, expect, "{}", scheme.name());
            assert_eq!(report.bytes_restored, expect.len() as u64);
        }
    }

    #[test]
    fn every_scheme_restores_exact_bytes_interleaved() {
        for mut scheme in all_schemes() {
            let (mut store, plan, expect) = interleaved_fixture(8, 16, 512);
            let mut out = Vec::new();
            scheme.restore(&plan, &mut store, &mut out).unwrap();
            assert_eq!(out, expect, "{}", scheme.name());
        }
    }

    #[test]
    fn sequential_plan_needs_one_read_per_container() {
        for mut scheme in all_schemes() {
            let (mut store, plan, _) = sequential_fixture(8, 16, 512);
            let report = scheme.restore(&plan, &mut store, &mut Vec::new()).unwrap();
            assert_eq!(report.container_reads, 8, "{}", scheme.name());
        }
    }

    #[test]
    fn speed_factor_math() {
        let r = RestoreReport {
            bytes_restored: 8 * 1024 * 1024,
            container_reads: 4,
            ..RestoreReport::default()
        };
        assert!((r.speed_factor() - 2.0).abs() < 1e-9);
        let zero = RestoreReport {
            bytes_restored: 10,
            container_reads: 0,
            ..RestoreReport::default()
        };
        assert!(zero.speed_factor().is_infinite());
    }

    #[test]
    fn missing_chunk_reported() {
        let (mut store, mut plan, _) = sequential_fixture(2, 4, 128);
        plan[0].fingerprint = Fingerprint::synthetic(u64::MAX);
        for mut scheme in all_schemes() {
            let err = scheme
                .restore(&plan, &mut store, &mut Vec::new())
                .unwrap_err();
            assert!(
                matches!(err, RestoreError::MissingChunk { .. }),
                "{}: {err}",
                scheme.name()
            );
        }
    }

    #[test]
    fn missing_container_reported() {
        let (mut store, _, _) = sequential_fixture(1, 1, 64);
        let plan = vec![RestoreEntry::new(
            Fingerprint::synthetic(1),
            64,
            ContainerId::new(99),
        )];
        for mut scheme in all_schemes() {
            let err = scheme
                .restore(&plan, &mut store, &mut Vec::new())
                .unwrap_err();
            assert!(matches!(err, RestoreError::Storage(_)), "{}", scheme.name());
        }
    }

    #[test]
    fn empty_plan_is_trivial() {
        for mut scheme in all_schemes() {
            let (mut store, _, _) = sequential_fixture(1, 1, 64);
            let report = scheme.restore(&[], &mut store, &mut Vec::new()).unwrap();
            assert_eq!(report.bytes_restored, 0);
            assert_eq!(report.container_reads, 0);
        }
    }
}
