//! A restore wrapper that verifies chunk integrity on the fly.

use std::io::Write;

use hidestore_hash::Fingerprint;
use hidestore_storage::ContainerStore;

use crate::{RestoreCache, RestoreEntry, RestoreError, RestoreReport};

/// Wraps any restore scheme and re-hashes every restored chunk against its
/// recipe fingerprint, failing the restore on the first mismatch.
///
/// Verification costs one SHA-1 pass over the output, so production restores
/// run unverified and `hidestore verify`-style scrubs (or this wrapper, for
/// paranoid restores) check integrity explicitly. Container reads and the
/// speed factor are unchanged — verification is pure CPU.
///
/// # Examples
///
/// ```
/// use hidestore_restore::{Faa, RestoreCache, VerifyingRestore};
///
/// let cache = VerifyingRestore::new(Faa::new(1 << 20));
/// assert_eq!(cache.name(), "verifying");
/// ```
#[derive(Debug)]
pub struct VerifyingRestore<C> {
    inner: C,
}

impl<C: RestoreCache> VerifyingRestore<C> {
    /// Wraps a restore scheme.
    pub fn new(inner: C) -> Self {
        VerifyingRestore { inner }
    }

    /// Unwraps the inner scheme.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

/// A writer that slices the restored stream back into chunks and re-hashes
/// each against the plan.
struct VerifyingWriter<'a, W> {
    out: W,
    plan: &'a [RestoreEntry],
    next: usize,
    pending: Vec<u8>,
    mismatch: Option<(Fingerprint, hidestore_storage::ContainerId)>,
}

impl<W: Write> Write for VerifyingWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.pending.extend_from_slice(buf);
        // Consume whole chunks from the front of `pending`.
        while self.next < self.plan.len() {
            let want = self.plan[self.next].size as usize;
            if self.pending.len() < want {
                break;
            }
            let chunk: Vec<u8> = self.pending.drain(..want).collect();
            if Fingerprint::of(&chunk) != self.plan[self.next].fingerprint
                && self.mismatch.is_none()
            {
                self.mismatch = Some((
                    self.plan[self.next].fingerprint,
                    self.plan[self.next].container,
                ));
            }
            self.out.write_all(&chunk)?;
            self.next += 1;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

impl<C: RestoreCache> RestoreCache for VerifyingRestore<C> {
    fn restore(
        &mut self,
        plan: &[RestoreEntry],
        store: &mut dyn ContainerStore,
        out: &mut dyn Write,
    ) -> Result<RestoreReport, RestoreError> {
        let mut writer = VerifyingWriter {
            out,
            plan,
            next: 0,
            pending: Vec::new(),
            mismatch: None,
        };
        let report = self.inner.restore(plan, store, &mut writer)?;
        if let Some((fingerprint, container)) = writer.mismatch {
            return Err(RestoreError::MissingChunk {
                fingerprint,
                container,
            });
        }
        Ok(report)
    }

    fn name(&self) -> &'static str {
        "verifying"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::sequential_fixture;
    use crate::Faa;
    use hidestore_storage::{Container, ContainerId};

    #[test]
    fn clean_restore_passes() {
        let (mut store, plan, expect) = sequential_fixture(4, 8, 256);
        let mut cache = VerifyingRestore::new(Faa::new(1 << 18));
        let mut out = Vec::new();
        let report = cache.restore(&plan, &mut store, &mut out).unwrap();
        assert_eq!(out, expect);
        assert_eq!(report.bytes_restored, expect.len() as u64);
    }

    #[test]
    fn detects_silent_corruption() {
        // Build a container whose chunk content does not match the plan's
        // fingerprint (simulating bit rot that kept the metadata intact).
        let (mut store, mut plan, _) = sequential_fixture(2, 4, 128);
        let honest_fp = plan[0].fingerprint;
        let mut evil = Container::new(ContainerId::new(9), 1024);
        evil.try_add(honest_fp, b"not the original content");
        store.write(evil).unwrap();
        plan[0].container = ContainerId::new(9);
        plan[0].size = 24;

        let mut cache = VerifyingRestore::new(Faa::new(1 << 18));
        let err = cache
            .restore(&plan, &mut store, &mut Vec::new())
            .unwrap_err();
        assert!(
            matches!(err, RestoreError::MissingChunk { fingerprint, .. } if fingerprint == honest_fp)
        );

        // The unverified scheme restores the corrupt bytes silently.
        let mut plain = Faa::new(1 << 18);
        assert!(plain.restore(&plan, &mut store, &mut Vec::new()).is_ok());
    }

    #[test]
    fn reads_and_speed_factor_unchanged() {
        let (mut s1, plan, _) = sequential_fixture(4, 8, 256);
        let (mut s2, _, _) = sequential_fixture(4, 8, 256);
        let plain = Faa::new(1 << 18)
            .restore(&plan, &mut s1, &mut Vec::new())
            .unwrap();
        let verified = VerifyingRestore::new(Faa::new(1 << 18))
            .restore(&plan, &mut s2, &mut Vec::new())
            .unwrap();
        assert_eq!(plain.container_reads, verified.container_reads);
    }
}
