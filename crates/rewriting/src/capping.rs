//! Capping (Lillibridge, Eshghi & Bhagwat, FAST'13).

use std::collections::HashMap;

use hidestore_storage::{ContainerId, VersionId};

use crate::{RewritePolicy, SegmentChunk};

/// Caps the number of old containers each segment may reference.
///
/// Per segment, containers are ranked by how many of the segment's bytes
/// they supply. The top `cap` containers keep their references; duplicates
/// whose containers rank below the cap are rewritten. A restore of this
/// segment therefore reads at most `cap` old containers plus the new
/// containers written for it — the paper's capping guarantee.
///
/// # Examples
///
/// ```
/// use hidestore_rewriting::{Capping, RewritePolicy};
/// use hidestore_storage::VersionId;
///
/// let mut p = Capping::new(10);
/// p.begin_version(VersionId::new(1));
/// assert_eq!(p.name(), "capping");
/// ```
#[derive(Debug, Clone)]
pub struct Capping {
    cap: usize,
    rewritten_bytes: u64,
    rewritten_chunks: u64,
}

impl Capping {
    /// Creates a capping policy allowing `cap` referenced old containers per
    /// segment.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "cap must be at least 1");
        Capping {
            cap,
            rewritten_bytes: 0,
            rewritten_chunks: 0,
        }
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of chunks rewritten so far.
    pub fn rewritten_chunks(&self) -> u64 {
        self.rewritten_chunks
    }
}

impl RewritePolicy for Capping {
    fn begin_version(&mut self, _version: VersionId) {}

    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool> {
        // Rank containers by the bytes they contribute to this segment.
        let mut contribution: HashMap<ContainerId, u64> = HashMap::new();
        for chunk in segment {
            if let Some(c) = chunk.existing {
                *contribution.entry(c).or_default() += chunk.size as u64;
            }
        }
        let mut ranked: Vec<(ContainerId, u64)> = contribution.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
        let kept: std::collections::HashSet<ContainerId> =
            ranked.iter().take(self.cap).map(|&(c, _)| c).collect();
        segment
            .iter()
            .map(|chunk| match chunk.existing {
                Some(c) if !kept.contains(&c) => {
                    self.rewritten_bytes += chunk.size as u64;
                    self.rewritten_chunks += 1;
                    true
                }
                _ => false,
            })
            .collect()
    }

    fn end_version(&mut self) {}

    fn rewritten_bytes(&self) -> u64 {
        self.rewritten_bytes
    }

    fn name(&self) -> &'static str {
        "capping"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::segment_from;

    #[test]
    fn references_capped_to_top_containers() {
        let mut p = Capping::new(2);
        p.begin_version(VersionId::new(1));
        // Container 1 supplies 3 chunks, container 2 supplies 2, 3 and 4 one each.
        let seg = segment_from(&[1, 1, 1, 2, 2, 3, 4]);
        let d = p.process_segment(&seg);
        assert_eq!(d, vec![false, false, false, false, false, true, true]);
        assert_eq!(p.rewritten_chunks(), 2);
        assert_eq!(p.rewritten_bytes(), 2 * 4096);
    }

    #[test]
    fn under_cap_segment_untouched() {
        let mut p = Capping::new(4);
        p.begin_version(VersionId::new(1));
        let seg = segment_from(&[1, 2, 3, 0]);
        assert_eq!(p.process_segment(&seg), vec![false; 4]);
        assert_eq!(p.rewritten_bytes(), 0);
    }

    #[test]
    fn lower_cap_rewrites_more() {
        let seg = segment_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut strict = Capping::new(1);
        let mut loose = Capping::new(6);
        strict.begin_version(VersionId::new(1));
        loose.begin_version(VersionId::new(1));
        let strict_rewrites = strict.process_segment(&seg).iter().filter(|&&r| r).count();
        let loose_rewrites = loose.process_segment(&seg).iter().filter(|&&r| r).count();
        assert!(strict_rewrites > loose_rewrites);
        assert_eq!(strict_rewrites, 7);
        assert_eq!(loose_rewrites, 2);
    }

    #[test]
    fn deterministic_tie_break() {
        let seg = segment_from(&[1, 2]);
        let mut a = Capping::new(1);
        let mut b = Capping::new(1);
        a.begin_version(VersionId::new(1));
        b.begin_version(VersionId::new(1));
        assert_eq!(a.process_segment(&seg), b.process_segment(&seg));
    }

    #[test]
    #[should_panic(expected = "cap must be")]
    fn zero_cap_rejected() {
        Capping::new(0);
    }
}
