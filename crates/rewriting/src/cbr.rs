//! CBR — context-based rewriting (Kaczmarczyk et al., SYSTOR'12).

use std::collections::HashMap;

use hidestore_storage::{ContainerId, VersionId};

use crate::{RewritePolicy, SegmentChunk};

/// Context-based rewriting.
///
/// For every duplicate, CBR compares the chunk's *stream context* (the bytes
/// around it in the backup stream) with its *disk context* (the container
/// holding the existing copy). If the container contributes only a small
/// fraction of the stream context — **low rewrite utility** — referencing it
/// would buy little and cost a seek, so the chunk is rewritten. To bound the
/// deduplication-ratio loss, rewrites are limited to a configurable fraction
/// of each version's bytes (the original paper uses 5%).
///
/// # Examples
///
/// ```
/// use hidestore_rewriting::{Cbr, RewritePolicy};
///
/// let p = Cbr::new(0.25, 0.05);
/// assert_eq!(p.name(), "cbr");
/// ```
#[derive(Debug, Clone)]
pub struct Cbr {
    /// Rewrite duplicates whose container supplies less than this fraction
    /// of the stream-context bytes.
    utility_threshold: f64,
    /// Maximum fraction of a version's bytes that may be rewritten.
    budget_fraction: f64,
    version_bytes: u64,
    version_rewritten: u64,
    rewritten_bytes: u64,
}

impl Default for Cbr {
    fn default() -> Self {
        // SYSTOR'12 defaults: 70% minimal utility within the context window,
        // 5% rewrite budget. Our utility is measured against the stream
        // context, so the practical threshold is lower.
        Cbr::new(0.25, 0.05)
    }
}

impl Cbr {
    /// Creates a CBR policy.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utility_threshold <= 1` and
    /// `0 < budget_fraction <= 1`.
    pub fn new(utility_threshold: f64, budget_fraction: f64) -> Self {
        assert!(
            utility_threshold > 0.0 && utility_threshold <= 1.0,
            "utility threshold must be in (0, 1]"
        );
        assert!(
            budget_fraction > 0.0 && budget_fraction <= 1.0,
            "budget fraction must be in (0, 1]"
        );
        Cbr {
            utility_threshold,
            budget_fraction,
            version_bytes: 0,
            version_rewritten: 0,
            rewritten_bytes: 0,
        }
    }
}

impl RewritePolicy for Cbr {
    fn begin_version(&mut self, _version: VersionId) {
        self.version_bytes = 0;
        self.version_rewritten = 0;
    }

    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool> {
        let segment_bytes: u64 = segment.iter().map(|c| c.size as u64).sum();
        self.version_bytes += segment_bytes;
        if segment_bytes == 0 {
            return vec![false; segment.len()];
        }
        // The segment *is* the stream context: utility of a container is the
        // fraction of context bytes it supplies.
        let mut supplied: HashMap<ContainerId, u64> = HashMap::new();
        for chunk in segment {
            if let Some(c) = chunk.existing {
                *supplied.entry(c).or_default() += chunk.size as u64;
            }
        }
        let budget = (self.version_bytes as f64 * self.budget_fraction) as u64;
        segment
            .iter()
            .map(|chunk| {
                let Some(c) = chunk.existing else {
                    return false;
                };
                let utility = supplied[&c] as f64 / segment_bytes as f64;
                if utility < self.utility_threshold
                    && self.version_rewritten + chunk.size as u64 <= budget
                {
                    self.version_rewritten += chunk.size as u64;
                    self.rewritten_bytes += chunk.size as u64;
                    true
                } else {
                    false
                }
            })
            .collect()
    }

    fn end_version(&mut self) {}

    fn rewritten_bytes(&self) -> u64 {
        self.rewritten_bytes
    }

    fn name(&self) -> &'static str {
        "cbr"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::segment_from;

    #[test]
    fn low_utility_duplicates_rewritten() {
        let mut p = Cbr::new(0.3, 1.0);
        p.begin_version(VersionId::new(1));
        // Container 1 supplies 6/8 of the segment (75% utility, kept);
        // containers 2 and 3 supply 1/8 each (12.5%, rewritten).
        let seg = segment_from(&[1, 1, 1, 1, 1, 1, 2, 3]);
        let d = p.process_segment(&seg);
        assert_eq!(
            d,
            vec![false, false, false, false, false, false, true, true]
        );
    }

    #[test]
    fn budget_caps_rewrites() {
        // Budget of ~one chunk: only the first low-utility duplicate goes.
        let mut p = Cbr::new(0.9, 0.15);
        p.begin_version(VersionId::new(1));
        let seg = segment_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let d = p.process_segment(&seg);
        assert_eq!(d.iter().filter(|&&r| r).count(), 1);
        assert_eq!(p.rewritten_bytes(), 4096);
    }

    #[test]
    fn budget_resets_per_version() {
        let mut p = Cbr::new(0.9, 0.15);
        let seg = segment_from(&[1, 2, 3, 4, 5, 6, 7, 8]);
        p.begin_version(VersionId::new(1));
        p.process_segment(&seg);
        p.end_version();
        p.begin_version(VersionId::new(2));
        let d = p.process_segment(&seg);
        assert_eq!(
            d.iter().filter(|&&r| r).count(),
            1,
            "fresh budget per version"
        );
    }

    #[test]
    fn high_utility_never_rewritten() {
        let mut p = Cbr::default();
        p.begin_version(VersionId::new(1));
        let seg = segment_from(&[1; 16]);
        assert_eq!(p.process_segment(&seg), vec![false; 16]);
        assert_eq!(p.rewritten_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "utility threshold")]
    fn bad_threshold_rejected() {
        Cbr::new(0.0, 0.05);
    }
}
