//! CFL-based selective rewriting (Nam, Park & Du; the Chunk Fragmentation
//! Level monitor the paper cites as [27]).

use std::collections::HashMap;

use hidestore_storage::{ContainerId, VersionId};

use crate::{RewritePolicy, SegmentChunk};

/// Selective rewriting driven by the Chunk Fragmentation Level.
///
/// CFL is defined (paper §6) as the *optimal* chunk fragmentation — the
/// number of containers the stream would occupy if written contiguously —
/// divided by the *current* fragmentation — the number of containers it
/// actually references. CFL == 1 means perfect locality; low CFL means a
/// restore must touch many containers.
///
/// The monitor recomputes CFL as the version streams through. While CFL is
/// at or above the threshold, nothing is rewritten. When it falls below,
/// *selective rewrite* kicks in: duplicates from sparsely-contributing
/// containers are rewritten until CFL recovers.
#[derive(Debug, Clone)]
pub struct CflRewrite {
    threshold: f64,
    container_capacity: u64,
    /// Bytes processed in the current version.
    stream_bytes: u64,
    /// Containers referenced by the current version so far.
    referenced: HashMap<ContainerId, u64>,
    /// Containers newly written for this version (estimated from sizes).
    new_bytes: u64,
    rewritten_bytes: u64,
}

impl Default for CflRewrite {
    fn default() -> Self {
        CflRewrite::new(0.6, 4 * 1024 * 1024)
    }
}

impl CflRewrite {
    /// Creates a CFL monitor with the given CFL threshold and container
    /// capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < threshold <= 1` and `container_capacity > 0`.
    pub fn new(threshold: f64, container_capacity: u64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        assert!(
            container_capacity > 0,
            "container capacity must be non-zero"
        );
        CflRewrite {
            threshold,
            container_capacity,
            stream_bytes: 0,
            referenced: HashMap::new(),
            new_bytes: 0,
            rewritten_bytes: 0,
        }
    }

    /// The current chunk fragmentation level of the in-flight version.
    pub fn current_cfl(&self) -> f64 {
        let optimal = (self.stream_bytes as f64 / self.container_capacity as f64)
            .ceil()
            .max(1.0);
        let new_containers = (self.new_bytes as f64 / self.container_capacity as f64).ceil();
        let actual = (self.referenced.len() as f64 + new_containers).max(1.0);
        (optimal / actual).min(1.0)
    }
}

impl RewritePolicy for CflRewrite {
    fn begin_version(&mut self, _version: VersionId) {
        self.stream_bytes = 0;
        self.referenced.clear();
        self.new_bytes = 0;
    }

    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool> {
        // Rank this segment's containers: sparsely contributing ones are the
        // rewrite victims when CFL is unhealthy.
        let mut contribution: HashMap<ContainerId, u64> = HashMap::new();
        for chunk in segment {
            if let Some(c) = chunk.existing {
                *contribution.entry(c).or_default() += chunk.size as u64;
            }
        }
        let mut decisions = Vec::with_capacity(segment.len());
        for chunk in segment {
            self.stream_bytes += chunk.size as u64;
            match chunk.existing {
                None => {
                    self.new_bytes += chunk.size as u64;
                    decisions.push(false);
                }
                Some(c) => {
                    let cfl_unhealthy = self.current_cfl() < self.threshold;
                    // Victim test: container supplies < 10% of a container's
                    // worth of this segment.
                    let sparse = contribution[&c] * 10 < self.container_capacity;
                    if cfl_unhealthy && sparse {
                        self.rewritten_bytes += chunk.size as u64;
                        self.new_bytes += chunk.size as u64;
                        decisions.push(true);
                    } else {
                        *self.referenced.entry(c).or_insert(0) += chunk.size as u64;
                        decisions.push(false);
                    }
                }
            }
        }
        decisions
    }

    fn end_version(&mut self) {}

    fn rewritten_bytes(&self) -> u64 {
        self.rewritten_bytes
    }

    fn name(&self) -> &'static str {
        "cfl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::segment_from;

    #[test]
    fn healthy_cfl_means_no_rewrites() {
        // All duplicates in one container: CFL stays 1.0.
        let mut p = CflRewrite::new(0.6, 16 * 4096);
        p.begin_version(VersionId::new(1));
        let seg = segment_from(&[1; 16]);
        assert_eq!(p.process_segment(&seg), vec![false; 16]);
        assert!((p.current_cfl() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fragmentation_triggers_rewrites() {
        // Tiny containers + every duplicate from a different container:
        // CFL collapses and sparse victims get rewritten.
        let mut p = CflRewrite::new(0.8, 64 * 4096);
        p.begin_version(VersionId::new(1));
        let refs: Vec<u32> = (1..=64).collect();
        let d = p.process_segment(&segment_from(&refs));
        let rewrites = d.iter().filter(|&&r| r).count();
        assert!(rewrites > 32, "only {rewrites} rewrites");
        assert!(p.rewritten_bytes() > 0);
    }

    #[test]
    fn cfl_recovers_after_rewrites() {
        let mut p = CflRewrite::new(0.8, 64 * 4096);
        p.begin_version(VersionId::new(1));
        let refs: Vec<u32> = (1..=64).collect();
        p.process_segment(&segment_from(&refs));
        let cfl_after = p.current_cfl();
        // Without rewriting, 64 referenced containers for a one-container
        // stream would give CFL = 1/64. Rewriting must keep it far higher.
        assert!(cfl_after >= 0.25, "cfl {cfl_after}");
    }

    #[test]
    fn unique_chunks_count_toward_new_containers() {
        let mut p = CflRewrite::default();
        p.begin_version(VersionId::new(1));
        let seg = segment_from(&[0; 32]);
        assert_eq!(p.process_segment(&seg), vec![false; 32]);
        assert!((p.current_cfl() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn state_resets_between_versions() {
        let mut p = CflRewrite::new(0.8, 64 * 4096);
        p.begin_version(VersionId::new(1));
        let refs: Vec<u32> = (1..=64).collect();
        p.process_segment(&segment_from(&refs));
        p.end_version();
        p.begin_version(VersionId::new(2));
        assert!((p.current_cfl() - 1.0).abs() < 1e-9);
    }
}
