//! FBW — sliding look-back window rewriting (Cao, Wen, Wu & Du, FAST'19).
//!
//! The HiDeStore paper compares against this scheme as "FBW" [8] and, having
//! no released source, reimplemented it from the description — as do we.

use std::collections::{HashMap, VecDeque};

use hidestore_storage::{ContainerId, VersionId};

use crate::{RewritePolicy, SegmentChunk};

/// Sliding look-back window rewriting with an adaptive threshold.
///
/// Capping judges a container only by the *current* segment, so a container
/// that is heavily used by neighbouring segments can be unfairly rewritten.
/// FBW keeps a look-back window of the last `window_bytes` of stream and
/// judges each duplicate's container by its accumulated utilization over
/// window + current segment. Containers below the utilization threshold are
/// rewrite victims.
///
/// The threshold adapts per segment: if the rewrite ratio so far exceeds the
/// budget, the threshold is relaxed (fewer rewrites); if under-budget it is
/// tightened (more rewrites) — the "flexible" part of the scheme.
#[derive(Debug, Clone)]
pub struct Fbw {
    window_bytes: u64,
    budget_fraction: f64,
    /// Current utilization threshold (fraction of a container's capacity
    /// that must appear in the window for references to be kept).
    threshold: f64,
    container_capacity: u64,
    /// Look-back window: (container, bytes) per chunk, plus running totals.
    window: VecDeque<(Option<ContainerId>, u32)>,
    window_total: u64,
    utilization: HashMap<ContainerId, u64>,
    version_bytes: u64,
    version_rewritten: u64,
    rewritten_bytes: u64,
}

impl Default for Fbw {
    fn default() -> Self {
        Fbw::new(64 * 1024 * 1024, 0.02, 4 * 1024 * 1024)
    }
}

impl Fbw {
    /// Creates an FBW policy.
    ///
    /// * `window_bytes` — look-back window size,
    /// * `budget_fraction` — target fraction of version bytes to rewrite,
    /// * `container_capacity` — container size for utilization computation.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero/non-positive or `budget_fraction > 1`.
    pub fn new(window_bytes: u64, budget_fraction: f64, container_capacity: u64) -> Self {
        assert!(window_bytes > 0, "window must be non-zero");
        assert!(
            budget_fraction > 0.0 && budget_fraction <= 1.0,
            "budget fraction must be in (0, 1]"
        );
        assert!(
            container_capacity > 0,
            "container capacity must be non-zero"
        );
        Fbw {
            window_bytes,
            budget_fraction,
            threshold: 0.05,
            container_capacity,
            window: VecDeque::new(),
            window_total: 0,
            utilization: HashMap::new(),
            version_bytes: 0,
            version_rewritten: 0,
            rewritten_bytes: 0,
        }
    }

    /// The adaptive threshold currently in force.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    fn push_window(&mut self, container: Option<ContainerId>, size: u32) {
        self.window.push_back((container, size));
        self.window_total += size as u64;
        if let Some(c) = container {
            *self.utilization.entry(c).or_default() += size as u64;
        }
        while self.window_total > self.window_bytes {
            let Some((old_container, old_size)) = self.window.pop_front() else {
                break;
            };
            self.window_total -= old_size as u64;
            if let Some(c) = old_container {
                if let Some(u) = self.utilization.get_mut(&c) {
                    *u = u.saturating_sub(old_size as u64);
                    if *u == 0 {
                        self.utilization.remove(&c);
                    }
                }
            }
        }
    }

    fn adapt_threshold(&mut self) {
        if self.version_bytes == 0 {
            return;
        }
        let ratio = self.version_rewritten as f64 / self.version_bytes as f64;
        if ratio > self.budget_fraction {
            // Over budget: demand less utilization before rewriting less...
            // i.e. lower the threshold so fewer containers qualify as victims.
            self.threshold = (self.threshold * 0.5).max(1e-4);
        } else if ratio < self.budget_fraction * 0.5 {
            // Well under budget: be more aggressive.
            self.threshold = (self.threshold * 1.5).min(0.5);
        }
    }
}

impl RewritePolicy for Fbw {
    fn begin_version(&mut self, _version: VersionId) {
        self.window.clear();
        self.window_total = 0;
        self.utilization.clear();
        self.version_bytes = 0;
        self.version_rewritten = 0;
    }

    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool> {
        // Pre-charge the current segment into the utilization map so the
        // look-back judgment covers window + current segment.
        for chunk in segment {
            if let Some(c) = chunk.existing {
                *self.utilization.entry(c).or_default() += chunk.size as u64;
            }
        }
        let min_bytes = (self.threshold * self.container_capacity as f64) as u64;
        let mut decisions = Vec::with_capacity(segment.len());
        for chunk in segment {
            self.version_bytes += chunk.size as u64;
            let rewrite = match chunk.existing {
                Some(c) => self.utilization.get(&c).copied().unwrap_or(0) < min_bytes,
                None => false,
            };
            if rewrite {
                self.version_rewritten += chunk.size as u64;
                self.rewritten_bytes += chunk.size as u64;
            }
            decisions.push(rewrite);
        }
        // Remove the pre-charge and replay the segment into the window
        // (kept references only — rewritten chunks now live in new
        // containers, so they no longer pull utilization toward the old one).
        for chunk in segment {
            if let Some(c) = chunk.existing {
                if let Some(u) = self.utilization.get_mut(&c) {
                    *u = u.saturating_sub(chunk.size as u64);
                    if *u == 0 {
                        self.utilization.remove(&c);
                    }
                }
            }
        }
        for (chunk, &rewritten) in segment.iter().zip(&decisions) {
            let container = if rewritten { None } else { chunk.existing };
            self.push_window(container, chunk.size);
        }
        self.adapt_threshold();
        decisions
    }

    fn end_version(&mut self) {}

    fn rewritten_bytes(&self) -> u64 {
        self.rewritten_bytes
    }

    fn name(&self) -> &'static str {
        "fbw"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::segment_from;

    #[test]
    fn isolated_references_rewritten() {
        let mut p = Fbw::new(1 << 20, 0.5, 64 * 4096);
        p.begin_version(VersionId::new(1));
        // One chunk from container 1 among uniques: utilization of container
        // 1 is 4096/(64*4096) ≈ 1.6% < default 5% threshold.
        let seg = segment_from(&[0, 0, 0, 1, 0, 0, 0, 0]);
        let d = p.process_segment(&seg);
        assert!(d[3]);
        assert!(p.rewritten_bytes() > 0);
    }

    #[test]
    fn well_used_containers_kept() {
        let mut p = Fbw::new(1 << 20, 0.5, 16 * 4096);
        p.begin_version(VersionId::new(1));
        // Container 1 supplies 8 chunks = 50% of a container: kept.
        let seg = segment_from(&[1; 8]);
        assert_eq!(p.process_segment(&seg), vec![false; 8]);
    }

    #[test]
    fn look_back_window_rescues_spanning_containers() {
        // Container 1 contributes little per segment but a lot across two
        // adjacent segments: the look-back window must keep it.
        let mut p = Fbw::new(1 << 20, 0.5, 16 * 4096);
        p.begin_version(VersionId::new(1));
        let seg_a = segment_from(&[1, 1, 1, 1, 0, 0, 0, 0]);
        assert_eq!(p.process_segment(&seg_a), vec![false; 8]);
        // Alone, 2 chunks = 12.5% of capacity... above 5% default; use a
        // bigger capacity so the solo segment would fail but window saves it.
        let mut q = Fbw::new(1 << 20, 0.5, 64 * 4096);
        q.begin_version(VersionId::new(1));
        q.process_segment(&segment_from(&[1, 1, 1, 1, 0, 0, 0, 0]));
        let d = q.process_segment(&segment_from(&[1, 0, 0, 0, 0, 0, 0, 0]));
        assert!(!d[0], "window utilization should keep container 1");
    }

    #[test]
    fn threshold_adapts_downward_when_over_budget() {
        let mut p = Fbw::new(1 << 20, 0.01, 1 << 22);
        p.begin_version(VersionId::new(1));
        let before = p.threshold();
        // Everything is a scattered duplicate: massive rewriting, way over
        // the 1% budget, so the threshold must drop.
        let refs: Vec<u32> = (1..=32).collect();
        p.process_segment(&segment_from(&refs));
        assert!(p.threshold() < before);
    }

    #[test]
    fn window_eviction_keeps_totals_consistent() {
        let mut p = Fbw::new(8 * 4096, 0.5, 16 * 4096);
        p.begin_version(VersionId::new(1));
        for _ in 0..10 {
            p.process_segment(&segment_from(&[1, 1, 0, 0]));
        }
        assert!(p.window_total <= 8 * 4096);
        let sum: u64 = p.window.iter().map(|&(_, s)| s as u64).sum();
        assert_eq!(sum, p.window_total);
    }
}
