#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Duplicate-chunk rewriting schemes.
//!
//! Rewriting (paper §2.3) fights chunk fragmentation at its source: some
//! duplicate chunks are written *again* into the current version's new
//! containers so a restore of that version touches fewer old containers. The
//! price is a lower deduplication ratio — the rewritten copies consume space
//! — which is exactly the trade-off HiDeStore avoids (Figure 8).
//!
//! Implemented policies, matching the paper's comparison set:
//!
//! * [`NoRewrite`] — the baseline: every duplicate is referenced.
//! * [`Capping`] — Lillibridge et al. (FAST'13): cap the number of old
//!   containers a segment may reference; rewrite duplicates from the
//!   least-useful containers beyond the cap.
//! * [`Cbr`] — Kaczmarczyk et al. (SYSTOR'12) content/context-based
//!   rewriting: rewrite duplicates whose container contributes too little to
//!   the current stream context ("rewrite utility"), under a global rewrite
//!   budget.
//! * [`CflRewrite`] — Nam et al.: monitor the Chunk Fragmentation Level
//!   (optimal container count ÷ actual container count) and rewrite
//!   selectively while CFL is below threshold.
//! * [`Fbw`] — Cao et al. (FAST'19): a sliding look-back window variant of
//!   capping that sets the rewrite decision from container utilization
//!   within the window, adapting the threshold to a rewrite budget.
//! * [`SegAlign`] — RevDedup's (Ng & Lee) inline half: any sub-segment that
//!   contains a unique chunk is written whole, duplicates included, keeping
//!   segments physically contiguous for the newest version's restore.
//!
//! All policies implement [`RewritePolicy`]: the pipeline hands them each
//! segment *after* deduplication decisions and they answer, per chunk,
//! "reference the old copy" or "rewrite".

use hidestore_hash::Fingerprint;
use hidestore_storage::{ContainerId, VersionId};

mod capping;
mod cbr;
mod cfl;
mod fbw;
mod segalign;

pub use capping::Capping;
pub use cbr::Cbr;
pub use cfl::CflRewrite;
pub use fbw::Fbw;
pub use segalign::SegAlign;

/// One deduplicated chunk of a segment, as seen by a rewrite policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentChunk {
    /// The chunk's fingerprint.
    pub fingerprint: Fingerprint,
    /// Chunk size in bytes.
    pub size: u32,
    /// `Some(container)` if the index found an existing copy, `None` if the
    /// chunk is unique (unique chunks can never be "rewritten" — they are
    /// written regardless).
    pub existing: Option<ContainerId>,
}

impl SegmentChunk {
    /// Convenience constructor.
    pub fn new(fingerprint: Fingerprint, size: u32, existing: Option<ContainerId>) -> Self {
        SegmentChunk {
            fingerprint,
            size,
            existing,
        }
    }
}

/// A rewriting policy: decides which duplicate chunks to write again for
/// restore locality.
pub trait RewritePolicy {
    /// Called before the first segment of each version.
    fn begin_version(&mut self, version: VersionId);

    /// For each chunk of `segment`, returns `true` if the chunk should be
    /// rewritten into a new container. Unique chunks (no existing copy) must
    /// be answered `false`; the pipeline stores them anyway.
    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool>;

    /// Called after the last segment of the version.
    fn end_version(&mut self);

    /// Total bytes of duplicate chunks rewritten so far (the deduplication-
    /// ratio loss shown in the paper's Figure 8).
    fn rewritten_bytes(&self) -> u64;

    /// Short name for reports (e.g. `"capping"`).
    fn name(&self) -> &'static str;
}

/// The baseline policy: never rewrite anything.
///
/// # Examples
///
/// ```
/// use hidestore_rewriting::{NoRewrite, RewritePolicy, SegmentChunk};
/// use hidestore_hash::Fingerprint;
/// use hidestore_storage::{ContainerId, VersionId};
///
/// let mut p = NoRewrite::new();
/// p.begin_version(VersionId::new(1));
/// let seg = [SegmentChunk::new(Fingerprint::of(b"x"), 4, Some(ContainerId::new(1)))];
/// assert_eq!(p.process_segment(&seg), vec![false]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRewrite {
    _private: (),
}

impl NoRewrite {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        NoRewrite::default()
    }
}

impl RewritePolicy for NoRewrite {
    fn begin_version(&mut self, _version: VersionId) {}

    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool> {
        vec![false; segment.len()]
    }

    fn end_version(&mut self) {}

    fn rewritten_bytes(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

impl<T: RewritePolicy + ?Sized> RewritePolicy for Box<T> {
    fn begin_version(&mut self, version: VersionId) {
        (**self).begin_version(version)
    }

    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool> {
        (**self).process_segment(segment)
    }

    fn end_version(&mut self) {
        (**self).end_version()
    }

    fn rewritten_bytes(&self) -> u64 {
        (**self).rewritten_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Builds a segment where chunk `i` is a duplicate residing in container
    /// `containers[i]` (0 means unique).
    pub fn segment_from(containers: &[u32]) -> Vec<SegmentChunk> {
        containers
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                SegmentChunk::new(
                    Fingerprint::synthetic(i as u64),
                    4096,
                    (c != 0).then(|| ContainerId::new(c)),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::segment_from;
    use super::*;

    #[test]
    fn no_rewrite_never_rewrites() {
        let mut p = NoRewrite::new();
        p.begin_version(VersionId::new(1));
        let seg = segment_from(&[1, 2, 3, 0, 0, 4]);
        assert_eq!(p.process_segment(&seg), vec![false; 6]);
        p.end_version();
        assert_eq!(p.rewritten_bytes(), 0);
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn policies_never_rewrite_unique_chunks() {
        let seg = segment_from(&[0, 0, 0, 0]);
        let policies: Vec<Box<dyn RewritePolicy>> = vec![
            Box::new(NoRewrite::new()),
            Box::new(Capping::new(2)),
            Box::new(Cbr::default()),
            Box::new(CflRewrite::default()),
            Box::new(Fbw::default()),
            Box::new(SegAlign::new()),
        ];
        for mut p in policies {
            p.begin_version(VersionId::new(1));
            let decisions = p.process_segment(&seg);
            assert_eq!(decisions, vec![false; 4], "{}", p.name());
        }
    }

    #[test]
    fn policy_names_distinct() {
        let names = [
            NoRewrite::new().name(),
            Capping::new(2).name(),
            Cbr::default().name(),
            CflRewrite::default().name(),
            Fbw::default().name(),
            SegAlign::new().name(),
        ];
        let mut unique = names.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len());
    }
}
