//! Segment-aligned rewriting — the inline half of RevDedup (Ng & Lee).

use hidestore_hash::Fingerprint;
use hidestore_storage::VersionId;

use crate::{RewritePolicy, SegmentChunk};

/// Average chunks per sub-segment; matches the RevDedup index's anchor mask
/// so both sides agree on segment boundaries.
const ANCHOR_MASK: u64 = 0x7;

fn is_anchor(fp: &Fingerprint) -> bool {
    fp.prefix64() & ANCHOR_MASK == 0
}

/// Rewrites every duplicate in any sub-segment that contains a unique chunk.
///
/// RevDedup stores backups **segment at a time**: a segment either matches a
/// previous segment wholly (all duplicates, all referenced) or is written
/// wholly into new containers, duplicates included. That keeps each
/// segment's chunks physically contiguous, which is what gives the newest
/// version its near-sequential restore; the duplicate copies written along
/// the way are reclaimed later by the offline reverse-deduplication pass.
///
/// Sub-segments are cut at the same content-defined fingerprint anchors the
/// RevDedup index uses, so the decision granularity matches the index's
/// dedup granularity even when the pipeline hands over larger call windows.
///
/// # Examples
///
/// ```
/// use hidestore_rewriting::{RewritePolicy, SegAlign};
/// use hidestore_storage::VersionId;
///
/// let mut p = SegAlign::new();
/// p.begin_version(VersionId::new(1));
/// assert_eq!(p.name(), "seg-align");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SegAlign {
    rewritten_bytes: u64,
    rewritten_chunks: u64,
}

impl SegAlign {
    /// Creates the segment-aligned policy.
    pub fn new() -> Self {
        SegAlign::default()
    }

    /// Number of chunks rewritten so far.
    pub fn rewritten_chunks(&self) -> u64 {
        self.rewritten_chunks
    }
}

impl RewritePolicy for SegAlign {
    fn begin_version(&mut self, _version: VersionId) {}

    fn process_segment(&mut self, segment: &[SegmentChunk]) -> Vec<bool> {
        let mut out = vec![false; segment.len()];
        let mut start = 0;
        for end in 1..=segment.len() {
            if !(is_anchor(&segment[end - 1].fingerprint) || end == segment.len()) {
                continue;
            }
            let piece = &segment[start..end];
            // A mixed sub-segment (unique chunks alongside duplicates) is
            // written whole: rewrite its duplicates for contiguity.
            if piece.iter().any(|c| c.existing.is_none()) {
                for (slot, chunk) in out[start..end].iter_mut().zip(piece) {
                    if chunk.existing.is_some() {
                        *slot = true;
                        self.rewritten_bytes += chunk.size as u64;
                        self.rewritten_chunks += 1;
                    }
                }
            }
            start = end;
        }
        out
    }

    fn end_version(&mut self) {}

    fn rewritten_bytes(&self) -> u64 {
        self.rewritten_bytes
    }

    fn name(&self) -> &'static str {
        "seg-align"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_storage::ContainerId;

    /// A chunk whose anchor-ness and duplicate-ness are both controlled:
    /// `anchor` decides the fingerprint prefix, `dup` the existing copy.
    fn chunk(n: u64, anchor: bool, dup: bool) -> SegmentChunk {
        // Bit 0..=2 clear ⇔ anchor; offset keeps fingerprints distinct.
        let prefix = (n << 8) | if anchor { 0 } else { 1 };
        SegmentChunk::new(
            Fingerprint::synthetic(prefix),
            4096,
            dup.then(|| ContainerId::new(7)),
        )
    }

    #[test]
    fn all_duplicate_subsegment_is_referenced() {
        let mut p = SegAlign::new();
        p.begin_version(VersionId::new(1));
        let seg = [
            chunk(1, false, true),
            chunk(2, false, true),
            chunk(3, true, true),
        ];
        assert_eq!(p.process_segment(&seg), vec![false; 3]);
        assert_eq!(p.rewritten_bytes(), 0);
    }

    #[test]
    fn mixed_subsegment_rewrites_its_duplicates() {
        let mut p = SegAlign::new();
        p.begin_version(VersionId::new(1));
        let seg = [
            chunk(1, false, true),
            chunk(2, false, false), // one unique chunk taints the sub-segment
            chunk(3, true, true),
        ];
        assert_eq!(p.process_segment(&seg), vec![true, false, true]);
        assert_eq!(p.rewritten_chunks(), 2);
        assert_eq!(p.rewritten_bytes(), 2 * 4096);
    }

    #[test]
    fn anchors_isolate_subsegments() {
        let mut p = SegAlign::new();
        p.begin_version(VersionId::new(1));
        // Sub-segment 1 (chunks 0..=1, sealed by anchor) is all-duplicate;
        // sub-segment 2 (chunks 2..=3) is mixed.
        let seg = [
            chunk(1, false, true),
            chunk(2, true, true),
            chunk(3, false, false),
            chunk(4, true, true),
        ];
        assert_eq!(p.process_segment(&seg), vec![false, false, false, true]);
        assert_eq!(p.rewritten_chunks(), 1);
    }

    #[test]
    fn all_unique_subsegment_rewrites_nothing() {
        let mut p = SegAlign::new();
        p.begin_version(VersionId::new(1));
        let seg = [chunk(1, false, false), chunk(2, true, false)];
        assert_eq!(p.process_segment(&seg), vec![false; 2]);
        assert_eq!(p.rewritten_bytes(), 0);
    }
}
