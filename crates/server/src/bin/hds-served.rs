//! `hds-served` — serve a HiDeStore repository over TCP.
//!
//! ```text
//! hds-served <repo-dir> [--bind ADDR] [--port N] [--workers N] [--quiet]
//!            [--read-timeout SECS] [--write-timeout SECS]
//! ```
//!
//! Prints `hds-served listening on <addr>` once the listener is bound (the
//! line scripts parse to learn an ephemeral port), then runs until a client
//! sends the protocol's `Shutdown` request. Exits 0 after a graceful drain,
//! 1 on a startup/runtime failure, 2 on a usage error.

use std::process::ExitCode;

use hidestore_server::{serve, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hds-served <repo-dir> [--bind ADDR] [--port N] [--workers N] [--quiet]\n\
         \x20                        [--read-timeout SECS] [--write-timeout SECS]\n\
         \n\
         Serves the repository at <repo-dir> over the HiDeStore wire protocol.\n\
         --bind ADDR          address to listen on (default 127.0.0.1)\n\
         --port N             TCP port (default 0 = ephemeral)\n\
         --workers N          concurrent connections served (default 4)\n\
         --quiet              suppress per-request log lines\n\
         --read-timeout SECS  per-read socket deadline, 0 disables\n\
         --write-timeout SECS per-write socket deadline, 0 disables\n\
         (timeouts default to HDS_NET_TIMEOUT, then the repository's\n\
         net_timeout config, then 30s)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(repo) = args.next() else {
        return usage();
    };
    if repo.starts_with('-') {
        return usage();
    }
    let mut bind = "127.0.0.1".to_string();
    let mut port: u16 = 0;
    let mut config = ServerConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--bind" => match args.next() {
                Some(v) => bind = v,
                None => return usage(),
            },
            "--port" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => port = v,
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.workers = v,
                _ => return usage(),
            },
            "--quiet" => config.quiet = true,
            "--read-timeout" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.read_timeout = Some(std::time::Duration::from_secs(v)),
                None => return usage(),
            },
            "--write-timeout" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.write_timeout = Some(std::time::Duration::from_secs(v)),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    config.bind = format!("{bind}:{port}");

    let handle = match serve(&repo, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("hds-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts block on this exact line to learn the bound (ephemeral) port.
    println!("hds-served listening on {}", handle.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let stats = handle.join();
    eprintln!("hds-served: drained; final counters: {stats}");
    ExitCode::SUCCESS
}
