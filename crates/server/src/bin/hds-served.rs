//! `hds-served` — serve a HiDeStore repository over TCP.
//!
//! ```text
//! hds-served <repo-dir> [--bind ADDR] [--port N] [--workers N] [--quiet]
//!            [--read-timeout SECS] [--write-timeout SECS]
//!            [--tenants] [--max-tenants N] [--no-auto-tenants]
//!            [--quota-bytes N] [--quota-versions N]
//! ```
//!
//! Prints `hds-served listening on <addr>` once the listener is bound (the
//! line scripts parse to learn an ephemeral port), then runs until a client
//! sends the protocol's `Shutdown` request. Exits 0 after a graceful drain,
//! 1 on a startup/runtime failure, 2 on a usage error.

use std::process::ExitCode;

use hidestore_server::{serve, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hds-served <repo-dir> [--bind ADDR] [--port N] [--workers N] [--quiet]\n\
         \x20                        [--read-timeout SECS] [--write-timeout SECS]\n\
         \x20                        [--tenants] [--max-tenants N] [--no-auto-tenants]\n\
         \x20                        [--quota-bytes N] [--quota-versions N]\n\
         \n\
         Serves the repository at <repo-dir> over the HiDeStore wire protocol.\n\
         --bind ADDR          address to listen on (default 127.0.0.1)\n\
         --port N             TCP port (default 0 = ephemeral)\n\
         --workers N          concurrent connections served (default 4)\n\
         --quiet              suppress per-request log lines\n\
         --read-timeout SECS  per-read socket deadline, 0 disables\n\
         --write-timeout SECS per-write socket deadline, 0 disables\n\
         --tenants            serve <repo-dir> as a multi-tenant root\n\
         \x20                    (<repo-dir>/tenants/<id>/, one repository per\n\
         \x20                    tenant); without it the directory is one\n\
         \x20                    repository served as the `default` tenant\n\
         --max-tenants N      live tenant repository handles kept open\n\
         \x20                    (default 8; idle handles evicted LRU-first)\n\
         --no-auto-tenants    do not create tenant repositories on first\n\
         \x20                    backup; unknown tenants are refused\n\
         --quota-bytes N      default per-tenant logical-byte quota, 0 = none\n\
         --quota-versions N   default per-tenant retained-version quota,\n\
         \x20                    0 = none\n\
         (timeouts default to HDS_NET_TIMEOUT, then the repository's\n\
         net_timeout config, then 30s)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(repo) = args.next() else {
        return usage();
    };
    if repo.starts_with('-') {
        return usage();
    }
    let mut bind = "127.0.0.1".to_string();
    let mut port: u16 = 0;
    let mut config = ServerConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--bind" => match args.next() {
                Some(v) => bind = v,
                None => return usage(),
            },
            "--port" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => port = v,
                None => return usage(),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.workers = v,
                _ => return usage(),
            },
            "--quiet" => config.quiet = true,
            "--read-timeout" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.read_timeout = Some(std::time::Duration::from_secs(v)),
                None => return usage(),
            },
            "--write-timeout" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => config.write_timeout = Some(std::time::Duration::from_secs(v)),
                None => return usage(),
            },
            "--tenants" => config.tenants_root = true,
            "--max-tenants" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => config.max_live_tenants = v,
                _ => return usage(),
            },
            "--no-auto-tenants" => config.auto_create_tenants = false,
            "--quota-bytes" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.default_quota.max_bytes = v,
                None => return usage(),
            },
            "--quota-versions" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.default_quota.max_versions = v,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    config.bind = format!("{bind}:{port}");

    let handle = match serve(&repo, config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("hds-served: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts block on this exact line to learn the bound (ephemeral) port.
    println!("hds-served listening on {}", handle.addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    let stats = handle.join();
    eprintln!("hds-served: drained; final counters: {stats}");
    ExitCode::SUCCESS
}
