//! [`RemoteClient`] — the blocking client side of the wire protocol.
//!
//! One client owns one connection: connect, negotiate HELLO once, then issue
//! any number of requests. Every request sends one `REQUEST` frame and reads
//! until the matching `RESPONSE` (streaming `DATA` frames in between for
//! backup/restore). An `ERROR` frame from the daemon surfaces as
//! [`ClientError::Remote`] with the typed code intact, and a reply that does
//! not fit the protocol state machine is [`ClientError::Protocol`].

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::net::ToSocketAddrs;
use std::path::Path;
use std::time::Duration;

use hidestore_netfault::{NetStream, RealStream};
use hidestore_proto::{
    read_frame, write_frame, BackupSummary, Frame, FrameError, FrameKind, Hello, Limits,
    ListResponse, PruneSummary, Request, Response, RestoreSummary, SessionToken, StatsResponse,
    TenantId, TenantListResponse, TenantStatsResponse, VerifySummary, WireError,
};

/// Payload bytes per DATA frame when streaming a backup to the daemon.
const DATA_CHUNK: usize = 256 * 1024;

/// The default network I/O deadline: the `HDS_NET_TIMEOUT` environment
/// variable in whole seconds (`0` disables timeouts; non-numeric values
/// are ignored), falling back to 30 seconds. Explicit flags and
/// [`RemoteClient::connect_with`] arguments override this.
#[must_use]
pub fn default_net_timeout() -> Duration {
    match std::env::var("HDS_NET_TIMEOUT") {
        Ok(value) => match value.trim().parse::<u64>() {
            Ok(secs) => Duration::from_secs(secs),
            Err(_) => Duration::from_secs(30),
        },
        Err(_) => Duration::from_secs(30),
    }
}

/// Errors a [`RemoteClient`] operation can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or a frame was torn/corrupt.
    Frame(FrameError),
    /// The daemon answered with a typed ERROR frame.
    Remote(WireError),
    /// The daemon's reply broke the protocol state machine.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A negotiated connection to an `hds-served` daemon.
///
/// Generic over the [`NetStream`] transport so the chaos suite can drive a
/// client through a fault-injecting stream; production callers use the
/// plain-TCP [`RealStream`] default.
pub struct RemoteClient<S: NetStream = RealStream> {
    stream: S,
    limits: Limits,
    /// The protocol version both ends agreed on during HELLO.
    version: u16,
    /// Tenant every request is addressed to. `None` sends bare (v1/v2)
    /// request payloads, which the server maps to the `default` tenant.
    tenant: Option<TenantId>,
}

impl RemoteClient<RealStream> {
    /// Connects to `addr` and performs HELLO negotiation with default
    /// limits and the [`default_net_timeout`] I/O deadline.
    ///
    /// # Errors
    ///
    /// Connection failures, torn frames, or a version-negotiation refusal.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, Limits::default(), default_net_timeout())
    }

    /// [`RemoteClient::connect`] with explicit limits and I/O deadline
    /// (`Duration::ZERO` disables the deadline).
    ///
    /// # Errors
    ///
    /// Connection failures, torn frames, or a version-negotiation refusal.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        limits: Limits,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        Self::handshake(RealStream::connect(addr)?, limits, timeout)
    }
}

impl<S: NetStream> RemoteClient<S> {
    /// Performs HELLO negotiation over an already-established transport.
    /// This is the generic entry point: the chaos suite hands it a
    /// fault-injecting stream, [`RemoteClient::connect_with`] a real TCP
    /// connection.
    ///
    /// # Errors
    ///
    /// Transport failures, torn frames, or a version-negotiation refusal.
    pub fn handshake(
        mut stream: S,
        limits: Limits,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let timeout = (!timeout.is_zero()).then_some(timeout);
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let _ = stream.set_nodelay(true);
        let mut client = RemoteClient {
            stream,
            limits,
            version: 0,
            tenant: None,
        };
        write_frame(
            &mut client.stream,
            FrameKind::Hello,
            &Hello::current().encode(),
        )?;
        let frame = client.read()?;
        match frame.kind {
            FrameKind::Hello => {
                let server = Hello::decode(&frame.payload)
                    .map_err(|e| ClientError::Protocol(format!("bad HELLO reply: {e}")))?;
                let Some(version) = Hello::current().negotiate(&server) else {
                    return Err(ClientError::Protocol(format!(
                        "server offered unsupported version range {}..={}",
                        server.min_version, server.max_version
                    )));
                };
                client.version = version;
                Ok(client)
            }
            FrameKind::Error => Err(ClientError::Remote(decode_error_frame(&frame)?)),
            other => Err(ClientError::Protocol(format!(
                "expected HELLO reply, got {other}"
            ))),
        }
    }

    /// The protocol version negotiated at connect time.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Addresses every subsequent request to `tenant`. Needs a
    /// protocol-v3 peer for any tenant other than `default`; against an
    /// older server the `default` tenant is expressed by sending bare
    /// (unenveloped) requests, which is what such a server serves anyway.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] when a non-default tenant is requested
    /// over a pre-v3 connection — the older server would silently operate
    /// on the wrong (default) tenant otherwise.
    pub fn set_tenant(&mut self, tenant: TenantId) -> Result<(), ClientError> {
        if self.version < 3 {
            if tenant.is_default() {
                self.tenant = None;
                return Ok(());
            }
            return Err(ClientError::Protocol(format!(
                "tenant addressing needs protocol v3, negotiated v{}",
                self.version
            )));
        }
        self.tenant = Some(tenant);
        Ok(())
    }

    /// Builder form of [`RemoteClient::set_tenant`].
    ///
    /// # Errors
    ///
    /// As [`RemoteClient::set_tenant`].
    pub fn with_tenant(mut self, tenant: TenantId) -> Result<Self, ClientError> {
        self.set_tenant(tenant)?;
        Ok(self)
    }

    /// The tenant requests are currently addressed to, if any.
    pub fn tenant(&self) -> Option<&TenantId> {
        self.tenant.as_ref()
    }

    fn read(&mut self) -> Result<Frame, ClientError> {
        Ok(read_frame(&mut self.stream, &self.limits)?)
    }

    fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        let payload = match &self.tenant {
            Some(tenant) => request.encode_with_tenant(tenant),
            None => request.encode(),
        };
        write_frame(&mut self.stream, FrameKind::Request, &payload)?;
        Ok(())
    }

    /// Reads the next frame, expecting a RESPONSE (ERROR becomes
    /// [`ClientError::Remote`], anything else [`ClientError::Protocol`]).
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let frame = self.read()?;
        match frame.kind {
            FrameKind::Response => Response::decode(&frame.payload)
                .map_err(|e| ClientError::Protocol(format!("bad response: {e}"))),
            FrameKind::Error => Err(ClientError::Remote(decode_error_frame(&frame)?)),
            other => Err(ClientError::Protocol(format!(
                "expected RESPONSE, got {other}"
            ))),
        }
    }

    /// Health check: sends `Ping`, expects `Pong`.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Ping)?;
        match self.read_response()? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Streams `data` to the daemon as a new backup version.
    ///
    /// # Errors
    ///
    /// Transport, remote (e.g. oversize stream), or protocol errors.
    pub fn backup_bytes(&mut self, data: &[u8]) -> Result<BackupSummary, ClientError> {
        self.send_request(&Request::Backup)?;
        for chunk in data.chunks(DATA_CHUNK.max(1)) {
            write_frame(&mut self.stream, FrameKind::Data, chunk)?;
        }
        write_frame(&mut self.stream, FrameKind::End, &[])?;
        match self.read_response()? {
            Response::BackupDone(summary) => Ok(summary),
            other => Err(unexpected("BackupDone", &other)),
        }
    }

    /// One leg of a resumable backup: offers `token` to the daemon, and —
    /// unless the token already committed — streams `data` from the
    /// daemon's acknowledged offset onward. Retrying callers pass the same
    /// token and the full `data` every time; only the unacknowledged tail
    /// crosses the wire, and the daemon never commits the token twice.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors; requires a protocol-v2 peer.
    pub fn backup_resume(
        &mut self,
        token: SessionToken,
        data: &[u8],
    ) -> Result<BackupAttempt, ClientError> {
        if self.version < 2 {
            return Err(ClientError::Protocol(format!(
                "resumable backup needs protocol v2, negotiated v{}",
                self.version
            )));
        }
        let total_len = data.len() as u64;
        self.send_request(&Request::BackupResume { token, total_len })?;
        let offset = match self.read_response()? {
            // The daemon recognized the token as already committed and
            // answered from its cache: nothing to send.
            Response::BackupDone(summary) => {
                return Ok(BackupAttempt {
                    resumed_at: total_len,
                    sent: 0,
                    deduped: true,
                    summary,
                })
            }
            Response::BackupAccepted { offset } => offset,
            other => return Err(unexpected("BackupAccepted", &other)),
        };
        if offset > total_len {
            return Err(ClientError::Protocol(format!(
                "daemon acknowledged {offset} bytes of a {total_len}-byte backup"
            )));
        }
        let tail = &data[offset as usize..];
        for chunk in tail.chunks(DATA_CHUNK.max(1)) {
            write_frame(&mut self.stream, FrameKind::Data, chunk)?;
        }
        write_frame(&mut self.stream, FrameKind::End, &[])?;
        match self.read_response()? {
            Response::BackupDone(summary) => Ok(BackupAttempt {
                resumed_at: offset,
                sent: tail.len() as u64,
                deduped: false,
                summary,
            }),
            other => Err(unexpected("BackupDone", &other)),
        }
    }

    /// Restores `version` into `out`, returning the daemon's restore
    /// summary. The stream is `RestoreStarted` → DATA… → END →
    /// `RestoreDone`; an ERROR frame mid-stream aborts with the bytes
    /// written so far already in `out` (callers writing to a file should
    /// use [`RemoteClient::restore_to_path`], which cleans up for them).
    ///
    /// # Errors
    ///
    /// Transport, remote (unknown version, aborted stream), or protocol
    /// errors — and `out`'s own write errors.
    pub fn restore_to(
        &mut self,
        version: u32,
        out: &mut dyn Write,
    ) -> Result<RestoreSummary, ClientError> {
        self.send_request(&Request::Restore { version })?;
        let total_bytes = match self.read_response()? {
            Response::RestoreStarted { total_bytes } => total_bytes,
            other => return Err(unexpected("RestoreStarted", &other)),
        };
        let mut received: u64 = 0;
        loop {
            let frame = self.read()?;
            match frame.kind {
                FrameKind::Data => {
                    received += frame.payload.len() as u64;
                    if received > self.limits.max_stream {
                        return Err(ClientError::Protocol(format!(
                            "restore stream exceeds the {}-byte limit",
                            self.limits.max_stream
                        )));
                    }
                    out.write_all(&frame.payload)?;
                }
                FrameKind::End => break,
                FrameKind::Error => return Err(ClientError::Remote(decode_error_frame(&frame)?)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected DATA/END, got {other}"
                    )))
                }
            }
        }
        match self.read_response()? {
            Response::RestoreDone(summary) => {
                if summary.bytes_restored != received || received != total_bytes {
                    return Err(ClientError::Protocol(format!(
                        "restore length mismatch: announced {total_bytes}, received \
                         {received}, daemon reports {}",
                        summary.bytes_restored
                    )));
                }
                Ok(summary)
            }
            other => Err(unexpected("RestoreDone", &other)),
        }
    }

    /// One leg of a resumable restore: asks the daemon for `version`
    /// starting at byte `offset`, appending only the tail to `out`. The
    /// first leg uses `offset == 0`; after an interruption the caller
    /// passes the byte count it already holds and the daemon skips that
    /// prefix, so interrupted restores re-transfer only what was lost.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors (including an offset past the
    /// version's end) — and `out`'s own write errors. A non-zero offset
    /// requires a protocol-v2 peer.
    pub fn restore_resume(
        &mut self,
        version: u32,
        offset: u64,
        out: &mut dyn Write,
    ) -> Result<RestoreAttempt, ClientError> {
        if offset > 0 && self.version < 2 {
            return Err(ClientError::Protocol(format!(
                "resumable restore needs protocol v2, negotiated v{}",
                self.version
            )));
        }
        if offset == 0 {
            self.send_request(&Request::Restore { version })?;
        } else {
            self.send_request(&Request::RestoreResume { version, offset })?;
        }
        let total_bytes = match self.read_response()? {
            Response::RestoreStarted { total_bytes } => total_bytes,
            other => return Err(unexpected("RestoreStarted", &other)),
        };
        if offset > total_bytes {
            return Err(ClientError::Protocol(format!(
                "daemon announced {total_bytes} bytes but accepted resume offset {offset}"
            )));
        }
        let mut received: u64 = 0;
        loop {
            let frame = self.read()?;
            match frame.kind {
                FrameKind::Data => {
                    received += frame.payload.len() as u64;
                    if received > self.limits.max_stream {
                        return Err(ClientError::Protocol(format!(
                            "restore stream exceeds the {}-byte limit",
                            self.limits.max_stream
                        )));
                    }
                    out.write_all(&frame.payload)?;
                }
                FrameKind::End => break,
                FrameKind::Error => return Err(ClientError::Remote(decode_error_frame(&frame)?)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected DATA/END, got {other}"
                    )))
                }
            }
        }
        match self.read_response()? {
            Response::RestoreDone(summary) => {
                if offset + received != total_bytes || summary.bytes_restored != total_bytes {
                    return Err(ClientError::Protocol(format!(
                        "resumed restore length mismatch: announced {total_bytes}, offset \
                         {offset} + received {received}, daemon reports {}",
                        summary.bytes_restored
                    )));
                }
                Ok(RestoreAttempt {
                    resumed_at: offset,
                    received,
                    total_bytes,
                    summary,
                })
            }
            other => Err(unexpected("RestoreDone", &other)),
        }
    }

    /// Restores `version` into the file at `path`, writing through a
    /// `.tmp` sibling and renaming only on success, so an aborted stream
    /// never leaves a truncated file behind.
    ///
    /// # Errors
    ///
    /// As [`RemoteClient::restore_to`], plus filesystem errors; the `.tmp`
    /// file is removed on every error path.
    pub fn restore_to_path(
        &mut self,
        version: u32,
        path: impl AsRef<Path>,
    ) -> Result<RestoreSummary, ClientError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        let result = (|| {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            let summary = self.restore_to(version, &mut writer)?;
            writer.flush()?;
            writer
                .into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?
                .sync_all()?;
            Ok(summary)
        })();
        match result {
            Ok(summary) => {
                std::fs::rename(&tmp, path)?;
                Ok(summary)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Fetches the version listing.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn list(&mut self) -> Result<ListResponse, ClientError> {
        self.send_request(&Request::List)?;
        match self.read_response()? {
            Response::ListOk(list) => Ok(list),
            other => Err(unexpected("ListOk", &other)),
        }
    }

    /// Fetches per-version locality statistics.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn stats(&mut self) -> Result<StatsResponse, ClientError> {
        self.send_request(&Request::Stats)?;
        match self.read_response()? {
            Response::StatsOk(stats) => Ok(stats),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    /// Expires all but the newest `keep_last` versions.
    ///
    /// # Errors
    ///
    /// Transport, remote (`keep_last == 0` is a conflict), or protocol
    /// errors.
    pub fn prune(&mut self, keep_last: u32) -> Result<PruneSummary, ClientError> {
        self.send_request(&Request::Prune { keep_last })?;
        match self.read_response()? {
            Response::PruneOk(summary) => Ok(summary),
            other => Err(unexpected("PruneOk", &other)),
        }
    }

    /// Fetches the daemon's tenant listing (admin verb; requires a
    /// protocol-v3 peer).
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn tenant_list(&mut self) -> Result<TenantListResponse, ClientError> {
        if self.version < 3 {
            return Err(ClientError::Protocol(format!(
                "tenant-list needs protocol v3, negotiated v{}",
                self.version
            )));
        }
        self.send_request(&Request::TenantList)?;
        match self.read_response()? {
            Response::TenantListOk(list) => Ok(list),
            other => Err(unexpected("TenantListOk", &other)),
        }
    }

    /// Fetches the daemon's per-tenant request counters (admin verb;
    /// requires a protocol-v3 peer).
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn tenant_stats(&mut self) -> Result<TenantStatsResponse, ClientError> {
        if self.version < 3 {
            return Err(ClientError::Protocol(format!(
                "tenant-stats needs protocol v3, negotiated v{}",
                self.version
            )));
        }
        self.send_request(&Request::TenantStats)?;
        match self.read_response()? {
            Response::TenantStatsOk(stats) => Ok(stats),
            other => Err(unexpected("TenantStatsOk", &other)),
        }
    }

    /// Runs an integrity scrub on the daemon's repository.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn verify(&mut self) -> Result<VerifySummary, ClientError> {
        self.send_request(&Request::Verify)?;
        match self.read_response()? {
            Response::VerifyOk(summary) => Ok(summary),
            other => Err(unexpected("VerifyOk", &other)),
        }
    }

    /// Asks the daemon to drain and exit. The connection is spent after
    /// this call.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Shutdown)?;
        match self.read_response()? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected("ShutdownOk", &other)),
        }
    }
}

/// Transfer accounting of one [`RemoteClient::backup_resume`] leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackupAttempt {
    /// Offset the daemon acknowledged — bytes before it were NOT re-sent.
    pub resumed_at: u64,
    /// Bytes this leg actually streamed.
    pub sent: u64,
    /// True when the daemon answered from its idempotency cache (the
    /// token had already committed) without accepting any bytes.
    pub deduped: bool,
    /// The commit's summary (cached original on a dedup answer).
    pub summary: BackupSummary,
}

/// Transfer accounting of one [`RemoteClient::restore_resume`] leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreAttempt {
    /// Offset this leg started at — bytes before it were NOT re-sent.
    pub resumed_at: u64,
    /// Bytes this leg actually received.
    pub received: u64,
    /// Total logical bytes of the version.
    pub total_bytes: u64,
    /// The daemon's restore summary (covers the full version).
    pub summary: RestoreSummary,
}

fn decode_error_frame(frame: &Frame) -> Result<WireError, ClientError> {
    WireError::decode(&frame.payload)
        .map_err(|e| ClientError::Protocol(format!("bad error frame: {e}")))
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
