//! [`RemoteClient`] — the blocking client side of the wire protocol.
//!
//! One client owns one connection: connect, negotiate HELLO once, then issue
//! any number of requests. Every request sends one `REQUEST` frame and reads
//! until the matching `RESPONSE` (streaming `DATA` frames in between for
//! backup/restore). An `ERROR` frame from the daemon surfaces as
//! [`ClientError::Remote`] with the typed code intact, and a reply that does
//! not fit the protocol state machine is [`ClientError::Protocol`].

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

use hidestore_proto::{
    read_frame, write_frame, BackupSummary, Frame, FrameError, FrameKind, Hello, Limits,
    ListResponse, PruneSummary, Request, Response, RestoreSummary, StatsResponse, VerifySummary,
    WireError,
};

/// Payload bytes per DATA frame when streaming a backup to the daemon.
const DATA_CHUNK: usize = 256 * 1024;

/// Errors a [`RemoteClient`] operation can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed or a frame was torn/corrupt.
    Frame(FrameError),
    /// The daemon answered with a typed ERROR frame.
    Remote(WireError),
    /// The daemon's reply broke the protocol state machine.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// A negotiated connection to an `hds-served` daemon.
pub struct RemoteClient {
    stream: TcpStream,
    limits: Limits,
    /// The protocol version both ends agreed on during HELLO.
    version: u16,
}

impl RemoteClient {
    /// Connects to `addr` and performs HELLO negotiation with default
    /// limits and a 30-second I/O deadline.
    ///
    /// # Errors
    ///
    /// Connection failures, torn frames, or a version-negotiation refusal.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, Limits::default(), Duration::from_secs(30))
    }

    /// [`RemoteClient::connect`] with explicit limits and I/O deadline
    /// (`Duration::ZERO` disables the deadline).
    ///
    /// # Errors
    ///
    /// Connection failures, torn frames, or a version-negotiation refusal.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        limits: Limits,
        timeout: Duration,
    ) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let timeout = (!timeout.is_zero()).then_some(timeout);
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        let _ = stream.set_nodelay(true);
        let mut client = RemoteClient {
            stream,
            limits,
            version: 0,
        };
        write_frame(
            &mut client.stream,
            FrameKind::Hello,
            &Hello::current().encode(),
        )?;
        let frame = client.read()?;
        match frame.kind {
            FrameKind::Hello => {
                let server = Hello::decode(&frame.payload)
                    .map_err(|e| ClientError::Protocol(format!("bad HELLO reply: {e}")))?;
                let Some(version) = Hello::current().negotiate(&server) else {
                    return Err(ClientError::Protocol(format!(
                        "server offered unsupported version range {}..={}",
                        server.min_version, server.max_version
                    )));
                };
                client.version = version;
                Ok(client)
            }
            FrameKind::Error => Err(ClientError::Remote(decode_error_frame(&frame)?)),
            other => Err(ClientError::Protocol(format!(
                "expected HELLO reply, got {other}"
            ))),
        }
    }

    /// The protocol version negotiated at connect time.
    pub fn version(&self) -> u16 {
        self.version
    }

    fn read(&mut self) -> Result<Frame, ClientError> {
        Ok(read_frame(&mut self.stream, &self.limits)?)
    }

    fn send_request(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, FrameKind::Request, &request.encode())?;
        Ok(())
    }

    /// Reads the next frame, expecting a RESPONSE (ERROR becomes
    /// [`ClientError::Remote`], anything else [`ClientError::Protocol`]).
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let frame = self.read()?;
        match frame.kind {
            FrameKind::Response => Response::decode(&frame.payload)
                .map_err(|e| ClientError::Protocol(format!("bad response: {e}"))),
            FrameKind::Error => Err(ClientError::Remote(decode_error_frame(&frame)?)),
            other => Err(ClientError::Protocol(format!(
                "expected RESPONSE, got {other}"
            ))),
        }
    }

    /// Health check: sends `Ping`, expects `Pong`.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Ping)?;
        match self.read_response()? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Streams `data` to the daemon as a new backup version.
    ///
    /// # Errors
    ///
    /// Transport, remote (e.g. oversize stream), or protocol errors.
    pub fn backup_bytes(&mut self, data: &[u8]) -> Result<BackupSummary, ClientError> {
        self.send_request(&Request::Backup)?;
        for chunk in data.chunks(DATA_CHUNK.max(1)) {
            write_frame(&mut self.stream, FrameKind::Data, chunk)?;
        }
        write_frame(&mut self.stream, FrameKind::End, &[])?;
        match self.read_response()? {
            Response::BackupDone(summary) => Ok(summary),
            other => Err(unexpected("BackupDone", &other)),
        }
    }

    /// Restores `version` into `out`, returning the daemon's restore
    /// summary. The stream is `RestoreStarted` → DATA… → END →
    /// `RestoreDone`; an ERROR frame mid-stream aborts with the bytes
    /// written so far already in `out` (callers writing to a file should
    /// use [`RemoteClient::restore_to_path`], which cleans up for them).
    ///
    /// # Errors
    ///
    /// Transport, remote (unknown version, aborted stream), or protocol
    /// errors — and `out`'s own write errors.
    pub fn restore_to(
        &mut self,
        version: u32,
        out: &mut dyn Write,
    ) -> Result<RestoreSummary, ClientError> {
        self.send_request(&Request::Restore { version })?;
        let total_bytes = match self.read_response()? {
            Response::RestoreStarted { total_bytes } => total_bytes,
            other => return Err(unexpected("RestoreStarted", &other)),
        };
        let mut received: u64 = 0;
        loop {
            let frame = self.read()?;
            match frame.kind {
                FrameKind::Data => {
                    received += frame.payload.len() as u64;
                    if received > self.limits.max_stream {
                        return Err(ClientError::Protocol(format!(
                            "restore stream exceeds the {}-byte limit",
                            self.limits.max_stream
                        )));
                    }
                    out.write_all(&frame.payload)?;
                }
                FrameKind::End => break,
                FrameKind::Error => return Err(ClientError::Remote(decode_error_frame(&frame)?)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected DATA/END, got {other}"
                    )))
                }
            }
        }
        match self.read_response()? {
            Response::RestoreDone(summary) => {
                if summary.bytes_restored != received || received != total_bytes {
                    return Err(ClientError::Protocol(format!(
                        "restore length mismatch: announced {total_bytes}, received \
                         {received}, daemon reports {}",
                        summary.bytes_restored
                    )));
                }
                Ok(summary)
            }
            other => Err(unexpected("RestoreDone", &other)),
        }
    }

    /// Restores `version` into the file at `path`, writing through a
    /// `.tmp` sibling and renaming only on success, so an aborted stream
    /// never leaves a truncated file behind.
    ///
    /// # Errors
    ///
    /// As [`RemoteClient::restore_to`], plus filesystem errors; the `.tmp`
    /// file is removed on every error path.
    pub fn restore_to_path(
        &mut self,
        version: u32,
        path: impl AsRef<Path>,
    ) -> Result<RestoreSummary, ClientError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        let result = (|| {
            let file = File::create(&tmp)?;
            let mut writer = BufWriter::new(file);
            let summary = self.restore_to(version, &mut writer)?;
            writer.flush()?;
            writer
                .into_inner()
                .map_err(|e| io::Error::other(e.to_string()))?
                .sync_all()?;
            Ok(summary)
        })();
        match result {
            Ok(summary) => {
                std::fs::rename(&tmp, path)?;
                Ok(summary)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Fetches the version listing.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn list(&mut self) -> Result<ListResponse, ClientError> {
        self.send_request(&Request::List)?;
        match self.read_response()? {
            Response::ListOk(list) => Ok(list),
            other => Err(unexpected("ListOk", &other)),
        }
    }

    /// Fetches per-version locality statistics.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn stats(&mut self) -> Result<StatsResponse, ClientError> {
        self.send_request(&Request::Stats)?;
        match self.read_response()? {
            Response::StatsOk(stats) => Ok(stats),
            other => Err(unexpected("StatsOk", &other)),
        }
    }

    /// Expires all but the newest `keep_last` versions.
    ///
    /// # Errors
    ///
    /// Transport, remote (`keep_last == 0` is a conflict), or protocol
    /// errors.
    pub fn prune(&mut self, keep_last: u32) -> Result<PruneSummary, ClientError> {
        self.send_request(&Request::Prune { keep_last })?;
        match self.read_response()? {
            Response::PruneOk(summary) => Ok(summary),
            other => Err(unexpected("PruneOk", &other)),
        }
    }

    /// Runs an integrity scrub on the daemon's repository.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn verify(&mut self) -> Result<VerifySummary, ClientError> {
        self.send_request(&Request::Verify)?;
        match self.read_response()? {
            Response::VerifyOk(summary) => Ok(summary),
            other => Err(unexpected("VerifyOk", &other)),
        }
    }

    /// Asks the daemon to drain and exit. The connection is spent after
    /// this call.
    ///
    /// # Errors
    ///
    /// Transport, remote, or protocol errors.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.send_request(&Request::Shutdown)?;
        match self.read_response()? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected("ShutdownOk", &other)),
        }
    }
}

fn decode_error_frame(frame: &Frame) -> Result<WireError, ClientError> {
    WireError::decode(&frame.payload)
        .map_err(|e| ClientError::Protocol(format!("bad error frame: {e}")))
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
