//! `hds-served`: the HiDeStore network daemon and its client.
//!
//! This crate turns the local repository engine into a network service over
//! the framed wire protocol of `hidestore-proto`:
//!
//! * [`serve`] starts the daemon — a `TcpListener` acceptor feeding a
//!   [`hidestore_sync::BoundedQueue`] of connections to a worker pool, each
//!   worker speaking the HELLO-negotiated protocol over one connection at a
//!   time. The returned [`ServerHandle`] exposes the bound address, live
//!   [`StatsSnapshot`] counters, graceful [`ServerHandle::request_shutdown`]
//!   / [`ServerHandle::join`], and a force-stop on drop.
//! * [`RemoteClient`] is the matching blocking client used by the
//!   `--remote` CLI paths and the test/bench harnesses.
//! * [`view`] builds the protocol's `List`/`Stats` response types from a
//!   repository, shared by the daemon and the local CLI's `--json` output.
//!
//! Concurrency and crash-safety are delegated downward: tenant ids map to
//! independent repositories through a
//! [`hidestore_tenant::TenantRegistry`], each held in a
//! [`hidestore_core::RepositoryHandle`] (per-tenant writer lock, concurrent
//! snapshot readers, rollback-by-reopen on failed mutations), and the
//! commit journal underneath keeps the on-disk state atomic even if the
//! daemon is killed mid-mutation. A plain repository (no tenant root) is
//! served as exactly the `default` tenant, which keeps protocol v1/v2
//! clients and pre-tenancy deployments working unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod retry;
mod server;
mod session;
pub mod stats;
pub mod view;

pub use client::{default_net_timeout, BackupAttempt, ClientError, RemoteClient, RestoreAttempt};
pub use retry::{retryable, ResumeEvent, RetryClient, RetryCounters, RetryPolicy};
pub use server::{serve, ServerConfig, ServerError, ServerHandle, DATA_CHUNK};
pub use session::SessionTable;
pub use stats::{ServerStats, StatsSnapshot, TenantStats, TenantStatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use hidestore_core::HiDeStoreConfig;
    use hidestore_proto::ErrorCode;
    use std::path::{Path, PathBuf};

    fn temp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hidestore-served-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn init_repo(dir: &Path) {
        HiDeStoreConfig::small_for_tests().save_to(dir).unwrap();
    }

    fn quiet_config() -> ServerConfig {
        ServerConfig {
            quiet: true,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn ping_round_trip_and_graceful_shutdown() {
        let dir = temp("ping");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let addr = handle.addr();
        let mut client = RemoteClient::connect(addr).unwrap();
        assert_eq!(client.version(), hidestore_proto::PROTO_VERSION);
        client.ping().unwrap();
        client.shutdown().unwrap();
        let stats = handle.join();
        assert!(stats.requests_ok >= 2, "ping + shutdown: {stats}");
        // A post-shutdown connect must be refused.
        assert!(RemoteClient::connect(addr).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backup_then_restore_round_trips_bytes() {
        let dir = temp("roundtrip");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let payload: Vec<u8> = (0..600_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut client = RemoteClient::connect(handle.addr()).unwrap();
        let summary = client.backup_bytes(&payload).unwrap();
        assert_eq!(summary.version, 1);
        assert_eq!(summary.logical_bytes, payload.len() as u64);
        let mut out = Vec::new();
        let restored = client.restore_to(1, &mut out).unwrap();
        assert_eq!(out, payload);
        assert_eq!(restored.bytes_restored, payload.len() as u64);
        let list = client.list().unwrap();
        assert_eq!(list.versions.len(), 1);
        assert_eq!(list.versions[0].bytes, payload.len() as u64);
        client.shutdown().unwrap();
        handle.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_version_is_a_typed_not_found() {
        let dir = temp("notfound");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let mut client = RemoteClient::connect(handle.addr()).unwrap();
        for version in [0u32, 7] {
            let err = client.restore_to(version, &mut Vec::new()).unwrap_err();
            match err {
                ClientError::Remote(e) => assert_eq!(e.code, ErrorCode::NotFound),
                other => panic!("expected Remote(NotFound), got {other}"),
            }
        }
        // The connection survives typed errors.
        client.ping().unwrap();
        client.shutdown().unwrap();
        handle.join();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversize_backup_stream_is_rejected() {
        let dir = temp("oversize");
        init_repo(&dir);
        let config = ServerConfig {
            limits: hidestore_proto::Limits {
                max_stream: 10_000,
                ..hidestore_proto::Limits::default()
            },
            ..quiet_config()
        };
        let handle = serve(&dir, config).unwrap();
        let mut client = RemoteClient::connect(handle.addr()).unwrap();
        let err = client.backup_bytes(&vec![0u8; 50_000]).unwrap_err();
        match err {
            ClientError::Remote(e) => assert_eq!(e.code, ErrorCode::TooLarge),
            other => panic!("expected Remote(TooLarge), got {other}"),
        }
        let stats = handle.shutdown_and_join();
        assert_eq!(stats.rejected_oversize, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_root_serves_isolated_tenants_with_quotas_and_admin_verbs() {
        let root = temp("tenants");
        // Root config: template for auto-created tenant repositories.
        HiDeStoreConfig::small_for_tests().save_to(&root).unwrap();
        let config = ServerConfig {
            tenants_root: true,
            default_quota: hidestore_tenant::TenantQuota {
                max_bytes: 0,
                max_versions: 2,
            },
            ..quiet_config()
        };
        let handle = serve(&root, config).unwrap();
        let addr = handle.addr();
        let tenant = |name: &str| hidestore_proto::TenantId::new(name).unwrap();

        let mut alice = RemoteClient::connect(addr)
            .unwrap()
            .with_tenant(tenant("alice"))
            .unwrap();
        let mut bob = RemoteClient::connect(addr)
            .unwrap()
            .with_tenant(tenant("bob"))
            .unwrap();
        // Independent version-id spaces: both first backups are V1.
        assert_eq!(alice.backup_bytes(&vec![0xAA; 40_000]).unwrap().version, 1);
        assert_eq!(bob.backup_bytes(&vec![0xBB; 20_000]).unwrap().version, 1);
        assert_eq!(alice.backup_bytes(&vec![0xAC; 10_000]).unwrap().version, 2);
        let mut out = Vec::new();
        bob.restore_to(1, &mut out).unwrap();
        assert_eq!(out, vec![0xBB; 20_000]);
        // Alice's second version is invisible to Bob.
        assert_eq!(bob.list().unwrap().versions.len(), 1);
        assert_eq!(alice.list().unwrap().versions.len(), 2);

        // Quota: Alice holds 2 versions, the default quota caps at 2.
        let err = alice.backup_bytes(&vec![0xAD; 5_000]).unwrap_err();
        match err {
            ClientError::Remote(e) => {
                assert_eq!(e.code, ErrorCode::QuotaExceeded);
                assert!(!e.code.is_retryable(), "quota refusals are permanent");
            }
            other => panic!("expected Remote(QuotaExceeded), got {other}"),
        }

        // Unknown tenant on a read path: typed not-found, nothing created.
        let mut ghost = RemoteClient::connect(addr)
            .unwrap()
            .with_tenant(tenant("ghost"))
            .unwrap();
        match ghost.list().unwrap_err() {
            ClientError::Remote(e) => assert_eq!(e.code, ErrorCode::NotFound),
            other => panic!("expected Remote(NotFound), got {other}"),
        }
        assert!(!root
            .join(hidestore_tenant::TENANTS_SUBDIR)
            .join("ghost")
            .exists());

        // Admin verbs.
        let mut admin = RemoteClient::connect(addr).unwrap();
        let list = admin.tenant_list().unwrap();
        let names: Vec<&str> = list.tenants.iter().map(|t| t.tenant.as_str()).collect();
        assert_eq!(names, ["alice", "bob"]);
        assert_eq!(list.tenants[0].versions, 2);
        assert_eq!(list.tenants[1].versions, 1);
        let stats = admin.tenant_stats().unwrap();
        let alice_row = stats
            .tenants
            .iter()
            .find(|t| t.tenant == "alice")
            .expect("alice has a stats row");
        assert_eq!(alice_row.quota_refused, 1);
        assert!(alice_row.bytes_in >= 50_000);
        let bob_row = stats.tenants.iter().find(|t| t.tenant == "bob").unwrap();
        assert_eq!(bob_row.quota_refused, 0, "no cross-tenant stats bleed");
        assert!(bob_row.bytes_out >= 20_000);

        assert_eq!(
            handle.rollbacks(),
            0,
            "a quota refusal must not roll anything back"
        );
        // Close the idle connections so the drain below does not wait out
        // their read deadlines.
        drop(alice);
        drop(bob);
        drop(ghost);
        admin.shutdown().unwrap();
        handle.join();
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn drop_force_stops_the_server() {
        let dir = temp("drop");
        init_repo(&dir);
        let handle = serve(&dir, quiet_config()).unwrap();
        let addr = handle.addr();
        drop(handle);
        assert!(RemoteClient::connect(addr).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
